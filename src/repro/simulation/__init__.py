"""Synthetic Internet + measurement platform (the paper's data substrate).

The real system consumes 2.8 billion traceroutes from RIPE Atlas; offline
we generate statistically equivalent traceroute campaigns: an AS-level
topology with asymmetric routing, a per-packet delay/loss model with
heavy-tailed noise, anycast root services, Atlas-like builtin/anchoring
schedules, and scenario injection reproducing the paper's three case
studies (DDoS on DNS roots, BGP route leak, IXP outage) plus
beyond-the-paper events (anycast catchment shifts, BGP hijacks, diurnal
congestion ramps, probe churn) and a seeded :class:`ScenarioFuzzer`.
Every scenario emits a machine-readable ground-truth label set
(:meth:`Scenario.ground_truth`) scored by :mod:`repro.quality`.
"""

from repro.simulation.delays import DelaySampler, NoiseParams, combined_loss
from repro.simulation.platform import (
    ANCHORING_MSM_BASE,
    BUILTIN_MSM_BASE,
    AtlasPlatform,
    CampaignConfig,
)
from repro.simulation.routing import NoRouteError, RoutingEngine
from repro.simulation.scenarios import (
    LOSS_LABEL_FLOOR,
    BgpHijackScenario,
    CatchmentShiftScenario,
    CompositeScenario,
    DdosScenario,
    DiurnalCongestionScenario,
    IxpOutageScenario,
    LinkPerturbation,
    ProbeChurnScenario,
    RouteLeakScenario,
    Scenario,
    ScenarioFuzzer,
    WindowedLinkScenario,
)
from repro.simulation.topology import (
    IXP_ASES,
    LEAKER_AS,
    ROOT_SERVICES,
    TIER1_ASES,
    Anchor,
    AnycastInstance,
    AnycastService,
    AsInfo,
    Probe,
    RouterInfo,
    Topology,
    TopologyBuilder,
    TopologyParams,
    build_topology,
)
from repro.simulation.tracer import TargetSpec, TracerouteEngine

__all__ = [
    "ANCHORING_MSM_BASE",
    "BUILTIN_MSM_BASE",
    "Anchor",
    "AnycastInstance",
    "AnycastService",
    "AsInfo",
    "AtlasPlatform",
    "BgpHijackScenario",
    "CampaignConfig",
    "CatchmentShiftScenario",
    "CompositeScenario",
    "DdosScenario",
    "DelaySampler",
    "DiurnalCongestionScenario",
    "IXP_ASES",
    "IxpOutageScenario",
    "LEAKER_AS",
    "LOSS_LABEL_FLOOR",
    "LinkPerturbation",
    "NoRouteError",
    "NoiseParams",
    "Probe",
    "ProbeChurnScenario",
    "ROOT_SERVICES",
    "RouteLeakScenario",
    "RouterInfo",
    "RoutingEngine",
    "Scenario",
    "ScenarioFuzzer",
    "TIER1_ASES",
    "TargetSpec",
    "Topology",
    "TopologyBuilder",
    "TopologyParams",
    "TracerouteEngine",
    "WindowedLinkScenario",
    "build_topology",
    "combined_loss",
]
