"""Synthetic Internet topology — the substrate replacing the real Internet.

The paper measures the production Internet through ~10,000 RIPE Atlas
probes.  Offline we need a stand-in that preserves the statistical
features the detection methods depend on:

* a transit hierarchy (tier-1 full mesh, multi-homed tier-2s, stub ASes)
  so links are observed from **multiple origin ASes** (§4.3),
* Internet exchange points with peering LANs owning their own prefix/ASN
  (the AMS-IX case study, §7.3),
* **anycast** DNS root services with instances at several locations (the
  K-root case study, §7.1),
* per-direction link weights so forward and return paths are
  **asymmetric** (the ε terms of §4.1), and
* named entities matching the case studies (Level3 AS3356/AS3549, Cogent
  AS174, AMS-IX AS1200, K-root AS25152, Telekom Malaysia AS4788, ...) so
  scenarios and benchmarks read like the paper.

Nodes of the routing graph are router identifiers; each **directed** edge
carries the interface IP of its head router (``ingress_ip`` — what
traceroute reports), a base one-way delay, a routing weight, and a base
loss probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

# ---------------------------------------------------------------------------
# Named entities from the paper's case studies.
# ---------------------------------------------------------------------------

#: (asn, name) of the tier-1 networks always present in the topology.
TIER1_ASES: Tuple[Tuple[int, str], ...] = (
    (3356, "Level3"),
    (3549, "Level3-GlobalCrossing"),
    (174, "Cogent"),
    (6939, "HurricaneElectric"),
)

#: (asn, name) of the IXPs (peering LANs own the ASN, like AMS-IX AS1200).
IXP_ASES: Tuple[Tuple[int, str], ...] = (
    (1200, "AMS-IX"),
    (6695, "DE-CIX"),
)

#: Anycast root services: (service name, asn, service IPv4, service IPv6).
ROOT_SERVICES: Tuple[Tuple[str, int, str, str], ...] = (
    ("K-root", 25152, "193.0.14.129", "2001:7fd::1"),
    ("F-root", 3557, "192.5.5.241", "2001:500:2f::f"),
    ("I-root", 29216, "192.36.148.17", "2001:7fe::53"),
)

#: Telekom Malaysia, the leaker of the §7.2 case study (a tier-2).
LEAKER_AS: Tuple[int, str] = (4788, "TelekomMalaysia")


@dataclass(frozen=True)
class AsInfo:
    """One autonomous system of the synthetic topology.

    Every AS is dual-stacked: it owns one IPv4 covering prefix and one
    IPv6 covering prefix (the paper monitors both address families).
    """

    asn: int
    name: str
    tier: int  # 1 = transit core, 2 = regional transit, 3 = stub
    prefix: str  # covering IPv4 prefix, e.g. "10.5.0.0"
    prefix_len: int
    prefix6: str = ""  # covering IPv6 prefix, e.g. "2001:db8:5::"
    prefix6_len: int = 48


@dataclass(frozen=True)
class RouterInfo:
    """One router: graph node id, owner AS and loopback addresses."""

    node: str
    asn: int
    loopback_ip: str
    responsive: bool = True
    loopback_ip6: str = ""


@dataclass(frozen=True)
class Probe:
    """An Atlas-like vantage point attached to a router (dual-stack)."""

    probe_id: int
    ip: str
    asn: int
    router: str
    ip6: str = ""


@dataclass(frozen=True)
class AnycastInstance:
    """One instance of an anycast service (e.g. K-root at AMS-IX)."""

    node: str
    location: str  # host AS name or IXP name
    host_asn: int


@dataclass(frozen=True)
class AnycastService:
    """An anycast service: one IP per family, many instances."""

    name: str
    asn: int
    service_ip: str
    instances: Tuple[AnycastInstance, ...]
    service_ip6: str = ""

    @property
    def virtual_node(self) -> str:
        """Virtual sink node used for anycast routing."""
        return f"anycast:{self.name}"


@dataclass(frozen=True)
class Anchor:
    """A unicast traceroute target (Atlas anchor equivalent)."""

    name: str
    ip: str
    node: str
    asn: int
    ip6: str = ""


@dataclass
class TopologyParams:
    """Size and behaviour knobs of the generated topology."""

    n_tier2: int = 8  # generated tier-2 ASes in addition to the leaker
    n_stub: int = 18
    routers_per_tier1: int = 4
    routers_per_tier2: int = 3
    routers_per_stub: int = 2
    n_probes: int = 30
    n_anchors: int = 6
    unresponsive_fraction: float = 0.05
    # Probability a stub AS buys a second tier-2 uplink.  Dual homing
    # spreads a stub's paths over two corridors, which dilutes per-link
    # probe diversity; case-study configurations lower it to concentrate
    # observation on fewer, better-covered links.
    stub_dual_home_prob: float = 0.5

    @classmethod
    def case_study(cls) -> "TopologyParams":
        """Configuration used by the §7 case-study replays and benches.

        Single-homed stubs concentrated on few tier-2s give every core
        link probe-diverse coverage (≥3 origin ASes), the regime the
        paper reaches with ~10,000 probes.
        """
        return cls(
            n_tier2=6, n_stub=24, n_probes=100, stub_dual_home_prob=0.0
        )
    # Delay ranges in milliseconds (one way).
    tier1_link_delay: Tuple[float, float] = (8.0, 35.0)
    tier2_uplink_delay: Tuple[float, float] = (4.0, 18.0)
    stub_uplink_delay: Tuple[float, float] = (2.0, 9.0)
    intra_as_delay: Tuple[float, float] = (0.3, 2.0)
    ixp_lan_delay: Tuple[float, float] = (0.2, 0.8)
    base_loss: float = 0.0005
    # Routing weight = delay * Uniform(1-jitter, 1+jitter), per direction:
    # the source of forward/return path asymmetry.
    weight_jitter: float = 0.35
    # Routing-weight penalty on IXP peering-LAN edges.  Physically the LAN
    # is sub-millisecond, but peering is not universal transit: without a
    # penalty every inter-tier-1 path would shortcut through the LANs and
    # the tier-1 mesh would carry (and congest) nothing.
    ixp_weight_penalty: float = 25.0


@dataclass
class Topology:
    """The generated synthetic Internet."""

    graph: nx.DiGraph
    ases: Dict[int, AsInfo]
    routers: Dict[str, RouterInfo]
    probes: List[Probe]
    services: Dict[str, AnycastService]
    anchors: List[Anchor]
    params: TopologyParams
    seed: int

    def prefix_table(self) -> List[Tuple[str, int, int]]:
        """(network, length, asn) rows for :class:`repro.net.AsMapper`.

        Contains both address families: the mapper is dual-stack.
        """
        rows = []
        for info in self.ases.values():
            rows.append((info.prefix, info.prefix_len, info.asn))
            if info.prefix6:
                rows.append((info.prefix6, info.prefix6_len, info.asn))
        for service in self.services.values():
            network = service.service_ip.rsplit(".", 1)[0] + ".0"
            rows.append((network, 24, service.asn))
            if service.service_ip6:
                head = service.service_ip6.rsplit("::", 1)[0]
                rows.append((f"{head}::", 48, service.asn))
        return rows

    def routers_of_as(self, asn: int) -> List[str]:
        return [r.node for r in self.routers.values() if r.asn == asn]

    def interface_map(self, af: int = 4) -> Dict[str, str]:
        """Ground-truth interface→router mapping for alias evaluation.

        Covers loopbacks and per-edge ingress interfaces; anycast service
        addresses are excluded (they intentionally alias *across*
        physical instances).
        """
        if af not in (4, 6):
            raise ValueError(f"af must be 4 or 6: {af}")
        service_ips = {
            ip
            for service in self.services.values()
            for ip in (service.service_ip, service.service_ip6)
        }
        mapping: Dict[str, str] = {}
        for info in self.routers.values():
            loopback = info.loopback_ip if af == 4 else info.loopback_ip6
            if loopback:
                mapping[loopback] = info.node
        attr = "ingress_ip" if af == 4 else "ingress_ip6"
        for _, v, data in self.graph.edges(data=True):
            ip = data.get(attr)
            if ip is None or ip in service_ips:
                continue
            if not self.graph.nodes[v].get("virtual"):
                mapping[ip] = v
        return mapping

    def edges_of_as(self, asn: int) -> List[Tuple[str, str]]:
        """Directed edges whose reported (ingress) IP belongs to *asn*."""
        result = []
        for u, v, data in self.graph.edges(data=True):
            if data.get("ingress_asn") == asn:
                result.append((u, v))
        return result

    def ixp_lan_edges(self, ixp_asn: int) -> List[Tuple[str, str]]:
        """Directed edges crossing the given IXP's peering LAN."""
        return self.edges_of_as(ixp_asn)

    def service_last_hop_edges(self, service_name: str) -> List[Tuple[str, str]]:
        """Directed edges whose ingress IP is the anycast service address."""
        service = self.services[service_name]
        return [
            (u, v)
            for u, v, data in self.graph.edges(data=True)
            if data.get("ingress_ip") == service.service_ip
        ]


class _AddressAllocator:
    """Sequential interface-address allocation inside one dual-stack prefix."""

    def __init__(self, base: str, base6: str) -> None:
        # base like "10.5" (for a /16) or "172.16.1" (for a /24);
        # base6 like "2001:db8:5" (for a /48).
        self._base = base
        self._base6 = base6
        self._counter = 0
        self._counter6 = 0

    def next_ip(self) -> str:
        self._counter += 1
        if self._base.count(".") == 1:  # /16-style base "a.b"
            high, low = divmod(self._counter, 250)
            if high > 250:
                raise RuntimeError(f"prefix {self._base} exhausted")
            return f"{self._base}.{high}.{low + 1}"
        # /24-style base "a.b.c"
        if self._counter > 250:
            raise RuntimeError(f"prefix {self._base} exhausted")
        return f"{self._base}.{self._counter}"

    def next_ip6(self) -> str:
        self._counter6 += 1
        return f"{self._base6}::{self._counter6:x}"


class TopologyBuilder:
    """Deterministic builder for the synthetic Internet."""

    def __init__(self, params: Optional[TopologyParams] = None, seed: int = 0):
        self.params = params or TopologyParams()
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._graph = nx.DiGraph()
        self._ases: Dict[int, AsInfo] = {}
        self._routers: Dict[str, RouterInfo] = {}
        self._allocators: Dict[int, _AddressAllocator] = {}
        self._as_index = 0

    # -- AS / router creation ----------------------------------------------

    def _add_as(self, asn: int, name: str, tier: int) -> AsInfo:
        self._as_index += 1
        if tier == 0:  # IXP peering LAN: small /24, and 2001:7f8::/48-style
            base = f"172.16.{self._as_index}"
            base6 = f"2001:7f8:{self._as_index:x}"
            info = AsInfo(
                asn, name, tier, f"{base}.0", 24, f"{base6}::", 48
            )
        else:
            base = f"10.{self._as_index}"
            base6 = f"2001:db8:{self._as_index:x}"
            info = AsInfo(
                asn, name, tier, f"{base}.0.0", 16, f"{base6}::", 48
            )
        self._ases[asn] = info
        self._allocators[asn] = _AddressAllocator(base, base6)
        return info

    def _add_router(self, asn: int, index: int, responsive: bool = True) -> str:
        node = f"as{asn}_r{index}"
        allocator = self._allocators[asn]
        self._routers[node] = RouterInfo(
            node,
            asn,
            allocator.next_ip(),
            responsive,
            loopback_ip6=allocator.next_ip6(),
        )
        self._graph.add_node(node, asn=asn)
        return node

    def _delay(self, bounds: Tuple[float, float]) -> float:
        low, high = bounds
        return float(self._rng.uniform(low, high))

    def _weight(self, delay: float) -> float:
        jitter = self.params.weight_jitter
        return delay * float(self._rng.uniform(1.0 - jitter, 1.0 + jitter))

    def _link(
        self,
        u: str,
        v: str,
        delay_bounds: Tuple[float, float],
        ingress_asn_override: Optional[int] = None,
    ) -> None:
        """Create the two directed edges of a physical link u <-> v.

        Each direction gets its own ingress IP (interface of the head
        router), base delay and routing weight.  Slightly different
        per-direction delays and weights create the asymmetry the paper's
        differential RTT analysis must cope with.
        """
        base = self._delay(delay_bounds)
        for src, dst in ((u, v), (v, u)):
            if self._graph.has_edge(src, dst):
                continue
            # The ingress IP belongs to the head router's AS, unless the
            # link crosses an IXP LAN (override), in which case the head
            # interface sits in the IXP prefix.
            owner_asn = (
                ingress_asn_override
                if ingress_asn_override is not None
                else self._routers[dst].asn
            )
            allocator = self._allocators[owner_asn]
            ingress_ip = allocator.next_ip()
            ingress_ip6 = allocator.next_ip6()
            one_way = base * float(self._rng.uniform(0.92, 1.08))
            weight = self._weight(one_way)
            if ingress_asn_override is not None:
                weight *= self.params.ixp_weight_penalty
            self._graph.add_edge(
                src,
                dst,
                ingress_ip=ingress_ip,
                ingress_ip6=ingress_ip6,
                ingress_asn=owner_asn,
                base_delay_ms=one_way,
                weight=weight,
                loss=self.params.base_loss,
            )

    def _wire_intra_as(self, nodes: Sequence[str]) -> None:
        """Ring plus hub chords: connected, with some path diversity."""
        if len(nodes) == 1:
            return
        for a, b in zip(nodes, nodes[1:]):
            self._link(a, b, self.params.intra_as_delay)
        if len(nodes) > 2:
            self._link(nodes[-1], nodes[0], self.params.intra_as_delay)
        for extra in nodes[3::2]:
            self._link(nodes[0], extra, self.params.intra_as_delay)

    def _pick(self, nodes: Sequence[str]) -> str:
        return nodes[int(self._rng.integers(0, len(nodes)))]

    # -- build --------------------------------------------------------------

    def build(self) -> Topology:
        params = self.params
        rng = self._rng

        # Tier-1 core: named ASes, full mesh.
        tier1_nodes: Dict[int, List[str]] = {}
        for asn, name in TIER1_ASES:
            self._add_as(asn, name, tier=1)
            nodes = [
                self._add_router(
                    asn, i, responsive=rng.random() > params.unresponsive_fraction
                )
                for i in range(params.routers_per_tier1)
            ]
            self._wire_intra_as(nodes)
            tier1_nodes[asn] = nodes
        tier1_list = list(tier1_nodes)
        for i, a in enumerate(tier1_list):
            for b in tier1_list[i + 1 :]:
                self._link(
                    self._pick(tier1_nodes[a]),
                    self._pick(tier1_nodes[b]),
                    params.tier1_link_delay,
                )

        # Tier-2: the leaker plus generated regional transits, each
        # multi-homed to two tier-1 providers.
        tier2_nodes: Dict[int, List[str]] = {}
        tier2_asns = [LEAKER_AS[0]]
        self._add_as(*LEAKER_AS, tier=2)
        for index in range(params.n_tier2):
            asn = 65000 + index
            self._add_as(asn, f"Transit{index}", tier=2)
            tier2_asns.append(asn)
        for asn in tier2_asns:
            nodes = [
                self._add_router(
                    asn, i, responsive=rng.random() > params.unresponsive_fraction
                )
                for i in range(params.routers_per_tier2)
            ]
            self._wire_intra_as(nodes)
            tier2_nodes[asn] = nodes
            providers = rng.choice(tier1_list, size=2, replace=False)
            for provider in providers:
                self._link(
                    self._pick(nodes),
                    self._pick(tier1_nodes[int(provider)]),
                    params.tier2_uplink_delay,
                )

        # Stub ASes: single- or dual-homed to tier-2s; they host probes.
        stub_nodes: Dict[int, List[str]] = {}
        stub_asns = []
        tier2_list = list(tier2_nodes)
        for index in range(params.n_stub):
            asn = 64600 + index
            self._add_as(asn, f"Stub{index}", tier=3)
            stub_asns.append(asn)
            nodes = [
                self._add_router(asn, i)
                for i in range(params.routers_per_stub)
            ]
            self._wire_intra_as(nodes)
            stub_nodes[asn] = nodes
            n_uplinks = 1 + int(rng.random() < params.stub_dual_home_prob)
            providers = rng.choice(tier2_list, size=n_uplinks, replace=False)
            for provider in providers:
                self._link(
                    self._pick(nodes),
                    self._pick(tier2_nodes[int(provider)]),
                    params.stub_uplink_delay,
                )

        # IXPs: peering LANs interconnecting tier-1s and some tier-2s.
        ixp_members: Dict[int, List[str]] = {}
        for asn, name in IXP_ASES:
            self._add_as(asn, name, tier=0)
            members = [self._pick(tier1_nodes[t1]) for t1 in tier1_list]
            extra_t2 = rng.choice(tier2_list, size=2, replace=False)
            members += [self._pick(tier2_nodes[int(t2)]) for t2 in extra_t2]
            ixp_members[asn] = members
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    self._link(
                        a, b, params.ixp_lan_delay, ingress_asn_override=asn
                    )

        # Anycast root services: instances at IXPs and tier-2 hosts.
        services: Dict[str, AnycastService] = {}
        ixp_list = list(ixp_members)
        # Instances avoid the leaker AS (tier2_list[0]) so the route-leak
        # scenario does not accidentally shorten paths to a root server.
        service_hosts = {
            "K-root": [
                ("ixp", ixp_list[0]),
                ("ixp", ixp_list[1]),
                ("as", tier2_list[1 % len(tier2_list)]),
                ("as", tier2_list[2 % len(tier2_list)]),
            ],
            "F-root": [("ixp", ixp_list[0]), ("as", tier2_list[-1])],
            "I-root": [("ixp", ixp_list[1])],
        }
        for service_name, service_asn, service_ip, service_ip6 in ROOT_SERVICES:
            if service_asn not in self._ases:
                self._add_as(service_asn, service_name, tier=3)
            instances = []
            for kind, host in service_hosts[service_name]:
                instance_index = len(instances)
                node = self._add_router(service_asn, 100 + instance_index)
                if kind == "ixp":
                    # Connect the instance to every member of the LAN; the
                    # ingress interface of the instance carries the anycast
                    # service address, so last hops read (router, service).
                    for member in ixp_members[host]:
                        self._instance_link(
                            member, node, service_ip, service_ip6, host
                        )
                    location = self._ases[host].name
                    host_asn = host
                else:
                    border = self._pick(tier2_nodes[host])
                    self._instance_link(
                        border, node, service_ip, service_ip6, None
                    )
                    location = self._ases[host].name
                    host_asn = host
                instances.append(
                    AnycastInstance(node=node, location=location, host_asn=host_asn)
                )
            service = AnycastService(
                name=service_name,
                asn=service_asn,
                service_ip=service_ip,
                instances=tuple(instances),
                service_ip6=service_ip6,
            )
            services[service_name] = service
            # Virtual sink for anycast routing.
            sink = service.virtual_node
            self._graph.add_node(sink, asn=service_asn, virtual=True)
            for instance in instances:
                self._graph.add_edge(
                    instance.node,
                    sink,
                    ingress_ip=None,
                    ingress_ip6=None,
                    ingress_asn=service_asn,
                    base_delay_ms=0.0,
                    weight=1e-6,
                    loss=0.0,
                )

        # Probes: spread across stub ASes (round robin), plus a few in
        # tier-2s for extra AS diversity.
        probes: List[Probe] = []
        host_cycle = stub_asns + tier2_asns[1:3]
        for probe_id in range(params.n_probes):
            asn = host_cycle[probe_id % len(host_cycle)]
            nodes = stub_nodes.get(asn) or tier2_nodes[asn]
            router = nodes[probe_id % len(nodes)]
            allocator = self._allocators[asn]
            probes.append(
                Probe(
                    probe_id,
                    allocator.next_ip(),
                    asn,
                    router,
                    ip6=allocator.next_ip6(),
                )
            )

        # Anchors: unicast targets in stub and tier-2 ASes.
        anchors: List[Anchor] = []
        anchor_hosts = (stub_asns[::3] + tier2_list[1:])[: params.n_anchors]
        for index, asn in enumerate(anchor_hosts):
            nodes = stub_nodes.get(asn) or tier2_nodes[asn]
            # Attach to the AS's last router so an anchor never coincides
            # with the router a co-located probe sits on (probes fill the
            # list from the front) — real anchors are dedicated machines.
            node = nodes[-1]
            allocator = self._allocators[asn]
            anchors.append(
                Anchor(
                    f"anchor{index}",
                    allocator.next_ip(),
                    node,
                    asn,
                    ip6=allocator.next_ip6(),
                )
            )

        return Topology(
            graph=self._graph,
            ases=self._ases,
            routers=self._routers,
            probes=probes,
            services=services,
            anchors=anchors,
            params=params,
            seed=self.seed,
        )

    def _instance_link(
        self,
        upstream: str,
        instance: str,
        service_ip: str,
        service_ip6: str,
        ixp_asn: Optional[int],
    ) -> None:
        """Wire an anycast instance to an upstream router.

        The forward edge's ingress IPs are the anycast service addresses
        (the last hop of a traceroute to the service); the return edge
        uses normal interfaces of the upstream router.
        """
        params = self.params
        base = self._delay(params.ixp_lan_delay)
        instance_asn = self._routers[instance].asn
        self._graph.add_edge(
            upstream,
            instance,
            ingress_ip=service_ip,
            ingress_ip6=service_ip6,
            ingress_asn=instance_asn,
            base_delay_ms=base,
            weight=self._weight(base),
            loss=params.base_loss,
        )
        owner = ixp_asn if ixp_asn is not None else self._routers[upstream].asn
        allocator = self._allocators[owner]
        # The exit edge carries a prohibitive routing weight: replies from
        # the instance still use it (every return path must), but no
        # transit path ever enters-and-exits a root server — servers
        # answer queries, they do not forward traffic.
        self._graph.add_edge(
            instance,
            upstream,
            ingress_ip=allocator.next_ip(),
            ingress_ip6=allocator.next_ip6(),
            ingress_asn=owner,
            base_delay_ms=base * float(self._rng.uniform(0.92, 1.08)),
            weight=self._weight(base) + 1e9,
            loss=params.base_loss,
        )


def build_topology(
    params: Optional[TopologyParams] = None, seed: int = 0
) -> Topology:
    """Build the synthetic Internet with the given parameters and seed."""
    return TopologyBuilder(params, seed).build()
