"""Measurement platform: schedules campaigns like RIPE Atlas does.

The paper consumes two repetitive measurement classes (§2): *builtin*
(every probe → the anycast DNS root services, each 30 minutes) and
*anchoring* (probes → anchors, each 15 minutes).  :class:`AtlasPlatform`
reproduces those schedules over the synthetic topology, staggering probes
inside the interval like the real scheduler, and yields results in
timestamp order ready for :class:`~repro.atlas.stream.TimeBinner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.atlas.measurements import ANCHORING, BUILTIN, MeasurementSpec
from repro.atlas.model import Traceroute
from repro.net.asmap import AsMapper
from repro.simulation.delays import NoiseParams
from repro.simulation.scenarios import Scenario
from repro.simulation.topology import Topology
from repro.simulation.tracer import TargetSpec, TracerouteEngine

#: msm_id bases mirroring Atlas conventions (builtin root measurements
#: have small ids, anchoring measurements large ones).
BUILTIN_MSM_BASE = 5000
ANCHORING_MSM_BASE = 1_000_000


@dataclass
class CampaignConfig:
    """What to measure and for how long."""

    start: int = 0
    duration_s: int = 24 * 3600
    include_builtin: bool = True
    include_anchoring: bool = True
    builtin_spec: MeasurementSpec = field(default_factory=lambda: BUILTIN)
    anchoring_spec: MeasurementSpec = field(default_factory=lambda: ANCHORING)
    #: optionally restrict probes / targets (None = all)
    probe_ids: Optional[Sequence[int]] = None
    service_names: Optional[Sequence[str]] = None
    anchor_names: Optional[Sequence[str]] = None
    #: address family of the measurements (4 or 6)
    address_family: int = 4

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive: {self.duration_s}")
        if not (self.include_builtin or self.include_anchoring):
            raise ValueError("campaign must include at least one measurement class")
        if self.address_family not in (4, 6):
            raise ValueError(f"address_family must be 4 or 6: {self.address_family}")

    @property
    def end(self) -> int:
        return self.start + self.duration_s


class AtlasPlatform:
    """Simulated measurement platform over a synthetic topology."""

    def __init__(
        self,
        topology: Topology,
        scenario: Optional[Scenario] = None,
        noise: Optional[NoiseParams] = None,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.engine = TracerouteEngine(
            topology, scenario=scenario, noise=noise, seed=seed
        )
        self.seed = seed
        self._rng = np.random.default_rng(seed ^ 0x5EED)

    # -- metadata ---------------------------------------------------------

    def as_mapper(self) -> AsMapper:
        """IP→AS mapper loaded with the topology's prefix table."""
        return AsMapper(self.topology.prefix_table())

    def builtin_targets(
        self, names: Optional[Sequence[str]] = None, af: int = 4
    ) -> List[TargetSpec]:
        services = self.topology.services
        selected = names if names is not None else sorted(services)
        return [
            TargetSpec.for_service(
                services[name], msm_id=BUILTIN_MSM_BASE + i, af=af
            )
            for i, name in enumerate(selected)
        ]

    def anchoring_targets(
        self, names: Optional[Sequence[str]] = None, af: int = 4
    ) -> List[TargetSpec]:
        anchors = {anchor.name: anchor for anchor in self.topology.anchors}
        selected = names if names is not None else sorted(anchors)
        return [
            TargetSpec.for_anchor(
                anchors[name], msm_id=ANCHORING_MSM_BASE + i, af=af
            )
            for i, name in enumerate(selected)
        ]

    def _probes(self, probe_ids: Optional[Sequence[int]]):
        if probe_ids is None:
            return list(self.topology.probes)
        wanted = set(probe_ids)
        return [p for p in self.topology.probes if p.probe_id in wanted]

    # -- campaign execution -------------------------------------------------

    def run_campaign(self, config: CampaignConfig) -> Iterator[Traceroute]:
        """Yield every traceroute of the campaign in timestamp order.

        Scheduled jobs whose probe is disconnected at launch time
        (:meth:`Scenario.probe_active`, e.g. under
        :class:`~repro.simulation.scenarios.ProbeChurnScenario`) are
        skipped, like a real probe missing its measurement slot.
        """
        probes = self._probes(config.probe_ids)
        if not probes:
            raise ValueError("campaign has no probes")
        jobs = []  # (timestamp, sequence, probe, target)
        if config.include_builtin:
            targets = self.builtin_targets(
                config.service_names, af=config.address_family
            )
            jobs.extend(
                self._schedule(probes, targets, config.builtin_spec, config)
            )
        if config.include_anchoring:
            targets = self.anchoring_targets(
                config.anchor_names, af=config.address_family
            )
            jobs.extend(
                self._schedule(probes, targets, config.anchoring_spec, config)
            )
        jobs.sort(key=lambda job: (job[0], job[1]))
        scenario = self.engine.scenario
        for timestamp, _, probe, target in jobs:
            if not scenario.probe_active(probe.probe_id, timestamp):
                continue
            yield self.engine.run(probe, target, timestamp)

    def _schedule(self, probes, targets, spec: MeasurementSpec, config):
        jobs = []
        sequence = 0
        for probe in probes:
            for target in targets:
                offset = int(self._rng.integers(0, spec.interval_s))
                for timestamp in spec.schedule(
                    config.start, config.end, offset=offset
                ):
                    jobs.append((timestamp, sequence, probe, target))
                    sequence += 1
        return jobs

    def campaign_size(self, config: CampaignConfig) -> int:
        """Number of traceroutes the campaign will produce (no execution).

        An upper bound when the scenario churns probes: jobs skipped for
        disconnected probes are still counted.
        """
        probes = len(self._probes(config.probe_ids))
        total = 0
        if config.include_builtin:
            n_targets = len(self.builtin_targets(config.service_names))
            per_pair = config.duration_s // config.builtin_spec.interval_s
            total += probes * n_targets * per_pair
        if config.include_anchoring:
            n_targets = len(self.anchoring_targets(config.anchor_names))
            per_pair = config.duration_s // config.anchoring_spec.interval_s
            total += probes * n_targets * per_pair
        return total
