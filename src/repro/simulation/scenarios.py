"""Event scenarios replaying (and stressing beyond) the paper's case studies.

The paper validates its methods on three 2015 events.  Each scenario here
injects the same *signal type* into the simulated network:

* :class:`DdosScenario` (§7.1) — congestion (large delay shifts, mild
  loss) on the last-hop and upstream links of a subset of anycast root
  instances, over one or more attack windows.  Some instances are hit by
  both attacks, some by one, some spared — matching Figure 7.
* :class:`RouteLeakScenario` (§7.2) — traffic to a set of destinations is
  rerouted through a leaker AS (waypoint routing) while links inside the
  affected tier-1 carry heavy extra delay and packet loss, producing
  simultaneous delay *and* forwarding anomalies (Figures 9-12).
* :class:`IxpOutageScenario` (§7.3) — the IXP peering LAN blackholes all
  traffic: pure packet loss, **no** RTT samples, detectable only by the
  forwarding model (Figure 13).

Beyond the paper's three events, the quality bench adds scenarios the
case studies do not exercise:

* :class:`CatchmentShiftScenario` — an anycast catchment flip: probes
  served by one instance are silently redirected to another.  A pure
  forwarding signal (new paths reuse existing links, so differential
  RTTs barely move).
* :class:`BgpHijackScenario` — an interception hijack pulling traffic
  through a hijacker router, either for every probe (sub-prefix: more
  specific wins everywhere) or only for probes closer to the hijacker
  than to the victim (exact-prefix: propagation is distance-limited).
* :class:`DiurnalCongestionScenario` — a smooth sinusoidal congestion
  ramp instead of a step, stressing the EWMA reference: early ramp bins
  sit below the detection threshold, so time-to-detection grows and
  recall floors are documented looser.
* :class:`ProbeChurnScenario` — probes flap on and off the platform (a
  schedule perturbation, not a data-plane one).  It emits an *empty*
  label set, so every alarm it provokes scores as a false positive —
  the bench's false-alarm-resistance probe.
* :class:`ScenarioFuzzer` — a seeded generator composing random labeled
  scenarios (optionally on random topologies) into adversarial
  :class:`CompositeScenario` campaigns.

Every scenario emits a machine-readable
:class:`~repro.quality.labels.GroundTruth` via :meth:`Scenario.ground_truth`
— per-(link, bin) delay labels and per-(model-key, bin) forwarding
labels derived from the exact perturbations applied — which
:mod:`repro.quality.scoring` matches against pipeline alarms.  Reroute
labels are computed by *divergence analysis*: for each affected
(probe, target) pair the normal and rerouted node paths are compared,
and the last common router whose **visible** next hop changes (at the
reported-IP level, honouring unresponsive routers) owns the forwarding
model the detector should flag.

Scenarios expose a small time-dependent interface consumed by the
traceroute engine; :class:`CompositeScenario` layers several events on one
campaign (used for the Figure 5 magnitude distributions).  All scenario
randomness iterates **sorted** containers when pairing RNG draws with
edges/probes, so identically-seeded scenarios are identical across
processes regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from repro.quality.labels import DelayLabel, ForwardingLabel, GroundTruth
from repro.simulation.routing import NoRouteError, RoutingEngine
from repro.simulation.topology import (
    IXP_ASES,
    Topology,
    TopologyParams,
    build_topology,
)

Edge = Tuple[str, str]
Window = Tuple[int, int]

#: Per-edge loss at or above this rate earns a forwarding ``loss`` label:
#: the upstream pattern's next-hop bucket visibly collapses into ``*``.
#: Milder loss (e.g. the DDoS scenario's 5%) shifts RTTs, not patterns.
LOSS_LABEL_FLOOR = 0.5


def _in_any_window(t: int, windows: Sequence[Window]) -> bool:
    return any(start <= t < end for start, end in windows)


class Scenario:
    """Neutral scenario: nothing ever happens.

    Subclasses override the queries they affect.  All methods must be
    cheap; the traceroute engine calls them in its packet loop.
    """

    name = "neutral"

    def active(self, t: int) -> bool:
        """Fast gate: False lets the engine skip all other queries."""
        return False

    def extra_delay_ms(self, u: str, v: str, t: int) -> float:
        """Additional one-way delay on directed edge (u, v) at time t."""
        return 0.0

    def extra_loss(self, u: str, v: str, t: int) -> float:
        """Additional loss probability on directed edge (u, v) at time t."""
        return 0.0

    def waypoint(
        self, probe_id: int, target_name: str, t: int
    ) -> Optional[Tuple[str, ...]]:
        """Reroute: ordered router nodes traffic must transit, or None."""
        return None

    def probe_active(self, probe_id: int, t: int) -> bool:
        """Whether the probe is connected to the platform at time t.

        Consulted by :class:`~repro.simulation.platform.AtlasPlatform`
        for every scheduled job, independent of :meth:`active` (churn
        perturbs the measurement schedule, not the data plane).
        """
        return True

    def windows(self) -> List[Window]:
        """Event windows, for benchmarks/reporting."""
        return []

    def ground_truth(self) -> GroundTruth:
        """Expected-anomaly labels for this scenario (empty when neutral)."""
        return GroundTruth()


@dataclass
class LinkPerturbation:
    """Delay/loss perturbation applied to a set of directed edges."""

    edges: Set[Edge]
    delay_shift_ms: Dict[Edge, float]
    loss: Dict[Edge, float]


# -- ground-truth derivation helpers ---------------------------------------


def _edge_ip(topology: Optional[Topology], edge: Edge) -> str:
    """Ingress interface IP of a directed topology edge ("" if unknown)."""
    if topology is None:
        return ""
    graph = topology.graph
    if not graph.has_edge(*edge):
        return ""
    return graph[edge[0]][edge[1]].get("ingress_ip") or ""


def _perturbation_truth(
    topology: Optional[Topology],
    name: str,
    perturbation: LinkPerturbation,
    windows: Sequence[Window],
) -> GroundTruth:
    """Labels for a fixed link perturbation: one per (edge, window).

    Delay-shifted edges yield :class:`DelayLabel`\\ s; edges losing at
    least :data:`LOSS_LABEL_FLOOR` of their packets yield forwarding
    ``loss`` labels.  Without a topology the interface IP is left empty
    (labels remain usable for coverage property tests).
    """
    delay: List[DelayLabel] = []
    forwarding: List[ForwardingLabel] = []
    for start, end in windows:
        for edge in sorted(perturbation.edges):
            ip = _edge_ip(topology, edge)
            shift = perturbation.delay_shift_ms.get(edge, 0.0)
            if shift > 0.0:
                delay.append(
                    DelayLabel(
                        edge=edge,
                        ip=ip,
                        start=start,
                        end=end,
                        shift_ms=shift,
                        event=name,
                    )
                )
            if perturbation.loss.get(edge, 0.0) >= LOSS_LABEL_FLOOR:
                forwarding.append(
                    ForwardingLabel(
                        edge=edge,
                        ip=ip,
                        start=start,
                        end=end,
                        kind="loss",
                        event=name,
                    )
                )
    return GroundTruth(tuple(delay), tuple(forwarding))


def _divergence_index(normal: List[str], via: List[str]) -> Optional[int]:
    """First position where the two node paths differ (None if identical)."""
    n = min(len(normal), len(via))
    for i in range(n):
        if normal[i] != via[i]:
            return i
    if len(normal) != len(via):
        return n
    return None


def _reported_ip(topology: Topology, path: List[str], k: int) -> Optional[str]:
    """IP by which router ``path[k]`` is reported on this path (IPv4).

    Mirrors the traceroute engine: hop 0 answers from its loopback,
    later hops from the ingress interface of the edge they were entered
    by; unresponsive routers report nothing.
    """
    node = path[k]
    info = topology.routers.get(node)
    if info is None or not info.responsive:
        return None
    if k == 0:
        return info.loopback_ip
    return topology.graph[path[k - 1]][node].get("ingress_ip")


def _visible_next_hop(
    topology: Topology, path: List[str], k: int, dst_ip: str
) -> str:
    """Reported next-hop token composing router k's forwarding pattern."""
    nxt = path[k + 1]
    if k + 1 == len(path) - 1:
        return dst_ip  # the destination answers from the target address
    if not topology.routers[nxt].responsive:
        return "*"
    return topology.graph[path[k]][nxt].get("ingress_ip") or "*"


def _pattern_change_ip(
    topology: Topology, normal: List[str], via: List[str], dst_ip: str
) -> Optional[str]:
    """Router IP whose forwarding pattern visibly changes under a reroute.

    Walks back from the path-divergence point to the nearest responsive
    router and checks that its *reported* next hop actually differs
    between the two paths — unresponsive routers and ``*`` collisions
    can make a topological reroute invisible at the traceroute level, in
    which case no label is emitted (the detector cannot see it either).
    """
    i = _divergence_index(normal, via)
    if i is None or i == 0:
        return None
    for k in range(i - 1, -1, -1):
        if k >= len(normal) - 1 or k >= len(via) - 1:
            continue
        ip = _reported_ip(topology, normal, k)
        if ip is None:
            continue  # no pattern owned here; look one hop upstream
        near = _visible_next_hop(topology, normal, k, dst_ip)
        far = _visible_next_hop(topology, via, k, dst_ip)
        if near == far:
            return None  # change invisible at the reporting level
        return ip
    return None


def _reroute_labels(
    topology: Topology,
    cases: Iterable[Tuple[List[str], List[str], str]],
    window: Window,
    event: str,
) -> List[ForwardingLabel]:
    """Deduplicated reroute labels for (normal, via, dst_ip) path cases."""
    keys: Set[Tuple[str, str]] = set()
    for normal, via, dst_ip in cases:
        ip = _pattern_change_ip(topology, normal, via, dst_ip)
        if ip:
            keys.add((ip, dst_ip))
    start, end = window
    return [
        ForwardingLabel(
            ip=ip,
            destination=dst,
            start=start,
            end=end,
            kind="reroute",
            event=event,
        )
        for ip, dst in sorted(keys)
    ]


class WindowedLinkScenario(Scenario):
    """Base for scenarios that perturb fixed link sets in fixed windows.

    When constructed with a *topology*, :meth:`ground_truth` resolves
    each perturbed edge to its ingress interface IP so labels can be
    matched against alarms; without one, labels carry the edge only.
    """

    def __init__(
        self,
        name: str,
        perturbation: LinkPerturbation,
        windows: Sequence[Window],
        topology: Optional[Topology] = None,
    ) -> None:
        self.name = name
        self._perturbation = perturbation
        self._windows = list(windows)
        self._topology = topology
        self._truth: Optional[GroundTruth] = None

    def active(self, t: int) -> bool:
        return _in_any_window(t, self._windows)

    def extra_delay_ms(self, u: str, v: str, t: int) -> float:
        if not self.active(t):
            return 0.0
        return self._perturbation.delay_shift_ms.get((u, v), 0.0)

    def extra_loss(self, u: str, v: str, t: int) -> float:
        if not self.active(t):
            return 0.0
        return self._perturbation.loss.get((u, v), 0.0)

    def windows(self) -> List[Window]:
        return list(self._windows)

    @property
    def perturbed_edges(self) -> Set[Edge]:
        return set(self._perturbation.edges)

    def ground_truth(self) -> GroundTruth:
        """Per-(edge, window) delay and loss labels (computed lazily)."""
        if self._truth is None:
            self._truth = _perturbation_truth(
                self._topology, self.name, self._perturbation, self._windows
            )
        return self._truth


def _both_directions(edges: Iterable[Edge]) -> Set[Edge]:
    result: Set[Edge] = set()
    for u, v in edges:
        result.add((u, v))
        result.add((v, u))
    return result


class DdosScenario(WindowedLinkScenario):
    """DDoS against an anycast service (§7.1, K-root case study).

    Congests the last-hop edges of the *attacked* instances plus one ring
    of upstream edges.  Delay shifts are drawn per link from
    ``[min_shift, max_shift]``; a mild loss rate models saturated queues
    (root operators reported negligible loss at the servers themselves,
    but their upstreams dropped some packets).
    """

    def __init__(
        self,
        topology: Topology,
        service_name: str,
        attacked_instances: Sequence[str],
        windows: Sequence[Window],
        min_shift_ms: float = 8.0,
        max_shift_ms: float = 30.0,
        loss: float = 0.05,
        seed: int = 0,
    ) -> None:
        service = topology.services[service_name]
        known = {instance.node for instance in service.instances}
        unknown = set(attacked_instances) - known
        if unknown:
            raise ValueError(f"unknown instances: {sorted(unknown)}")
        rng = np.random.default_rng(seed)
        graph = topology.graph
        # Instance routers of *any* service must not enter the upstream
        # ring: at an IXP, instances of several roots share the peering
        # LAN and we would otherwise congest a spared instance's last hop.
        all_instances = {
            instance.node
            for svc in topology.services.values()
            for instance in svc.instances
        }
        edges: Set[Edge] = set()
        for instance_node in attacked_instances:
            # Last-hop edges into the attacked instance...
            for upstream in graph.predecessors(instance_node):
                if graph.nodes[upstream].get("virtual"):
                    continue
                edges |= _both_directions([(upstream, instance_node)])
                # ...and one ring of upstream edges feeding that router.
                for far in graph.predecessors(upstream):
                    if graph.nodes[far].get("virtual"):
                        continue
                    if far in all_instances:
                        continue
                    edges |= _both_directions([(far, upstream)])
        delay_shift = {}
        loss_map = {}
        # Sorted iteration: the per-edge uniform draws pair with edges
        # in a stable order, so campaigns are reproducible across
        # processes (set order follows the per-process string-hash seed).
        for u, v in sorted(edges):
            delay_shift[(u, v)] = float(rng.uniform(min_shift_ms, max_shift_ms))
            loss_map[(u, v)] = loss
        super().__init__(
            name=f"ddos:{service_name}",
            perturbation=LinkPerturbation(edges, delay_shift, loss_map),
            windows=windows,
            topology=topology,
        )
        self.service_name = service_name
        self.attacked_instances = list(attacked_instances)


class RouteLeakScenario(Scenario):
    """BGP route leak pulling traffic through a leaker AS (§7.2).

    During the leak window, traceroutes towards the *leaked targets* are
    attracted into the victim tier-1 at ``leak_entry`` (the border that
    accepted the leaked announcements — Level(3) Global Crossing in the
    2015 event) and forwarded on to ``leak_waypoint`` (a router of the
    leaker AS) before resuming towards the destination.  Simultaneously
    the ``congested_edges`` — by default the links around the entry
    router plus the entry→leaker corridor — suffer a large delay shift
    and packet loss, reproducing the Level(3) congestion of Figs. 9-12.

    The default loss (0.2 per edge) compounds along multi-edge paths
    through the victim: hops a few congested edges deep lose the
    majority of their packets — enough for the forwarding model to
    devalue the victim's next hops (Fig. 10) — while links near the
    edge of the congested region keep enough diverse RTT samples for
    the delay method to fire too (Fig. 11a).
    """

    def __init__(
        self,
        topology: Topology,
        leak_waypoint: str,
        leaked_targets: Sequence[str],
        window: Window,
        leak_entry: Optional[str] = None,
        congested_edges: Optional[Iterable[Edge]] = None,
        delay_shift_range_ms: Tuple[float, float] = (80.0, 250.0),
        loss: float = 0.2,
        seed: int = 0,
    ) -> None:
        if leak_waypoint not in topology.graph:
            raise ValueError(f"unknown waypoint node: {leak_waypoint}")
        if leak_entry is not None and leak_entry not in topology.graph:
            raise ValueError(f"unknown entry node: {leak_entry}")
        self.name = "route-leak"
        self.leak_waypoint = leak_waypoint
        self.leak_entry = leak_entry
        self.leaked_targets = set(leaked_targets)
        self._window = window
        if congested_edges is None:
            congested_edges = self._default_congested_edges(topology)
        rng = np.random.default_rng(seed)
        edges = _both_directions(congested_edges)
        # Sorted for cross-process reproducibility (see DdosScenario).
        self._delay_shift = {
            edge: float(rng.uniform(*delay_shift_range_ms))
            for edge in sorted(edges)
        }
        self._loss = {edge: loss for edge in edges}
        self._edges = edges
        self._topology = topology
        self._truth: Optional[GroundTruth] = None

    def _default_congested_edges(self, topology: Topology) -> List[Edge]:
        """Victim-AS links plus the corridor into the leaker.

        The 2015 event congested links *inside* both Level(3) ASes — even
        traffic not rerouted through Malaysia suffered (paper §7.2) — so
        the default congests every link whose reported interface belongs
        to the entry router's AS (and its sibling tier-1, Level(3)
        Communications, when the entry is Level(3) Global Crossing),
        plus the links feeding the leaker.
        """
        graph = topology.graph
        edges: List[Edge] = []
        victim_asns = set()
        if self.leak_entry is not None:
            entry_asn = graph.nodes[self.leak_entry].get("asn")
            if entry_asn is not None:
                victim_asns.add(entry_asn)
            if entry_asn == 3549:  # the 2015 pair of Level(3) ASes
                victim_asns.add(3356)
        for asn in victim_asns:
            edges.extend(topology.edges_of_as(asn))
        for neighbour in graph.predecessors(self.leak_waypoint):
            if not graph.nodes[neighbour].get("virtual"):
                edges.append((neighbour, self.leak_waypoint))
        if not edges:
            raise ValueError("no congested edges could be derived")
        return edges

    def active(self, t: int) -> bool:
        start, end = self._window
        return start <= t < end

    def extra_delay_ms(self, u: str, v: str, t: int) -> float:
        if not self.active(t):
            return 0.0
        return self._delay_shift.get((u, v), 0.0)

    def extra_loss(self, u: str, v: str, t: int) -> float:
        if not self.active(t):
            return 0.0
        return self._loss.get((u, v), 0.0)

    def waypoint(
        self, probe_id: int, target_name: str, t: int
    ) -> Optional[Tuple[str, ...]]:
        if self.active(t) and target_name in self.leaked_targets:
            if self.leak_entry is not None:
                return (self.leak_entry, self.leak_waypoint)
            return (self.leak_waypoint,)
        return None

    def windows(self) -> List[Window]:
        return [self._window]

    @property
    def perturbed_edges(self) -> Set[Edge]:
        return set(self._edges)

    def ground_truth(self) -> GroundTruth:
        """Congestion delay labels plus divergence-derived reroute labels."""
        if self._truth is None:
            self._truth = self._build_truth()
        return self._truth

    def _build_truth(self) -> GroundTruth:
        topology = self._topology
        start, end = self._window
        perturbation = LinkPerturbation(
            self._edges, self._delay_shift, self._loss
        )
        base = _perturbation_truth(
            topology, self.name, perturbation, [self._window]
        )
        routing = RoutingEngine(topology)
        if self.leak_entry is not None:
            waypoints = [self.leak_entry, self.leak_waypoint]
        else:
            waypoints = [self.leak_waypoint]
        anchors = {a.name: a for a in topology.anchors}
        services = topology.services
        cases = []
        for name in sorted(self.leaked_targets):
            for probe in topology.probes:
                try:
                    if name in anchors:
                        anchor = anchors[name]
                        normal = routing.forward_path(probe.router, anchor.node)
                        via = routing.forward_path_via(
                            probe.router, waypoints, anchor.node
                        )
                        cases.append((normal, via, anchor.ip))
                    elif name in services:
                        svc = services[name]
                        normal = routing.forward_path_to_service(
                            probe.router, svc
                        )
                        via = routing.forward_path_via_to_service(
                            probe.router, waypoints, svc
                        )
                        cases.append((normal, via, svc.service_ip))
                except NoRouteError:
                    continue
        reroutes = _reroute_labels(topology, cases, self._window, self.name)
        return GroundTruth(
            base.delay, tuple(list(base.forwarding) + reroutes)
        )


class IxpOutageScenario(WindowedLinkScenario):
    """IXP peering-LAN blackhole (§7.3, AMS-IX case study).

    Every directed edge whose ingress interface sits in the IXP prefix
    drops all packets during the outage window: hops behind the LAN stop
    responding entirely, so the delay method starves while the forwarding
    model sees the LAN next hops vanish (negative responsibility).
    """

    def __init__(
        self, topology: Topology, ixp_asn: int, window: Window
    ) -> None:
        lan_edges = set(topology.ixp_lan_edges(ixp_asn))
        if not lan_edges:
            raise ValueError(f"AS{ixp_asn} has no peering-LAN edges")
        super().__init__(
            name=f"ixp-outage:AS{ixp_asn}",
            perturbation=LinkPerturbation(
                edges=lan_edges,
                delay_shift_ms={},
                loss={edge: 1.0 for edge in lan_edges},
            ),
            windows=[window],
            topology=topology,
        )
        self.ixp_asn = ixp_asn


class CatchmentShiftScenario(Scenario):
    """Anycast catchment flip: one instance's probes land on another.

    Models a routing-policy change (or withdrawal-and-reannounce) that
    silently moves the catchment of ``from_instance`` to
    ``to_instance`` during the window — the failure mode anycast
    operators fear because users see latency change with no outage.  The
    data plane is untouched: affected probes are simply waypointed
    through an upstream of the destination instance, so the signal is
    purely a forwarding-pattern change at each probe's path-divergence
    router (no delay labels).
    """

    def __init__(
        self,
        topology: Topology,
        service_name: str,
        from_instance: str,
        to_instance: str,
        window: Window,
        probe_ids: Optional[Sequence[int]] = None,
    ) -> None:
        if service_name not in topology.services:
            raise ValueError(f"unknown service: {service_name}")
        service = topology.services[service_name]
        known = {instance.node for instance in service.instances}
        for node in (from_instance, to_instance):
            if node not in known:
                raise ValueError(f"unknown instance: {node}")
        if from_instance == to_instance:
            raise ValueError("from_instance and to_instance must differ")
        graph = topology.graph
        entries = sorted(
            node
            for node in graph.predecessors(to_instance)
            if not graph.nodes[node].get("virtual")
        )
        if not entries:
            raise ValueError(f"{to_instance} has no physical upstream")
        self.name = f"catchment:{service_name}"
        self.service_name = service_name
        self.from_instance = from_instance
        self.to_instance = to_instance
        self._window = window
        self._via = (entries[0],)
        self._topology = topology
        self._routing = RoutingEngine(topology)
        probes = topology.probes
        if probe_ids is not None:
            wanted = set(probe_ids)
            probes = [p for p in probes if p.probe_id in wanted]
        self.shifted_probes = {
            probe.probe_id
            for probe in probes
            if self._routing.instance_for(probe.router, service)
            == from_instance
        }
        self._truth: Optional[GroundTruth] = None

    @classmethod
    def largest_shift(
        cls,
        topology: Topology,
        service_name: str,
        window: Window,
        probe_ids: Optional[Sequence[int]] = None,
    ) -> "CatchmentShiftScenario":
        """Shift the most-populated catchment onto the least-populated one.

        Convenience constructor for benches and the CLI: picks the
        (from, to) instance pair maximising affected probes.
        """
        service = topology.services[service_name]
        routing = RoutingEngine(topology)
        probes = topology.probes
        if probe_ids is not None:
            wanted = set(probe_ids)
            probes = [p for p in probes if p.probe_id in wanted]
        counts = {instance.node: 0 for instance in service.instances}
        for probe in probes:
            counts[routing.instance_for(probe.router, service)] += 1
        ranked = sorted(counts, key=lambda node: (counts[node], node))
        return cls(
            topology,
            service_name,
            from_instance=ranked[-1],
            to_instance=ranked[0],
            window=window,
            probe_ids=probe_ids,
        )

    def active(self, t: int) -> bool:
        start, end = self._window
        return start <= t < end

    def waypoint(
        self, probe_id: int, target_name: str, t: int
    ) -> Optional[Tuple[str, ...]]:
        if (
            self.active(t)
            and target_name == self.service_name
            and probe_id in self.shifted_probes
        ):
            return self._via
        return None

    def windows(self) -> List[Window]:
        return [self._window]

    def ground_truth(self) -> GroundTruth:
        """Divergence-derived reroute labels for every shifted probe."""
        if self._truth is None:
            topology = self._topology
            service = topology.services[self.service_name]
            cases = []
            for probe in topology.probes:
                if probe.probe_id not in self.shifted_probes:
                    continue
                try:
                    normal = self._routing.forward_path_to_service(
                        probe.router, service
                    )
                    via = self._routing.forward_path_via_to_service(
                        probe.router, list(self._via), service
                    )
                except NoRouteError:
                    continue
                cases.append((normal, via, service.service_ip))
            self._truth = GroundTruth(
                forwarding=tuple(
                    _reroute_labels(
                        topology, cases, self._window, self.name
                    )
                )
            )
        return self._truth


class BgpHijackScenario(Scenario):
    """Interception hijack: traffic to victim anchors transits a hijacker.

    ``mode="subprefix"`` announces a more-specific prefix, which wins
    everywhere: every probe's traffic to the targets detours through the
    ``hijacker`` router.  ``mode="exact"`` announces the same prefix, so
    BGP's shortest-path preference limits the blast radius: only probes
    whose routing distance to the hijacker is smaller than to the victim
    are captured.  Traffic still reaches the destination (an
    interception, not a blackhole), so the only signal is the forwarding
    pattern flip at each captured probe's divergence router.
    """

    def __init__(
        self,
        topology: Topology,
        hijacker: str,
        target_names: Sequence[str],
        window: Window,
        mode: str = "subprefix",
        probe_ids: Optional[Sequence[int]] = None,
    ) -> None:
        if hijacker not in topology.routers:
            raise ValueError(f"unknown hijacker router: {hijacker}")
        if mode not in ("subprefix", "exact"):
            raise ValueError(f"mode must be subprefix or exact: {mode}")
        anchors = {a.name: a for a in topology.anchors}
        unknown = set(target_names) - set(anchors)
        if unknown:
            raise ValueError(f"unknown anchors: {sorted(unknown)}")
        if not target_names:
            raise ValueError("hijack needs at least one target")
        self.name = f"hijack-{mode}"
        self.hijacker = hijacker
        self.mode = mode
        self._window = window
        self._topology = topology
        self._targets = {name: anchors[name] for name in sorted(target_names)}
        probes = topology.probes
        if probe_ids is not None:
            wanted = set(probe_ids)
            probes = [p for p in probes if p.probe_id in wanted]
        self._probes = list(probes)
        graph = topology.graph
        if mode == "subprefix":
            everyone = {p.probe_id for p in probes}
            self.captured = {name: set(everyone) for name in self._targets}
        else:
            reversed_graph = graph.reverse(copy=False)
            to_hijacker = nx.single_source_dijkstra_path_length(
                reversed_graph, hijacker, weight="weight"
            )
            self.captured = {}
            for name, anchor in self._targets.items():
                to_victim = nx.single_source_dijkstra_path_length(
                    reversed_graph, anchor.node, weight="weight"
                )
                self.captured[name] = {
                    p.probe_id
                    for p in probes
                    if to_hijacker.get(p.router, math.inf)
                    < to_victim.get(p.router, math.inf)
                }
        self._truth: Optional[GroundTruth] = None

    def active(self, t: int) -> bool:
        start, end = self._window
        return start <= t < end

    def waypoint(
        self, probe_id: int, target_name: str, t: int
    ) -> Optional[Tuple[str, ...]]:
        if not self.active(t):
            return None
        captured = self.captured.get(target_name)
        if captured is not None and probe_id in captured:
            return (self.hijacker,)
        return None

    def windows(self) -> List[Window]:
        return [self._window]

    def ground_truth(self) -> GroundTruth:
        """Reroute labels at the divergence router of each captured path."""
        if self._truth is None:
            topology = self._topology
            routing = RoutingEngine(topology)
            cases = []
            for name, anchor in self._targets.items():
                captured = self.captured[name]
                for probe in self._probes:
                    if probe.probe_id not in captured:
                        continue
                    try:
                        normal = routing.forward_path(
                            probe.router, anchor.node
                        )
                        via = routing.forward_path_via(
                            probe.router, [self.hijacker], anchor.node
                        )
                    except NoRouteError:
                        continue
                    cases.append((normal, via, anchor.ip))
            self._truth = GroundTruth(
                forwarding=tuple(
                    _reroute_labels(topology, cases, self._window, self.name)
                )
            )
        return self._truth


class DiurnalCongestionScenario(Scenario):
    """Gradual diurnal congestion ramp — stresses the EWMA, not a step.

    Extra delay on the target edges follows a raised-sine profile inside
    each window: zero at the window edges, the per-edge peak at the
    midpoint.  Early ramp bins sit below the confidence-interval
    separation the detector requires, so detection lags the window start
    — the quality bench documents looser recall floors and a non-zero
    time-to-detection for this scenario, unlike the step events.

    Labels cover the *full* window for every ramped edge (the
    perturbation is genuinely applied there, however small), which is
    exactly why the documented floors are looser.
    """

    def __init__(
        self,
        topology: Topology,
        windows: Sequence[Window],
        asn: int = 174,
        edges: Optional[Iterable[Edge]] = None,
        peak_shift_range_ms: Tuple[float, float] = (15.0, 40.0),
        seed: int = 0,
    ) -> None:
        if edges is None:
            edges = topology.edges_of_as(asn)
        edge_set = set(edges)
        if not edge_set:
            raise ValueError(f"no edges to ramp (AS{asn})")
        for start, end in windows:
            if end <= start:
                raise ValueError(f"bad window: {(start, end)}")
        rng = np.random.default_rng(seed)
        # Sorted for cross-process reproducibility (see DdosScenario).
        self._peaks = {
            edge: float(rng.uniform(*peak_shift_range_ms))
            for edge in sorted(edge_set)
        }
        self.name = f"diurnal:AS{asn}"
        self._windows = list(windows)
        self._topology = topology
        self._truth: Optional[GroundTruth] = None

    def active(self, t: int) -> bool:
        return _in_any_window(t, self._windows)

    def _shape(self, t: int) -> float:
        """Raised-sine ramp factor in [0, 1] (0 outside all windows)."""
        for start, end in self._windows:
            if start <= t < end:
                phase = (t - start) / (end - start)
                return math.sin(math.pi * phase) ** 2
        return 0.0

    def extra_delay_ms(self, u: str, v: str, t: int) -> float:
        peak = self._peaks.get((u, v))
        if peak is None:
            return 0.0
        return peak * self._shape(t)

    def windows(self) -> List[Window]:
        return list(self._windows)

    @property
    def perturbed_edges(self) -> Set[Edge]:
        """Directed edges carrying the congestion ramp."""
        return set(self._peaks)

    def peak_shift_ms(self, edge: Edge) -> float:
        """Peak (mid-window) delay shift applied to *edge*."""
        return self._peaks.get(edge, 0.0)

    def ground_truth(self) -> GroundTruth:
        """Full-window delay labels at each ramped edge's peak magnitude."""
        if self._truth is None:
            perturbation = LinkPerturbation(
                edges=set(self._peaks), delay_shift_ms=dict(self._peaks), loss={}
            )
            self._truth = _perturbation_truth(
                self._topology, self.name, perturbation, self._windows
            )
        return self._truth


class ProbeChurnScenario(Scenario):
    """Probes flap on and off the platform during the windows.

    A measurement-schedule perturbation: affected probes periodically
    disconnect (their scheduled traceroutes never run), as Atlas probes
    do behind flaky home connections.  No link or path is touched, so
    the ground truth is **empty** — every alarm raised during a churn
    campaign is a false positive, making this the bench's
    false-alarm-resistance scenario (the paper's methods are explicitly
    designed to survive probe arrival/departure, §4.1).
    """

    def __init__(
        self,
        topology: Topology,
        windows: Sequence[Window],
        fraction: float = 0.25,
        period_s: int = 1800,
        down_time_s: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1]: {fraction}")
        if period_s <= 0:
            raise ValueError(f"period_s must be positive: {period_s}")
        down = period_s // 2 if down_time_s is None else down_time_s
        if not 0 < down <= period_s:
            raise ValueError(f"down_time_s must be in (0, period]: {down}")
        self.name = "probe-churn"
        self._windows = list(windows)
        self._period = period_s
        self._down = down
        rng = np.random.default_rng(seed)
        # Sorted ids, then rng.choice: deterministic across processes.
        probe_ids = np.asarray(
            sorted(p.probe_id for p in topology.probes), dtype=np.int64
        )
        n_churned = max(1, int(round(fraction * len(probe_ids))))
        chosen = rng.choice(probe_ids, size=n_churned, replace=False)
        self._phases = {
            int(pid): int(rng.integers(0, period_s)) for pid in chosen.tolist()
        }

    @property
    def churned_probes(self) -> Set[int]:
        """Probe ids subject to flapping."""
        return set(self._phases)

    def probe_active(self, probe_id: int, t: int) -> bool:
        """False while an affected probe is in the down part of its cycle."""
        if not _in_any_window(t, self._windows):
            return True
        phase = self._phases.get(probe_id)
        if phase is None:
            return True
        return (t + phase) % self._period >= self._down

    def windows(self) -> List[Window]:
        return list(self._windows)


class CompositeScenario(Scenario):
    """Several scenarios layered on one campaign.

    Delay shifts add; losses combine as independent drop processes; the
    first member claiming a waypoint wins (route leaks rarely overlap);
    a probe is active only when every member agrees.  Ground truth is
    the merged label set of the members, with duplicate event names
    disambiguated.
    """

    def __init__(self, scenarios: Sequence[Scenario]) -> None:
        self.name = "+".join(s.name for s in scenarios) or "neutral"
        self._scenarios = list(scenarios)
        self._truth: Optional[GroundTruth] = None

    @property
    def members(self) -> List[Scenario]:
        """The layered member scenarios, in precedence order."""
        return list(self._scenarios)

    def active(self, t: int) -> bool:
        return any(s.active(t) for s in self._scenarios)

    def extra_delay_ms(self, u: str, v: str, t: int) -> float:
        return sum(s.extra_delay_ms(u, v, t) for s in self._scenarios)

    def extra_loss(self, u: str, v: str, t: int) -> float:
        survival = 1.0
        for scenario in self._scenarios:
            survival *= 1.0 - min(1.0, scenario.extra_loss(u, v, t))
        return 1.0 - survival

    def waypoint(
        self, probe_id: int, target_name: str, t: int
    ) -> Optional[Tuple[str, ...]]:
        for scenario in self._scenarios:
            via = scenario.waypoint(probe_id, target_name, t)
            if via is not None:
                return via
        return None

    def probe_active(self, probe_id: int, t: int) -> bool:
        return all(s.probe_active(probe_id, t) for s in self._scenarios)

    def windows(self) -> List[Window]:
        merged: List[Window] = []
        for scenario in self._scenarios:
            merged.extend(scenario.windows())
        return sorted(merged)

    def ground_truth(self) -> GroundTruth:
        """Union of the members' labels (duplicate events suffixed)."""
        if self._truth is None:
            self._truth = GroundTruth.merged(
                [s.ground_truth() for s in self._scenarios]
            )
        return self._truth


class ScenarioFuzzer:
    """Seeded generator of random labeled scenarios on a topology.

    Samples scenario *families* with randomized parameters and windows,
    composing them into adversarial :class:`CompositeScenario`
    campaigns whose merged ground truth stays exact — the quality bench
    and property tests use it to cover parameter space no hand-written
    case study reaches.  All draws come from one
    ``numpy.random.default_rng(seed)`` over sorted candidate lists, so
    equal seeds produce identical scenarios in any process.
    """

    #: Scenario families the fuzzer can draw from.
    FAMILIES: Tuple[str, ...] = (
        "ddos",
        "route-leak",
        "ixp-outage",
        "catchment-shift",
        "bgp-hijack",
        "diurnal",
        "probe-churn",
    )

    def __init__(
        self,
        topology: Topology,
        horizon_s: Window = (4 * 3600, 22 * 3600),
        seed: int = 0,
        families: Optional[Sequence[str]] = None,
    ) -> None:
        chosen = tuple(families) if families is not None else self.FAMILIES
        unknown = set(chosen) - set(self.FAMILIES)
        if unknown:
            raise ValueError(f"unknown families: {sorted(unknown)}")
        if not chosen:
            raise ValueError("need at least one family")
        if horizon_s[1] - horizon_s[0] < 3600:
            raise ValueError(f"horizon too short: {horizon_s}")
        self.topology = topology
        self.horizon_s = horizon_s
        self.families = chosen
        self._rng = np.random.default_rng(seed)

    @classmethod
    def on_random_topology(
        cls, seed: int = 0, **kwargs
    ) -> "ScenarioFuzzer":
        """Build a fuzzer over a randomly-sized generated topology."""
        rng = np.random.default_rng(seed ^ 0x70B0)
        params = TopologyParams(
            n_tier2=int(rng.integers(4, 8)),
            n_stub=int(rng.integers(8, 20)),
            n_probes=int(rng.integers(20, 60)),
            stub_dual_home_prob=float(rng.uniform(0.0, 0.5)),
        )
        topology = build_topology(
            params, seed=int(rng.integers(0, 2**31 - 1))
        )
        return cls(topology, seed=int(rng.integers(0, 2**31 - 1)), **kwargs)

    # -- sampling ----------------------------------------------------------

    def _choice(self, candidates: Sequence) -> object:
        """Uniform draw from an (already deterministic) ordered sequence."""
        return candidates[int(self._rng.integers(0, len(candidates)))]

    def _sample_window(self) -> Window:
        rng = self._rng
        h0, h1 = self.horizon_s
        duration = int(rng.integers(1, 4)) * 3600
        latest = max(h0, h1 - duration)
        slots = (latest - h0) // 600 + 1
        start = h0 + int(rng.integers(0, slots)) * 600
        return (start, start + duration)

    def sample_member(self, family: Optional[str] = None) -> Scenario:
        """Sample one randomized scenario (random family unless given)."""
        rng = self._rng
        if family is None:
            family = str(self._choice(self.families))
        topology = self.topology
        window = self._sample_window()
        seed = int(rng.integers(0, 2**31 - 1))
        if family == "ddos":
            service_name = str(self._choice(sorted(topology.services)))
            nodes = sorted(
                i.node for i in topology.services[service_name].instances
            )
            count = int(rng.integers(1, len(nodes) + 1))
            attacked = [
                str(node)
                for node in rng.choice(
                    np.asarray(nodes, dtype=object), size=count, replace=False
                )
            ]
            return DdosScenario(
                topology, service_name, attacked, windows=[window], seed=seed
            )
        if family == "route-leak":
            waypoint = str(self._choice(sorted(topology.routers)))
            anchor_names = sorted(a.name for a in topology.anchors)
            count = int(rng.integers(1, min(3, len(anchor_names)) + 1))
            leaked = {
                str(name)
                for name in rng.choice(
                    np.asarray(anchor_names, dtype=object),
                    size=count,
                    replace=False,
                )
            }
            return RouteLeakScenario(
                topology,
                leak_waypoint=waypoint,
                leaked_targets=leaked,
                window=window,
                seed=seed,
            )
        if family == "ixp-outage":
            candidates = [
                asn for asn, _ in IXP_ASES if topology.ixp_lan_edges(asn)
            ]
            return IxpOutageScenario(
                topology, ixp_asn=int(self._choice(candidates)), window=window
            )
        if family == "catchment-shift":
            service_name = str(self._choice(sorted(topology.services)))
            nodes = sorted(
                i.node for i in topology.services[service_name].instances
            )
            if len(nodes) < 2:
                return ProbeChurnScenario(
                    topology, windows=[window], seed=seed
                )
            src = str(self._choice(nodes))
            dst = str(self._choice([n for n in nodes if n != src]))
            return CatchmentShiftScenario(
                topology,
                service_name,
                from_instance=src,
                to_instance=dst,
                window=window,
            )
        if family == "bgp-hijack":
            hijacker = str(self._choice(sorted(topology.routers)))
            anchor_names = sorted(a.name for a in topology.anchors)
            count = int(rng.integers(1, min(2, len(anchor_names)) + 1))
            targets = [
                str(name)
                for name in rng.choice(
                    np.asarray(anchor_names, dtype=object),
                    size=count,
                    replace=False,
                )
            ]
            mode = str(self._choice(["subprefix", "exact"]))
            return BgpHijackScenario(
                topology, hijacker, targets, window=window, mode=mode
            )
        if family == "diurnal":
            candidates = sorted(
                asn
                for asn, info in topology.ases.items()
                if info.tier <= 2 and topology.edges_of_as(asn)
            )
            return DiurnalCongestionScenario(
                topology,
                windows=[window],
                asn=int(self._choice(candidates)),
                seed=seed,
            )
        # probe-churn
        return ProbeChurnScenario(
            topology,
            windows=[window],
            fraction=float(rng.uniform(0.1, 0.4)),
            period_s=int(self._choice([900, 1800, 3600])),
            seed=seed,
        )

    def sample(self, n_events: Optional[int] = None) -> CompositeScenario:
        """Compose a random campaign of ``n_events`` member scenarios."""
        if n_events is None:
            n_events = int(self._rng.integers(1, 4))
        if n_events < 1:
            raise ValueError(f"n_events must be >= 1: {n_events}")
        return CompositeScenario(
            [self.sample_member() for _ in range(n_events)]
        )
