"""Event scenarios replaying the paper's three case studies.

The paper validates its methods on three 2015 events.  Each scenario here
injects the same *signal type* into the simulated network:

* :class:`DdosScenario` (§7.1) — congestion (large delay shifts, mild
  loss) on the last-hop and upstream links of a subset of anycast root
  instances, over one or more attack windows.  Some instances are hit by
  both attacks, some by one, some spared — matching Figure 7.
* :class:`RouteLeakScenario` (§7.2) — traffic to a set of destinations is
  rerouted through a leaker AS (waypoint routing) while links inside the
  affected tier-1 carry heavy extra delay and packet loss, producing
  simultaneous delay *and* forwarding anomalies (Figures 9-12).
* :class:`IxpOutageScenario` (§7.3) — the IXP peering LAN blackholes all
  traffic: pure packet loss, **no** RTT samples, detectable only by the
  forwarding model (Figure 13).

Scenarios expose a small time-dependent interface consumed by the
traceroute engine; :class:`CompositeScenario` layers several events on one
campaign (used for the Figure 5 magnitude distributions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.simulation.topology import Topology

Edge = Tuple[str, str]
Window = Tuple[int, int]


def _in_any_window(t: int, windows: Sequence[Window]) -> bool:
    return any(start <= t < end for start, end in windows)


class Scenario:
    """Neutral scenario: nothing ever happens.

    Subclasses override the queries they affect.  All methods must be
    cheap; the traceroute engine calls them in its packet loop.
    """

    name = "neutral"

    def active(self, t: int) -> bool:
        """Fast gate: False lets the engine skip all other queries."""
        return False

    def extra_delay_ms(self, u: str, v: str, t: int) -> float:
        """Additional one-way delay on directed edge (u, v) at time t."""
        return 0.0

    def extra_loss(self, u: str, v: str, t: int) -> float:
        """Additional loss probability on directed edge (u, v) at time t."""
        return 0.0

    def waypoint(
        self, probe_id: int, target_name: str, t: int
    ) -> Optional[Tuple[str, ...]]:
        """Reroute: ordered router nodes traffic must transit, or None."""
        return None

    def windows(self) -> List[Window]:
        """Event windows, for benchmarks/reporting."""
        return []


@dataclass
class LinkPerturbation:
    """Delay/loss perturbation applied to a set of directed edges."""

    edges: Set[Edge]
    delay_shift_ms: Dict[Edge, float]
    loss: Dict[Edge, float]


class WindowedLinkScenario(Scenario):
    """Base for scenarios that perturb fixed link sets in fixed windows."""

    def __init__(
        self,
        name: str,
        perturbation: LinkPerturbation,
        windows: Sequence[Window],
    ) -> None:
        self.name = name
        self._perturbation = perturbation
        self._windows = list(windows)

    def active(self, t: int) -> bool:
        return _in_any_window(t, self._windows)

    def extra_delay_ms(self, u: str, v: str, t: int) -> float:
        if not self.active(t):
            return 0.0
        return self._perturbation.delay_shift_ms.get((u, v), 0.0)

    def extra_loss(self, u: str, v: str, t: int) -> float:
        if not self.active(t):
            return 0.0
        return self._perturbation.loss.get((u, v), 0.0)

    def windows(self) -> List[Window]:
        return list(self._windows)

    @property
    def perturbed_edges(self) -> Set[Edge]:
        return set(self._perturbation.edges)


def _both_directions(edges: Iterable[Edge]) -> Set[Edge]:
    result: Set[Edge] = set()
    for u, v in edges:
        result.add((u, v))
        result.add((v, u))
    return result


class DdosScenario(WindowedLinkScenario):
    """DDoS against an anycast service (§7.1, K-root case study).

    Congests the last-hop edges of the *attacked* instances plus one ring
    of upstream edges.  Delay shifts are drawn per link from
    ``[min_shift, max_shift]``; a mild loss rate models saturated queues
    (root operators reported negligible loss at the servers themselves,
    but their upstreams dropped some packets).
    """

    def __init__(
        self,
        topology: Topology,
        service_name: str,
        attacked_instances: Sequence[str],
        windows: Sequence[Window],
        min_shift_ms: float = 8.0,
        max_shift_ms: float = 30.0,
        loss: float = 0.05,
        seed: int = 0,
    ) -> None:
        service = topology.services[service_name]
        known = {instance.node for instance in service.instances}
        unknown = set(attacked_instances) - known
        if unknown:
            raise ValueError(f"unknown instances: {sorted(unknown)}")
        rng = np.random.default_rng(seed)
        graph = topology.graph
        # Instance routers of *any* service must not enter the upstream
        # ring: at an IXP, instances of several roots share the peering
        # LAN and we would otherwise congest a spared instance's last hop.
        all_instances = {
            instance.node
            for svc in topology.services.values()
            for instance in svc.instances
        }
        edges: Set[Edge] = set()
        for instance_node in attacked_instances:
            # Last-hop edges into the attacked instance...
            for upstream in graph.predecessors(instance_node):
                if graph.nodes[upstream].get("virtual"):
                    continue
                edges |= _both_directions([(upstream, instance_node)])
                # ...and one ring of upstream edges feeding that router.
                for far in graph.predecessors(upstream):
                    if graph.nodes[far].get("virtual"):
                        continue
                    if far in all_instances:
                        continue
                    edges |= _both_directions([(far, upstream)])
        delay_shift = {}
        loss_map = {}
        # Sorted iteration: the per-edge uniform draws pair with edges
        # in a stable order, so campaigns are reproducible across
        # processes (set order follows the per-process string-hash seed).
        for u, v in sorted(edges):
            delay_shift[(u, v)] = float(rng.uniform(min_shift_ms, max_shift_ms))
            loss_map[(u, v)] = loss
        super().__init__(
            name=f"ddos:{service_name}",
            perturbation=LinkPerturbation(edges, delay_shift, loss_map),
            windows=windows,
        )
        self.service_name = service_name
        self.attacked_instances = list(attacked_instances)


class RouteLeakScenario(Scenario):
    """BGP route leak pulling traffic through a leaker AS (§7.2).

    During the leak window, traceroutes towards the *leaked targets* are
    attracted into the victim tier-1 at ``leak_entry`` (the border that
    accepted the leaked announcements — Level(3) Global Crossing in the
    2015 event) and forwarded on to ``leak_waypoint`` (a router of the
    leaker AS) before resuming towards the destination.  Simultaneously
    the ``congested_edges`` — by default the links around the entry
    router plus the entry→leaker corridor — suffer a large delay shift
    and packet loss, reproducing the Level(3) congestion of Figs. 9-12.

    The default loss (0.2 per edge) compounds along multi-edge paths
    through the victim: hops a few congested edges deep lose the
    majority of their packets — enough for the forwarding model to
    devalue the victim's next hops (Fig. 10) — while links near the
    edge of the congested region keep enough diverse RTT samples for
    the delay method to fire too (Fig. 11a).
    """

    def __init__(
        self,
        topology: Topology,
        leak_waypoint: str,
        leaked_targets: Sequence[str],
        window: Window,
        leak_entry: Optional[str] = None,
        congested_edges: Optional[Iterable[Edge]] = None,
        delay_shift_range_ms: Tuple[float, float] = (80.0, 250.0),
        loss: float = 0.2,
        seed: int = 0,
    ) -> None:
        if leak_waypoint not in topology.graph:
            raise ValueError(f"unknown waypoint node: {leak_waypoint}")
        if leak_entry is not None and leak_entry not in topology.graph:
            raise ValueError(f"unknown entry node: {leak_entry}")
        self.name = "route-leak"
        self.leak_waypoint = leak_waypoint
        self.leak_entry = leak_entry
        self.leaked_targets = set(leaked_targets)
        self._window = window
        if congested_edges is None:
            congested_edges = self._default_congested_edges(topology)
        rng = np.random.default_rng(seed)
        edges = _both_directions(congested_edges)
        # Sorted for cross-process reproducibility (see DdosScenario).
        self._delay_shift = {
            edge: float(rng.uniform(*delay_shift_range_ms))
            for edge in sorted(edges)
        }
        self._loss = {edge: loss for edge in edges}
        self._edges = edges

    def _default_congested_edges(self, topology: Topology) -> List[Edge]:
        """Victim-AS links plus the corridor into the leaker.

        The 2015 event congested links *inside* both Level(3) ASes — even
        traffic not rerouted through Malaysia suffered (paper §7.2) — so
        the default congests every link whose reported interface belongs
        to the entry router's AS (and its sibling tier-1, Level(3)
        Communications, when the entry is Level(3) Global Crossing),
        plus the links feeding the leaker.
        """
        graph = topology.graph
        edges: List[Edge] = []
        victim_asns = set()
        if self.leak_entry is not None:
            entry_asn = graph.nodes[self.leak_entry].get("asn")
            if entry_asn is not None:
                victim_asns.add(entry_asn)
            if entry_asn == 3549:  # the 2015 pair of Level(3) ASes
                victim_asns.add(3356)
        for asn in victim_asns:
            edges.extend(topology.edges_of_as(asn))
        for neighbour in graph.predecessors(self.leak_waypoint):
            if not graph.nodes[neighbour].get("virtual"):
                edges.append((neighbour, self.leak_waypoint))
        if not edges:
            raise ValueError("no congested edges could be derived")
        return edges

    def active(self, t: int) -> bool:
        start, end = self._window
        return start <= t < end

    def extra_delay_ms(self, u: str, v: str, t: int) -> float:
        if not self.active(t):
            return 0.0
        return self._delay_shift.get((u, v), 0.0)

    def extra_loss(self, u: str, v: str, t: int) -> float:
        if not self.active(t):
            return 0.0
        return self._loss.get((u, v), 0.0)

    def waypoint(
        self, probe_id: int, target_name: str, t: int
    ) -> Optional[Tuple[str, ...]]:
        if self.active(t) and target_name in self.leaked_targets:
            if self.leak_entry is not None:
                return (self.leak_entry, self.leak_waypoint)
            return (self.leak_waypoint,)
        return None

    def windows(self) -> List[Window]:
        return [self._window]

    @property
    def perturbed_edges(self) -> Set[Edge]:
        return set(self._edges)


class IxpOutageScenario(WindowedLinkScenario):
    """IXP peering-LAN blackhole (§7.3, AMS-IX case study).

    Every directed edge whose ingress interface sits in the IXP prefix
    drops all packets during the outage window: hops behind the LAN stop
    responding entirely, so the delay method starves while the forwarding
    model sees the LAN next hops vanish (negative responsibility).
    """

    def __init__(
        self, topology: Topology, ixp_asn: int, window: Window
    ) -> None:
        lan_edges = set(topology.ixp_lan_edges(ixp_asn))
        if not lan_edges:
            raise ValueError(f"AS{ixp_asn} has no peering-LAN edges")
        super().__init__(
            name=f"ixp-outage:AS{ixp_asn}",
            perturbation=LinkPerturbation(
                edges=lan_edges,
                delay_shift_ms={},
                loss={edge: 1.0 for edge in lan_edges},
            ),
            windows=[window],
        )
        self.ixp_asn = ixp_asn


class CompositeScenario(Scenario):
    """Several scenarios layered on one campaign.

    Delay shifts add; losses combine as independent drop processes; the
    first member claiming a waypoint wins (route leaks rarely overlap).
    """

    def __init__(self, scenarios: Sequence[Scenario]) -> None:
        self.name = "+".join(s.name for s in scenarios) or "neutral"
        self._scenarios = list(scenarios)

    def active(self, t: int) -> bool:
        return any(s.active(t) for s in self._scenarios)

    def extra_delay_ms(self, u: str, v: str, t: int) -> float:
        return sum(s.extra_delay_ms(u, v, t) for s in self._scenarios)

    def extra_loss(self, u: str, v: str, t: int) -> float:
        survival = 1.0
        for scenario in self._scenarios:
            survival *= 1.0 - min(1.0, scenario.extra_loss(u, v, t))
        return 1.0 - survival

    def waypoint(self, probe_id: int, target_name: str, t: int) -> Optional[str]:
        for scenario in self._scenarios:
            via = scenario.waypoint(probe_id, target_name, t)
            if via is not None:
                return via
        return None

    def windows(self) -> List[Window]:
        merged: List[Window] = []
        for scenario in self._scenarios:
            merged.extend(scenario.windows())
        return sorted(merged)
