"""Routing engine over the synthetic topology.

Forward and return paths are shortest paths over the **directed** routing
graph; because each direction of every physical link has its own weight
(jittered at build time), forward and return routes frequently differ —
recreating the route asymmetry the paper's differential-RTT method is
designed to survive (§3, Challenge 1; §4.1).

The engine also supports *waypoint* routing ("reach the destination via
this AS") which is how the route-leak scenario (§7.2) redirects traffic
through Telekom Malaysia.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.simulation.topology import AnycastService, Topology


class NoRouteError(RuntimeError):
    """Raised when the routing graph offers no path for a request."""


def _strip_loops(path: List[str]) -> List[str]:
    """Remove revisits: keep the segment between first and last visit.

    Forwarding loops do not persist in converged routing; collapsing them
    keeps concatenated waypoint legs realistic.
    """
    result: List[str] = []
    positions: Dict[str, int] = {}
    for node in path:
        if node in positions:
            del result[positions[node] + 1 :]
            # Rebuild the position index after truncation.
            positions = {n: i for i, n in enumerate(result)}
        else:
            result.append(node)
            positions[node] = len(result) - 1
    return result


class RoutingEngine:
    """Shortest-path routing with per-pair caching.

    All path queries return lists of router **nodes**; the traceroute
    engine maps node sequences to reported interface IPs using edge
    attributes.
    """

    def __init__(self, topology: Topology, weight: str = "weight") -> None:
        self.topology = topology
        self.graph = topology.graph
        self.weight = weight
        self._forward_cache: Dict[Tuple[str, str], List[str]] = {}
        self._return_cache: Dict[Tuple[str, str], List[str]] = {}

    def clear_cache(self) -> None:
        self._forward_cache.clear()
        self._return_cache.clear()

    # -- raw shortest paths --------------------------------------------------

    def _shortest(self, src: str, dst: str) -> List[str]:
        try:
            return nx.shortest_path(self.graph, src, dst, weight=self.weight)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NoRouteError(f"no route {src} -> {dst}") from exc

    def forward_path(self, src: str, dst: str) -> List[str]:
        """Forward route between two router nodes (cached)."""
        key = (src, dst)
        if key not in self._forward_cache:
            self._forward_cache[key] = self._shortest(src, dst)
        return self._forward_cache[key]

    def forward_path_to_service(
        self, src: str, service: AnycastService
    ) -> List[str]:
        """Anycast route: shortest path to the nearest instance.

        Routing to the virtual sink node selects the catchment instance;
        the sink itself is stripped from the returned path.
        """
        path = self.forward_path(src, service.virtual_node)
        return path[:-1]

    def return_path(self, src: str, probe_router: str) -> List[str]:
        """Return route from a responding router back to the probe.

        Cached separately from forward paths because the hot loop asks
        for the same (hop, probe) pairs for every traceroute.
        """
        key = (src, probe_router)
        if key not in self._return_cache:
            self._return_cache[key] = self._shortest(src, probe_router)
        return self._return_cache[key]

    def forward_path_via(
        self, src: str, waypoints: Sequence[str], dst: str
    ) -> List[str]:
        """Forward route constrained through *waypoints*, in order.

        Models traffic attraction: the route-leak scenario sends packets
        through the leak acceptor (a Level(3) border) and then the leaker
        before resuming towards the destination.  Legs are concatenated;
        a waypoint already on the natural path degenerates gracefully.
        Revisited nodes are collapsed so the path stays loop-free at the
        reporting level.
        """
        if isinstance(waypoints, str):
            waypoints = [waypoints]
        legs = [src, *waypoints, dst]
        path: List[str] = [src]
        for leg_src, leg_dst in zip(legs, legs[1:]):
            path += self.forward_path(leg_src, leg_dst)[1:]
        return _strip_loops(path)

    def forward_path_via_to_service(
        self, src: str, waypoints: Sequence[str], service: AnycastService
    ) -> List[str]:
        """Waypoint-constrained anycast route."""
        if isinstance(waypoints, str):
            waypoints = [waypoints]
        last = waypoints[-1]
        first_legs = self.forward_path_via(src, waypoints[:-1], last)
        second = self.forward_path_to_service(last, service)
        return _strip_loops(first_legs + second[1:])

    # -- path metrics ---------------------------------------------------------

    def path_edges(self, path: List[str]) -> List[Tuple[str, str]]:
        """Directed edges traversed by a node path."""
        return list(zip(path, path[1:]))

    def path_base_delay_ms(self, path: List[str]) -> float:
        """Sum of one-way base delays along a node path."""
        graph = self.graph
        return sum(
            graph[u][v]["base_delay_ms"] for u, v in zip(path, path[1:])
        )

    def instance_for(self, src: str, service: AnycastService) -> str:
        """Which instance node the probe's catchment selects."""
        path = self.forward_path_to_service(src, service)
        return path[-1]
