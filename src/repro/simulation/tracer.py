"""Paris-traceroute engine producing Atlas-schema results.

Given a probe, a target and a launch time, :class:`TracerouteEngine`
emits a :class:`~repro.atlas.model.Traceroute` identical in structure to
a RIPE Atlas result: one hop per TTL, three replies per hop, ``*``
timeouts for lost packets or unresponsive routers.

Round-trip times follow the paper's Figure 1 decomposition: the RTT to
hop *k* is the forward delay over edges 1..k **plus the delay of the
return path from hop k back to the probe**, which the routing engine
resolves independently per hop — so adjacent-hop differential RTTs
contain exactly the ε error terms of Equation 3.

Paris traceroute keeps flow identifiers stable, so within one
(probe, target) pair the forward path is deterministic; path changes come
only from scenario reroutes, as with real measurements under stable
routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.atlas.model import Hop, Reply, Traceroute
from repro.simulation.delays import DelaySampler, NoiseParams, combined_loss
from repro.simulation.routing import RoutingEngine
from repro.simulation.scenarios import Scenario
from repro.simulation.topology import AnycastService, Anchor, Probe, Topology


@dataclass(frozen=True)
class TargetSpec:
    """One traceroute target: an anycast service or a unicast anchor.

    ``af`` selects the address family of the measurement (4 or 6); the
    same physical target is reached over either plane, like dual-stack
    root servers and anchors on the real platform.
    """

    name: str
    dst_ip: str
    kind: str  # "anycast" | "anchor"
    node: Optional[str] = None  # anchor router node
    service: Optional[AnycastService] = None
    msm_id: int = 0
    af: int = 4

    @classmethod
    def for_service(
        cls, service: AnycastService, msm_id: int = 0, af: int = 4
    ) -> "TargetSpec":
        if af not in (4, 6):
            raise ValueError(f"af must be 4 or 6: {af}")
        dst_ip = service.service_ip if af == 4 else service.service_ip6
        return cls(
            name=service.name,
            dst_ip=dst_ip,
            kind="anycast",
            service=service,
            msm_id=msm_id,
            af=af,
        )

    @classmethod
    def for_anchor(
        cls, anchor: Anchor, msm_id: int = 0, af: int = 4
    ) -> "TargetSpec":
        if af not in (4, 6):
            raise ValueError(f"af must be 4 or 6: {af}")
        dst_ip = anchor.ip if af == 4 else anchor.ip6
        return cls(
            name=anchor.name,
            dst_ip=dst_ip,
            kind="anchor",
            node=anchor.node,
            msm_id=msm_id,
            af=af,
        )


@dataclass
class _HopPlan:
    """Static per-hop data of one forward path (cached)."""

    node: str
    reported_ip: Optional[str]  # None -> router never responds
    forward_edges: List[Tuple[str, str]]
    return_edges: List[Tuple[str, str]]
    base_rtt_ms: float  # forward + return base delay
    base_loss: float  # forward + return combined base loss


@dataclass
class _PathPlan:
    """Cached plan for one (probe, target, waypoint) route."""

    hops: List[_HopPlan]


class TracerouteEngine:
    """Simulate Paris traceroutes over the synthetic topology."""

    def __init__(
        self,
        topology: Topology,
        scenario: Optional[Scenario] = None,
        noise: Optional[NoiseParams] = None,
        seed: int = 0,
        packets_per_hop: int = 3,
    ) -> None:
        if packets_per_hop < 1:
            raise ValueError(f"packets_per_hop must be >= 1: {packets_per_hop}")
        self.topology = topology
        self.scenario = scenario or Scenario()
        self.routing = RoutingEngine(topology)
        self.sampler = DelaySampler(noise, seed=seed)
        self.packets_per_hop = packets_per_hop
        self._plans: Dict[Tuple[int, str, Optional[str]], _PathPlan] = {}

    # -- plan construction ---------------------------------------------------

    def _node_path(
        self, probe: Probe, target: TargetSpec, waypoint: Optional[str]
    ) -> List[str]:
        if target.kind == "anycast":
            if waypoint is None:
                return self.routing.forward_path_to_service(
                    probe.router, target.service
                )
            return self.routing.forward_path_via_to_service(
                probe.router, waypoint, target.service
            )
        if waypoint is None:
            return self.routing.forward_path(probe.router, target.node)
        return self.routing.forward_path_via(probe.router, waypoint, target.node)

    def _build_plan(
        self, probe: Probe, target: TargetSpec, waypoint
    ) -> _PathPlan:
        graph = self.topology.graph
        routers = self.topology.routers
        ingress_attr = "ingress_ip" if target.af == 4 else "ingress_ip6"
        path = self._node_path(probe, target, waypoint)
        hops: List[_HopPlan] = []
        forward_edges: List[Tuple[str, str]] = []
        forward_delay = 0.0
        forward_losses: List[float] = []
        for index, node in enumerate(path):
            if index > 0:
                edge = (path[index - 1], node)
                data = graph[edge[0]][edge[1]]
                forward_edges = forward_edges + [edge]
                forward_delay += data["base_delay_ms"]
                forward_losses = forward_losses + [data["loss"]]
                reported = data[ingress_attr]
            else:
                info = routers[node]
                reported = (
                    info.loopback_ip if target.af == 4 else info.loopback_ip6
                )
            is_last = index == len(path) - 1
            if is_last:
                # The destination answers from the target address itself.
                reported = target.dst_ip
            if not routers[node].responsive and not is_last:
                reported = None
            return_path = self.routing.return_path(node, probe.router)
            return_edges = self.routing.path_edges(return_path)
            return_delay = self.routing.path_base_delay_ms(return_path)
            return_losses = [graph[u][v]["loss"] for u, v in return_edges]
            hops.append(
                _HopPlan(
                    node=node,
                    reported_ip=reported,
                    forward_edges=list(forward_edges),
                    return_edges=return_edges,
                    base_rtt_ms=forward_delay + return_delay,
                    base_loss=combined_loss(forward_losses + return_losses),
                )
            )
        return _PathPlan(hops=hops)

    def _plan_for(
        self, probe: Probe, target: TargetSpec, waypoint
    ) -> _PathPlan:
        key = (probe.probe_id, target.name, target.af, waypoint)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._build_plan(probe, target, waypoint)
            self._plans[key] = plan
        return plan

    # -- execution -------------------------------------------------------------

    def run(self, probe: Probe, target: TargetSpec, t: int) -> Traceroute:
        """Run one traceroute from *probe* to *target* at time *t*."""
        scenario = self.scenario
        scenario_active = scenario.active(t)
        waypoint = (
            scenario.waypoint(probe.probe_id, target.name, t)
            if scenario_active
            else None
        )
        plan = self._plan_for(probe, target, waypoint)
        packets = self.packets_per_hop
        hops: List[Hop] = []
        for ttl, hop_plan in enumerate(plan.hops, start=1):
            rtt_base = hop_plan.base_rtt_ms
            loss = hop_plan.base_loss
            if scenario_active:
                extra_delay = 0.0
                extra_losses: List[float] = []
                for u, v in hop_plan.forward_edges:
                    extra_delay += scenario.extra_delay_ms(u, v, t)
                    edge_loss = scenario.extra_loss(u, v, t)
                    if edge_loss > 0.0:
                        extra_losses.append(edge_loss)
                for u, v in hop_plan.return_edges:
                    extra_delay += scenario.extra_delay_ms(u, v, t)
                    edge_loss = scenario.extra_loss(u, v, t)
                    if edge_loss > 0.0:
                        extra_losses.append(edge_loss)
                rtt_base += extra_delay
                if extra_losses:
                    loss = combined_loss([loss] + extra_losses)
            if hop_plan.reported_ip is None:
                replies = tuple(
                    Reply(ip=None, rtt_ms=None) for _ in range(packets)
                )
            else:
                survive = self.sampler.survives(packets, loss)
                noise = self.sampler.rtt_noise(packets)
                replies = tuple(
                    Reply(
                        ip=hop_plan.reported_ip,
                        rtt_ms=float(round(rtt_base + noise[i], 3)),
                    )
                    if survive[i]
                    else Reply(ip=None, rtt_ms=None)
                    for i in range(packets)
                )
            hops.append(Hop(ttl=ttl, replies=replies))
        return Traceroute(
            prb_id=probe.probe_id,
            src_addr=probe.ip if target.af == 4 else probe.ip6,
            dst_addr=target.dst_ip,
            timestamp=t,
            hops=tuple(hops),
            from_asn=probe.asn,
            msm_id=target.msm_id,
            af=target.af,
        )
