"""Per-packet delay and loss sampling.

RTT samples in real traceroute data are "contaminated by various noise
sources" (§3, Challenge 2): queueing, slow-path ICMP generation in
routers, middleboxes.  The model here produces the same statistical
texture the paper reports for the Cogent link of Figure 2 — raw
differential RTTs whose standard deviation is a multiple of their mean,
caused by a small fraction of large outliers — while the hourly medians
stay stable to within a fraction of a millisecond.

Each packet's RTT is::

    base_forward + base_return + last_mile + queueing_noise [+ outlier]

with queueing noise Gamma-distributed (small mean) and outliers drawn
from an exponential tail with a small probability per packet (router
slow-path and measurement artefacts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class NoiseParams:
    """Parameters of the per-packet noise model."""

    queue_shape: float = 2.0  # Gamma shape of queueing noise
    queue_scale_ms: float = 0.12  # Gamma scale -> mean 0.24 ms
    outlier_probability: float = 0.015
    outlier_mean_ms: float = 25.0
    last_mile_ms: float = 1.0
    last_mile_jitter_ms: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 <= self.outlier_probability <= 1.0:
            raise ValueError(
                f"outlier probability must be in [0,1]: {self.outlier_probability}"
            )
        if self.queue_shape <= 0 or self.queue_scale_ms < 0:
            raise ValueError("queueing noise parameters must be positive")


class DelaySampler:
    """Vectorised sampler of per-packet RTT noise and loss draws."""

    def __init__(self, params: NoiseParams = None, seed: int = 0) -> None:
        self.params = params or NoiseParams()
        self._rng = np.random.default_rng(seed)

    def rtt_noise(self, count: int) -> np.ndarray:
        """Noise (ms) for *count* packets: queueing + rare heavy outliers."""
        params = self.params
        noise = self._rng.gamma(
            params.queue_shape, params.queue_scale_ms, size=count
        )
        noise += self._rng.normal(
            params.last_mile_ms, params.last_mile_jitter_ms, size=count
        ).clip(min=0.0)
        outliers = self._rng.random(count) < params.outlier_probability
        if outliers.any():
            noise[outliers] += self._rng.exponential(
                params.outlier_mean_ms, size=int(outliers.sum())
            )
        return noise

    def survives(self, count: int, loss_probability: float) -> np.ndarray:
        """Boolean array: which of *count* packets survive the given loss."""
        if loss_probability <= 0.0:
            return np.ones(count, dtype=bool)
        if loss_probability >= 1.0:
            return np.zeros(count, dtype=bool)
        return self._rng.random(count) >= loss_probability


def combined_loss(per_edge_losses) -> float:
    """Loss probability of a path given independent per-edge losses.

    >>> round(combined_loss([0.5, 0.5]), 3)
    0.75
    """
    survival = 1.0
    for loss in per_edge_losses:
        clipped = min(1.0, max(0.0, loss))
        survival *= 1.0 - clipped
    return 1.0 - survival
