"""Reporting layer: IHR-style summaries and text figure rendering."""

from repro.reporting.export import (
    bin_event_record,
    delay_alarm_record,
    forwarding_alarm_record,
    write_alarm_graph,
    write_distribution,
    write_magnitude_series,
    write_tracked_link,
)
from repro.reporting.ihr import AsCondition, InternetHealthReport
from repro.reporting.render import (
    format_table,
    hours_axis,
    render_cdf,
    render_qq,
    render_series,
    sparkline,
)

__all__ = [
    "AsCondition",
    "InternetHealthReport",
    "bin_event_record",
    "delay_alarm_record",
    "format_table",
    "forwarding_alarm_record",
    "hours_axis",
    "render_cdf",
    "render_qq",
    "render_series",
    "sparkline",
    "write_alarm_graph",
    "write_distribution",
    "write_magnitude_series",
    "write_tracked_link",
]
