"""Reporting layer: IHR-style summaries and text figure rendering."""

from repro.reporting.export import (
    BIN_EVENT_FIELDS,
    DELAY_ALARM_FIELDS,
    FORWARDING_ALARM_FIELDS,
    SCHEMA_VERSION,
    bin_event_record,
    bin_result_from_record,
    delay_alarm_from_record,
    delay_alarm_record,
    forwarding_alarm_from_record,
    forwarding_alarm_record,
    record_json,
    write_alarm_graph,
    write_distribution,
    write_magnitude_series,
    write_tracked_link,
)
from repro.reporting.ihr import AsCondition, InternetHealthReport, LinkHealth
from repro.reporting.jsonio import dumps_canonical, dumps_canonical_stdlib
from repro.reporting.render import (
    format_table,
    hours_axis,
    render_cdf,
    render_qq,
    render_series,
    sparkline,
)

__all__ = [
    "AsCondition",
    "BIN_EVENT_FIELDS",
    "DELAY_ALARM_FIELDS",
    "FORWARDING_ALARM_FIELDS",
    "InternetHealthReport",
    "LinkHealth",
    "SCHEMA_VERSION",
    "bin_event_record",
    "bin_result_from_record",
    "delay_alarm_from_record",
    "delay_alarm_record",
    "dumps_canonical",
    "dumps_canonical_stdlib",
    "format_table",
    "forwarding_alarm_from_record",
    "forwarding_alarm_record",
    "hours_axis",
    "record_json",
    "render_cdf",
    "render_qq",
    "render_series",
    "sparkline",
    "write_alarm_graph",
    "write_distribution",
    "write_magnitude_series",
    "write_tracked_link",
]
