"""Reporting layer: IHR-style summaries and text figure rendering."""

from repro.reporting.export import (
    write_alarm_graph,
    write_distribution,
    write_magnitude_series,
    write_tracked_link,
)
from repro.reporting.ihr import AsCondition, InternetHealthReport
from repro.reporting.render import (
    format_table,
    hours_axis,
    render_cdf,
    render_qq,
    render_series,
    sparkline,
)

__all__ = [
    "AsCondition",
    "InternetHealthReport",
    "format_table",
    "hours_axis",
    "render_cdf",
    "render_qq",
    "render_series",
    "sparkline",
    "write_alarm_graph",
    "write_distribution",
    "write_magnitude_series",
    "write_tracked_link",
]
