"""Plain-text rendering of time series, tables and distributions.

The paper's figures are line plots and CDFs; offline and dependency-free
we render them as aligned text: sparklines for magnitude series, column
tables for experiment output, and binned CDF/CCDF listings.  Benchmarks
use these to print the "same rows/series the paper reports".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: Eight-level block characters for sparklines.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a numeric series as a unicode sparkline.

    Values are min-max scaled; a constant series renders as a flat line.
    If *width* is given the series is block-averaged down to it.

    >>> sparkline([0, 1, 2, 3])
    ' ▃▅█'
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return ""
    if width is not None and width > 0 and array.size > width:
        # Block-average down to the requested width.
        edges = np.linspace(0, array.size, width + 1).astype(int)
        array = np.array(
            [array[a:b].mean() if b > a else array[min(a, array.size - 1)]
             for a, b in zip(edges, edges[1:])]
        )
    low, high = float(array.min()), float(array.max())
    if high == low:
        return _SPARK_LEVELS[1] * array.size
    scaled = (array - low) / (high - low)
    indexes = np.minimum(
        (scaled * (len(_SPARK_LEVELS) - 1)).astype(int),
        len(_SPARK_LEVELS) - 1,
    )
    return "".join(_SPARK_LEVELS[i] for i in indexes)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned text table with a header separator.

    >>> print(format_table(["a", "b"], [[1, "x"]]))
    a  b
    -  -
    1  x
    """
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))).rstrip(),
    ]
    for row in materialized:
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)
            ).rstrip()
        )
    return "\n".join(lines)


def render_series(
    timestamps: Sequence[int],
    values: Sequence[float],
    title: str = "",
    width: int = 72,
    t0: Optional[int] = None,
) -> str:
    """Sparkline plus min/max/last annotations for one time series."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return f"{title}: (empty)"
    spark = sparkline(array, width=width)
    start = timestamps[0] if timestamps else 0
    reference = t0 if t0 is not None else start
    start_h = (start - reference) // 3600
    end_h = (timestamps[-1] - reference) // 3600 if timestamps else 0
    return (
        f"{title}\n"
        f"  [{spark}]\n"
        f"  hours {start_h}..{end_h}  min={array.min():.2f} "
        f"max={array.max():.2f} last={array[-1]:.2f}"
    )


def render_cdf(
    values: Sequence[float],
    quantiles: Sequence[float] = (0.001, 0.01, 0.1, 0.5, 0.9, 0.97, 0.99, 0.999),
    title: str = "CDF",
) -> str:
    """Tabulate chosen quantiles of an empirical distribution."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return f"{title}: (empty)"
    rows = [
        [f"{q:.3f}", f"{float(np.quantile(array, q)):.3f}"]
        for q in quantiles
    ]
    return f"{title} (n={array.size})\n" + format_table(
        ["quantile", "value"], rows
    )


def render_qq(
    theoretical: Sequence[float],
    observed: Sequence[float],
    n_points: int = 9,
    title: str = "Q-Q",
) -> str:
    """Tabulate a Q-Q comparison at evenly spaced ranks."""
    theo = np.asarray(theoretical, dtype=float)
    obs = np.asarray(observed, dtype=float)
    if theo.size != obs.size or theo.size == 0:
        raise ValueError("Q-Q series must be equal-length and non-empty")
    indexes = np.linspace(0, theo.size - 1, min(n_points, theo.size)).astype(int)
    rows = [
        [f"{theo[i]:+.2f}", f"{obs[i]:+.2f}", f"{obs[i] - theo[i]:+.2f}"]
        for i in indexes
    ]
    return f"{title}\n" + format_table(
        ["theoretical", "observed", "residual"], rows
    )


def hours_axis(timestamps: Sequence[int], t0: int) -> List[int]:
    """Convert absolute timestamps to campaign-relative hours."""
    return [(ts - t0) // 3600 for ts in timestamps]
