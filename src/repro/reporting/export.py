"""CSV export of figure data series and canonical alarm/event records.

The benchmarks print text renderings; for external plotting (matplotlib,
gnuplot, spreadsheets) these helpers write the underlying series as
plain CSV files: magnitude time series (Figures 6/9/10/13), tracked-link
differential RTT series (Figures 2/7/11), distribution samples
(Figure 5) and alarm graph edge lists (Figures 8/12).

The module also owns the **canonical record shape** of the system's
alarms and per-bin events: :func:`delay_alarm_record`,
:func:`forwarding_alarm_record` and :func:`bin_event_record` emit
JSON-serialisable dicts with a documented, stable field order (the
``*_FIELDS`` tuples) and a versioned ``schema`` tag
(:data:`SCHEMA_VERSION`).  The ``monitor`` CLI's JSONL feed and the
on-disk alarm store (:mod:`repro.service.store`) both speak exactly this
shape, and the matching ``*_from_record`` constructors round-trip a
record back into its alarm object bit-identically — a new field must be
appended (never inserted) and bumps :data:`SCHEMA_VERSION`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Union

import networkx as nx
import numpy as np

from repro.core.alarms import DelayAlarm, ForwardingAlarm
from repro.core.pipeline import BinResult, TrackedLinkPoint
from repro.reporting.jsonio import dumps_canonical
from repro.stats.wilson import WilsonInterval

PathLike = Union[str, Path]

#: Version tag carried by every record's ``schema`` key.  Bumped when a
#: record's field set or field order changes incompatibly.
SCHEMA_VERSION = 1

#: Stable field order of :func:`delay_alarm_record` (JSON dicts preserve
#: insertion order, so consumers may rely on it).
DELAY_ALARM_FIELDS = (
    "schema", "kind", "timestamp", "link", "observed", "reference",
    "deviation", "direction", "median_shift_ms", "n_probes", "n_asns",
)

#: Stable field order of :func:`forwarding_alarm_record`.
FORWARDING_ALARM_FIELDS = (
    "schema", "kind", "timestamp", "router_ip", "destination",
    "correlation", "responsibilities", "pattern", "reference",
)

#: Stable field order of :func:`bin_event_record`.
BIN_EVENT_FIELDS = (
    "schema", "bin", "n_traceroutes", "n_links_observed",
    "n_links_analyzed", "delay_alarms", "forwarding_alarms",
)


def _schema_tag(name: str) -> str:
    """The versioned ``schema`` value for record kind *name*."""
    return f"{name}/v{SCHEMA_VERSION}"


def write_magnitude_series(
    path: PathLike,
    timestamps: Sequence[int],
    magnitudes: Sequence[float],
    values: Optional[Sequence[float]] = None,
) -> int:
    """Write one AS's severity/magnitude series; returns rows written."""
    timestamps = list(timestamps)
    magnitudes = list(magnitudes)
    if len(timestamps) != len(magnitudes):
        raise ValueError(
            f"length mismatch: {len(timestamps)} timestamps vs "
            f"{len(magnitudes)} magnitudes"
        )
    if values is not None and len(values) != len(timestamps):
        raise ValueError("values length mismatch")
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        header = ["timestamp", "magnitude"]
        if values is not None:
            header.append("severity")
        writer.writerow(header)
        for index, (ts, mag) in enumerate(zip(timestamps, magnitudes)):
            row = [ts, f"{float(mag):.6f}"]
            if values is not None:
                row.append(f"{float(values[index]):.6f}")
            writer.writerow(row)
    return len(timestamps)


def write_tracked_link(
    path: PathLike, points: Iterable[TrackedLinkPoint]
) -> int:
    """Write a tracked link's per-bin series (Figure 2/7/11 material)."""
    rows = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "timestamp", "median", "ci_lower", "ci_upper",
                "ref_median", "ref_lower", "ref_upper",
                "mean", "sample_std", "n_probes", "alarmed", "accepted",
            ]
        )
        for point in points:
            observed = point.observed
            reference = point.reference
            writer.writerow(
                [
                    point.timestamp,
                    f"{observed.median:.6f}" if observed else "",
                    f"{observed.lower:.6f}" if observed else "",
                    f"{observed.upper:.6f}" if observed else "",
                    f"{reference.median:.6f}" if reference else "",
                    f"{reference.lower:.6f}" if reference else "",
                    f"{reference.upper:.6f}" if reference else "",
                    f"{point.mean:.6f}" if point.mean is not None else "",
                    f"{point.sample_std:.6f}"
                    if point.sample_std is not None
                    else "",
                    point.n_probes,
                    int(point.alarmed),
                    int(point.accepted),
                ]
            )
            rows += 1
    return rows


def write_distribution(
    path: PathLike, values: Sequence[float], column: str = "value"
) -> int:
    """Write raw distribution samples (Figure 5 material)."""
    array = np.asarray(values, dtype=float)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([column])
        for value in array:
            writer.writerow([f"{value:.6f}"])
    return int(array.size)


def delay_alarm_record(alarm) -> dict:
    """One delay alarm as a JSON-serialisable dict (monitor feed line).

    The record carries everything an operator needs to triage without
    the binary state: the link, both intervals, Eq. 6 deviation,
    direction and the probe/AS support behind the observation.  Field
    order is :data:`DELAY_ALARM_FIELDS`;
    :func:`delay_alarm_from_record` round-trips it.
    """
    return {
        "schema": _schema_tag("delay_alarm"),
        "kind": "delay",
        "timestamp": alarm.timestamp,
        "link": list(alarm.link),
        "observed": {
            "median": alarm.observed.median,
            "lower": alarm.observed.lower,
            "upper": alarm.observed.upper,
            "n": alarm.observed.n,
        },
        "reference": {
            "median": alarm.reference.median,
            "lower": alarm.reference.lower,
            "upper": alarm.reference.upper,
            "n": alarm.reference.n,
        },
        "deviation": alarm.deviation,
        "direction": alarm.direction,
        "median_shift_ms": alarm.median_shift_ms,
        "n_probes": alarm.n_probes,
        "n_asns": alarm.n_asns,
    }


def forwarding_alarm_record(alarm) -> dict:
    """One forwarding alarm as a JSON-serialisable dict (monitor feed line).

    Field order is :data:`FORWARDING_ALARM_FIELDS`; the three hop→value
    maps keep their dicts' insertion order, and
    :func:`forwarding_alarm_from_record` round-trips the record.
    """
    return {
        "schema": _schema_tag("forwarding_alarm"),
        "kind": "forwarding",
        "timestamp": alarm.timestamp,
        "router_ip": alarm.router_ip,
        "destination": alarm.destination,
        "correlation": alarm.correlation,
        "responsibilities": dict(alarm.responsibilities),
        "pattern": dict(alarm.pattern),
        "reference": dict(alarm.reference),
    }


def bin_event_record(result) -> dict:
    """One closed bin's monitor output as a JSON-serialisable dict.

    The ``monitor`` CLI emits one of these per closed time bin (JSONL
    mode); alarms ride along as :func:`delay_alarm_record` /
    :func:`forwarding_alarm_record` entries.  Field order is
    :data:`BIN_EVENT_FIELDS`; :func:`bin_result_from_record` round-trips
    the record.
    """
    return {
        "schema": _schema_tag("bin_event"),
        "bin": result.timestamp,
        "n_traceroutes": result.n_traceroutes,
        "n_links_observed": result.n_links_observed,
        "n_links_analyzed": result.n_links_analyzed,
        "delay_alarms": [
            delay_alarm_record(alarm) for alarm in result.delay_alarms
        ],
        "forwarding_alarms": [
            forwarding_alarm_record(alarm)
            for alarm in result.forwarding_alarms
        ],
    }


def record_json(record: dict) -> str:
    """One record as a canonical JSON feed line (no trailing newline).

    The serialisation half of the record shapes above: keys sorted,
    compact separators, rendered through the accelerated writer
    (:func:`repro.reporting.jsonio.dumps_canonical`).  ``monitor
    --json`` emits exactly this per closed bin.
    """
    return dumps_canonical(record).decode("utf-8")


def _check_schema(record: dict, name: str) -> None:
    """Reject records of a foreign kind or an incompatible version."""
    tag = record.get("schema")
    if tag is not None and tag != _schema_tag(name):
        raise ValueError(
            f"record schema {tag!r} is not {_schema_tag(name)!r}"
        )


def _interval_from(payload: dict) -> WilsonInterval:
    """Rebuild a :class:`WilsonInterval` from its record sub-dict."""
    return WilsonInterval(
        median=float(payload["median"]),
        lower=float(payload["lower"]),
        upper=float(payload["upper"]),
        n=int(payload["n"]),
    )


def delay_alarm_from_record(record: dict) -> DelayAlarm:
    """Inverse of :func:`delay_alarm_record` (bit-identical round trip).

    Accepts schema-less records (old monitor feeds) but rejects records
    carrying a foreign ``schema`` tag.
    """
    _check_schema(record, "delay_alarm")
    return DelayAlarm(
        timestamp=int(record["timestamp"]),
        link=(str(record["link"][0]), str(record["link"][1])),
        observed=_interval_from(record["observed"]),
        reference=_interval_from(record["reference"]),
        deviation=float(record["deviation"]),
        direction=int(record["direction"]),
        n_probes=int(record["n_probes"]),
        n_asns=int(record["n_asns"]),
    )


def forwarding_alarm_from_record(record: dict) -> ForwardingAlarm:
    """Inverse of :func:`forwarding_alarm_record` (bit-identical round trip).

    The hop→value maps are rebuilt in the record's key order, so a
    round-tripped alarm compares equal *and* iterates identically.
    """
    _check_schema(record, "forwarding_alarm")
    return ForwardingAlarm(
        timestamp=int(record["timestamp"]),
        router_ip=str(record["router_ip"]),
        destination=str(record["destination"]),
        correlation=float(record["correlation"]),
        responsibilities={
            str(hop): float(value)
            for hop, value in record["responsibilities"].items()
        },
        pattern={
            str(hop): float(value)
            for hop, value in record["pattern"].items()
        },
        reference={
            str(hop): float(value)
            for hop, value in record["reference"].items()
        },
    )


def bin_result_from_record(record: dict) -> BinResult:
    """Inverse of :func:`bin_event_record` (bit-identical round trip)."""
    _check_schema(record, "bin_event")
    return BinResult(
        timestamp=int(record["bin"]),
        n_traceroutes=int(record["n_traceroutes"]),
        n_links_observed=int(record["n_links_observed"]),
        n_links_analyzed=int(record["n_links_analyzed"]),
        delay_alarms=[
            delay_alarm_from_record(entry)
            for entry in record["delay_alarms"]
        ],
        forwarding_alarms=[
            forwarding_alarm_from_record(entry)
            for entry in record["forwarding_alarms"]
        ],
    )


def write_alarm_graph(path: PathLike, graph: nx.Graph) -> int:
    """Write an alarm graph edge list (Figure 8/12 material)."""
    rows = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "near_ip", "far_ip", "deviation", "median_shift_ms",
                "direction", "near_in_forwarding", "far_in_forwarding",
            ]
        )
        for near, far, data in graph.edges(data=True):
            writer.writerow(
                [
                    near,
                    far,
                    f"{data.get('deviation', 0.0):.4f}",
                    f"{data.get('median_shift_ms', 0.0):.4f}",
                    data.get("direction", 0),
                    int(graph.nodes[near].get("in_forwarding_alarm", False)),
                    int(graph.nodes[far].get("in_forwarding_alarm", False)),
                ]
            )
            rows += 1
    return rows
