"""CSV export of figure data series.

The benchmarks print text renderings; for external plotting (matplotlib,
gnuplot, spreadsheets) these helpers write the underlying series as
plain CSV files: magnitude time series (Figures 6/9/10/13), tracked-link
differential RTT series (Figures 2/7/11), distribution samples
(Figure 5) and alarm graph edge lists (Figures 8/12).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Union

import networkx as nx
import numpy as np

from repro.core.pipeline import TrackedLinkPoint

PathLike = Union[str, Path]


def write_magnitude_series(
    path: PathLike,
    timestamps: Sequence[int],
    magnitudes: Sequence[float],
    values: Optional[Sequence[float]] = None,
) -> int:
    """Write one AS's severity/magnitude series; returns rows written."""
    timestamps = list(timestamps)
    magnitudes = list(magnitudes)
    if len(timestamps) != len(magnitudes):
        raise ValueError(
            f"length mismatch: {len(timestamps)} timestamps vs "
            f"{len(magnitudes)} magnitudes"
        )
    if values is not None and len(values) != len(timestamps):
        raise ValueError("values length mismatch")
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        header = ["timestamp", "magnitude"]
        if values is not None:
            header.append("severity")
        writer.writerow(header)
        for index, (ts, mag) in enumerate(zip(timestamps, magnitudes)):
            row = [ts, f"{float(mag):.6f}"]
            if values is not None:
                row.append(f"{float(values[index]):.6f}")
            writer.writerow(row)
    return len(timestamps)


def write_tracked_link(
    path: PathLike, points: Iterable[TrackedLinkPoint]
) -> int:
    """Write a tracked link's per-bin series (Figure 2/7/11 material)."""
    rows = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "timestamp", "median", "ci_lower", "ci_upper",
                "ref_median", "ref_lower", "ref_upper",
                "mean", "sample_std", "n_probes", "alarmed", "accepted",
            ]
        )
        for point in points:
            observed = point.observed
            reference = point.reference
            writer.writerow(
                [
                    point.timestamp,
                    f"{observed.median:.6f}" if observed else "",
                    f"{observed.lower:.6f}" if observed else "",
                    f"{observed.upper:.6f}" if observed else "",
                    f"{reference.median:.6f}" if reference else "",
                    f"{reference.lower:.6f}" if reference else "",
                    f"{reference.upper:.6f}" if reference else "",
                    f"{point.mean:.6f}" if point.mean is not None else "",
                    f"{point.sample_std:.6f}"
                    if point.sample_std is not None
                    else "",
                    point.n_probes,
                    int(point.alarmed),
                    int(point.accepted),
                ]
            )
            rows += 1
    return rows


def write_distribution(
    path: PathLike, values: Sequence[float], column: str = "value"
) -> int:
    """Write raw distribution samples (Figure 5 material)."""
    array = np.asarray(values, dtype=float)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([column])
        for value in array:
            writer.writerow([f"{value:.6f}"])
    return int(array.size)


def delay_alarm_record(alarm) -> dict:
    """One delay alarm as a JSON-serialisable dict (monitor feed line).

    The record carries everything an operator needs to triage without
    the binary state: the link, both intervals, Eq. 6 deviation,
    direction and the probe/AS support behind the observation.
    """
    return {
        "kind": "delay",
        "timestamp": alarm.timestamp,
        "link": list(alarm.link),
        "observed": {
            "median": alarm.observed.median,
            "lower": alarm.observed.lower,
            "upper": alarm.observed.upper,
            "n": alarm.observed.n,
        },
        "reference": {
            "median": alarm.reference.median,
            "lower": alarm.reference.lower,
            "upper": alarm.reference.upper,
            "n": alarm.reference.n,
        },
        "deviation": alarm.deviation,
        "direction": alarm.direction,
        "median_shift_ms": alarm.median_shift_ms,
        "n_probes": alarm.n_probes,
        "n_asns": alarm.n_asns,
    }


def forwarding_alarm_record(alarm) -> dict:
    """One forwarding alarm as a JSON-serialisable dict (monitor feed line)."""
    return {
        "kind": "forwarding",
        "timestamp": alarm.timestamp,
        "router_ip": alarm.router_ip,
        "destination": alarm.destination,
        "correlation": alarm.correlation,
        "responsibilities": dict(alarm.responsibilities),
        "pattern": dict(alarm.pattern),
        "reference": dict(alarm.reference),
    }


def bin_event_record(result) -> dict:
    """One closed bin's monitor output as a JSON-serialisable dict.

    The ``monitor`` CLI emits one of these per closed time bin (JSONL
    mode); alarms ride along as :func:`delay_alarm_record` /
    :func:`forwarding_alarm_record` entries.
    """
    return {
        "bin": result.timestamp,
        "n_traceroutes": result.n_traceroutes,
        "n_links_observed": result.n_links_observed,
        "n_links_analyzed": result.n_links_analyzed,
        "delay_alarms": [
            delay_alarm_record(alarm) for alarm in result.delay_alarms
        ],
        "forwarding_alarms": [
            forwarding_alarm_record(alarm)
            for alarm in result.forwarding_alarms
        ],
    }


def write_alarm_graph(path: PathLike, graph: nx.Graph) -> int:
    """Write an alarm graph edge list (Figure 8/12 material)."""
    rows = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "near_ip", "far_ip", "deviation", "median_shift_ms",
                "direction", "near_in_forwarding", "far_in_forwarding",
            ]
        )
        for near, far, data in graph.edges(data=True):
            writer.writerow(
                [
                    near,
                    far,
                    f"{data.get('deviation', 0.0):.4f}",
                    f"{data.get('median_shift_ms', 0.0):.4f}",
                    data.get("direction", 0),
                    int(graph.nodes[near].get("in_forwarding_alarm", False)),
                    int(graph.nodes[far].get("in_forwarding_alarm", False)),
                ]
            )
            rows += 1
    return rows
