"""Canonical JSON serialisation for the hot write paths.

The read side already has an accelerated twin — the columnar decoder in
:mod:`repro.atlas.columnar` parses with ``orjson`` when the environment
provides it and falls back to the stdlib otherwise.  This module is the
same idiom for the *write* side: :func:`dumps_canonical` renders a
payload to canonical JSON bytes — keys sorted, compact separators,
UTF-8 (no ``\\u`` escapes), no trailing newline — through ``orjson``
when available (~5-10x faster on record-shaped payloads) and through
``json.dumps`` otherwise.

Every serialised feed/API surface goes through here: ``monitor --json``
bin records, the HTTP service's response bodies, and the ``fetch``
probe-map export.  The byte-compatibility tests in
``tests/test_fused_spine.py`` hold the two backends identical over the
system's record payloads.

Known backend divergence, deliberately out of contract: floats whose
shortest repr needs an exponent (``abs(v) >= 1e16`` or ``< 1e-4``)
format the exponent differently (stdlib ``1e+16``/``1e-07``, orjson
``1e16``/``1e-7``).  Both are valid JSON and round-trip to the same
float; payload *values* therefore never drift, only their spelling for
out-of-domain magnitudes.  orjson also rejects the non-standard
NaN/Infinity literals the stdlib would emit — surfacing a NaN in a
record as a loud error instead of unparseable output.
"""

from __future__ import annotations

import json
from typing import Any

try:  # optional accelerator, mirroring repro.atlas.columnar's decode side
    import orjson as _orjson
except ImportError:  # pragma: no cover - depends on the environment
    _orjson = None


def _convert(obj: Any):
    """orjson ``default`` hook: shapes the stdlib handles natively.

    ``json.dumps`` serialises tuples as arrays; orjson routes them (and
    only them, among the types we emit) through this hook so both
    backends accept the same payloads byte-identically.
    """
    if isinstance(obj, tuple):
        return list(obj)
    raise TypeError(
        f"not JSON serialisable: {type(obj).__name__}"
    )


def dumps_canonical(payload: Any) -> bytes:
    """Render *payload* as canonical JSON bytes (see module docs)."""
    if _orjson is not None:
        return _orjson.dumps(
            payload, default=_convert, option=_orjson.OPT_SORT_KEYS
        )
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
    ).encode("utf-8")


def dumps_canonical_stdlib(payload: Any) -> bytes:
    """The stdlib rendering of the canonical form, regardless of orjson.

    Exists for the byte-compatibility tests (and as executable
    documentation of the canonical contract); production call sites use
    :func:`dumps_canonical`.
    """
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
    ).encode("utf-8")
