"""Internet-Health-Report-style query API (paper §8).

The authors expose their results through the IHR website and API so that
operators can monitor ASes they care about.  :class:`InternetHealthReport`
provides the equivalent offline: per-AS condition summaries, event lists,
link-level drill-down, and JSON export — all computed from a
:class:`~repro.core.pipeline.CampaignAnalysis`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.alarms import DelayAlarm, ForwardingAlarm, Link
from repro.core.events import DetectedEvent
from repro.core.pipeline import CampaignAnalysis


@dataclass(frozen=True)
class AsCondition:
    """One AS's health summary over the analyzed period."""

    asn: int
    delay_alarm_count: int
    forwarding_alarm_count: int
    peak_delay_magnitude: float
    peak_delay_hour: Optional[int]
    trough_forwarding_magnitude: float
    trough_forwarding_hour: Optional[int]

    @property
    def healthy(self) -> bool:
        """No pronounced magnitude excursions either way."""
        return (
            self.peak_delay_magnitude < 1.0
            and self.trough_forwarding_magnitude > -1.0
        )


class InternetHealthReport:
    """Query layer over a completed campaign analysis."""

    def __init__(
        self,
        analysis: CampaignAnalysis,
        window_bins: Optional[int] = None,
    ) -> None:
        self.analysis = analysis
        self.window_bins = window_bins
        self._delay_magnitudes = analysis.aggregator.delay_magnitudes(
            window_bins
        )
        self._forwarding_magnitudes = (
            analysis.aggregator.forwarding_magnitudes(window_bins)
        )
        self._start = analysis.aggregator.start
        self._bin_s = analysis.aggregator.bin_s

    # -- per-AS queries -----------------------------------------------------

    def monitored_asns(self) -> List[int]:
        """Every AS with at least one alarm in either series."""
        return sorted(
            set(self._delay_magnitudes) | set(self._forwarding_magnitudes)
        )

    def _hour_of(self, index: int) -> int:
        return (index * self._bin_s) // 3600

    def as_condition(self, asn: int) -> AsCondition:
        """Summarise one AS (zeros if the AS never raised alarms)."""
        delay = self._delay_magnitudes.get(asn)
        forwarding = self._forwarding_magnitudes.get(asn)
        peak_value, peak_hour = 0.0, None
        if delay is not None and delay.size:
            index = int(np.argmax(delay))
            peak_value, peak_hour = float(delay[index]), self._hour_of(index)
        trough_value, trough_hour = 0.0, None
        if forwarding is not None and forwarding.size:
            index = int(np.argmin(forwarding))
            trough_value = float(forwarding[index])
            trough_hour = self._hour_of(index)
        delay_count = sum(
            1
            for alarm in self.analysis.delay_alarms
            if asn in self.analysis.aggregator.mapper.asns_of_link(*alarm.link)
        )
        forwarding_count = sum(
            1
            for alarm in self.analysis.forwarding_alarms
            if self.analysis.aggregator.mapper.asn_of(alarm.router_ip) == asn
        )
        return AsCondition(
            asn=asn,
            delay_alarm_count=delay_count,
            forwarding_alarm_count=forwarding_count,
            peak_delay_magnitude=peak_value,
            peak_delay_hour=peak_hour,
            trough_forwarding_magnitude=trough_value,
            trough_forwarding_hour=trough_hour,
        )

    def magnitude_series(
        self, asn: int, kind: str = "delay"
    ) -> Tuple[List[int], np.ndarray]:
        """(timestamps, magnitudes) for one AS; empty when unknown."""
        if kind == "delay":
            table = self._delay_magnitudes
            series_table = self.analysis.aggregator.delay_series
        elif kind == "forwarding":
            table = self._forwarding_magnitudes
            series_table = self.analysis.aggregator.forwarding_series
        else:
            raise ValueError(f"kind must be 'delay' or 'forwarding': {kind}")
        if asn not in table:
            return [], np.array([])
        return series_table[asn].timestamps(), table[asn]

    # -- event queries ----------------------------------------------------------

    def top_events(
        self, kind: str = "delay", threshold: float = 5.0, limit: int = 10
    ) -> List[DetectedEvent]:
        """Most severe magnitude excursions, like the IHR front page."""
        events = self.analysis.aggregator.detect_events(
            kind, threshold, self.window_bins
        )
        return events[:limit]

    def alarms_at(
        self, timestamp: int
    ) -> Tuple[List[DelayAlarm], List[ForwardingAlarm]]:
        """Both alarm lists for the bin containing *timestamp*."""
        bin_start = (timestamp // self._bin_s) * self._bin_s
        delay = [
            a
            for a in self.analysis.delay_alarms
            if (a.timestamp // self._bin_s) * self._bin_s == bin_start
        ]
        forwarding = [
            a
            for a in self.analysis.forwarding_alarms
            if (a.timestamp // self._bin_s) * self._bin_s == bin_start
        ]
        return delay, forwarding

    def alarms_involving(self, ip: str) -> List[DelayAlarm]:
        """Delay alarms naming *ip* (e.g. all K-root pairs, §7.1)."""
        return [a for a in self.analysis.delay_alarms if a.involves(ip)]

    # -- export -------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise the per-AS summary as the IHR API would."""
        payload = {
            "monitored_asns": self.monitored_asns(),
            "stats": asdict(self.analysis.stats()),
            "conditions": [
                asdict(self.as_condition(asn))
                for asn in self.monitored_asns()
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)
