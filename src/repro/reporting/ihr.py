"""Internet-Health-Report-style query API (paper §8).

The authors expose their results through the IHR website and API so that
operators can monitor ASes they care about.  :class:`InternetHealthReport`
provides the equivalent offline: per-AS condition summaries, event lists,
link-level drill-down, and JSON export — all computed from a
:class:`~repro.core.pipeline.CampaignAnalysis`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.alarms import DelayAlarm, ForwardingAlarm, Link
from repro.core.events import DetectedEvent
from repro.core.pipeline import CampaignAnalysis


@dataclass(frozen=True)
class AsCondition:
    """One AS's health summary over the analyzed period.

    An AS the campaign never alarmed on — including every AS of an
    entirely alarm-free (or empty) campaign — yields the explicit
    healthy summary: zero counts, zero magnitudes, ``None`` hours.
    """

    asn: int
    delay_alarm_count: int
    forwarding_alarm_count: int
    peak_delay_magnitude: float
    peak_delay_hour: Optional[int]
    trough_forwarding_magnitude: float
    trough_forwarding_hour: Optional[int]

    @property
    def healthy(self) -> bool:
        """No pronounced magnitude excursions either way."""
        return (
            self.peak_delay_magnitude < 1.0
            and self.trough_forwarding_magnitude > -1.0
        )


@dataclass(frozen=True)
class LinkHealth:
    """Per-link delay-alarm drill-down for one AS (IHR link view)."""

    link: Link
    alarm_count: int
    peak_deviation: float
    total_deviation: float
    last_timestamp: int


class InternetHealthReport:
    """Query layer over a completed campaign analysis.

    Every ranking this report produces is deterministically ordered
    (severity, then ASN/timestamp/link tie-breaks) and every query is
    total: an empty or alarm-free campaign yields empty lists and
    healthy :class:`AsCondition` summaries, never an exception.  The
    on-disk serving layer (:mod:`repro.service`) answers the same
    queries bit-identically from its persistent store, with this class
    as the oracle.
    """

    def __init__(
        self,
        analysis: CampaignAnalysis,
        window_bins: Optional[int] = None,
    ) -> None:
        self.analysis = analysis
        self.window_bins = window_bins
        self._delay_magnitudes = analysis.aggregator.delay_magnitudes(
            window_bins
        )
        self._forwarding_magnitudes = (
            analysis.aggregator.forwarding_magnitudes(window_bins)
        )
        self._start = analysis.aggregator.start
        self._bin_s = analysis.aggregator.bin_s

    # -- per-AS queries -----------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the campaign raised no alarms of either kind."""
        return (
            not self.analysis.delay_alarms
            and not self.analysis.forwarding_alarms
        )

    def monitored_asns(self) -> List[int]:
        """Every AS with at least one alarm in either series."""
        return sorted(
            set(self._delay_magnitudes) | set(self._forwarding_magnitudes)
        )

    def _hour_of(self, index: int) -> int:
        return (index * self._bin_s) // 3600

    def as_condition(self, asn: int) -> AsCondition:
        """Summarise one AS (zeros if the AS never raised alarms)."""
        delay = self._delay_magnitudes.get(asn)
        forwarding = self._forwarding_magnitudes.get(asn)
        peak_value, peak_hour = 0.0, None
        if delay is not None and delay.size:
            index = int(np.argmax(delay))
            peak_value, peak_hour = float(delay[index]), self._hour_of(index)
        trough_value, trough_hour = 0.0, None
        if forwarding is not None and forwarding.size:
            index = int(np.argmin(forwarding))
            trough_value = float(forwarding[index])
            trough_hour = self._hour_of(index)
        delay_count = sum(
            1
            for alarm in self.analysis.delay_alarms
            if asn in self.analysis.aggregator.mapper.asns_of_link(*alarm.link)
        )
        forwarding_count = sum(
            1
            for alarm in self.analysis.forwarding_alarms
            if self.analysis.aggregator.mapper.asn_of(alarm.router_ip) == asn
        )
        return AsCondition(
            asn=asn,
            delay_alarm_count=delay_count,
            forwarding_alarm_count=forwarding_count,
            peak_delay_magnitude=peak_value,
            peak_delay_hour=peak_hour,
            trough_forwarding_magnitude=trough_value,
            trough_forwarding_hour=trough_hour,
        )

    def magnitude_series(
        self, asn: int, kind: str = "delay"
    ) -> Tuple[List[int], np.ndarray]:
        """(timestamps, magnitudes) for one AS; empty when unknown."""
        if kind == "delay":
            table = self._delay_magnitudes
            series_table = self.analysis.aggregator.delay_series
        elif kind == "forwarding":
            table = self._forwarding_magnitudes
            series_table = self.analysis.aggregator.forwarding_series
        else:
            raise ValueError(f"kind must be 'delay' or 'forwarding': {kind}")
        if asn not in table:
            return [], np.array([])
        return series_table[asn].timestamps(), table[asn]

    def links_of(self, asn: int) -> List[LinkHealth]:
        """Per-link drill-down: this AS's delay alarms grouped by link.

        Links are ordered most-alarmed first (ties: larger summed
        deviation, then lexicographic link) — fully deterministic.
        """
        counts: Dict[Link, int] = {}
        peaks: Dict[Link, float] = {}
        totals: Dict[Link, float] = {}
        last: Dict[Link, int] = {}
        mapper = self.analysis.aggregator.mapper
        for alarm in self.analysis.delay_alarms:
            if asn not in mapper.asns_of_link(*alarm.link):
                continue
            link = alarm.link
            counts[link] = counts.get(link, 0) + 1
            peaks[link] = max(peaks.get(link, 0.0), alarm.deviation)
            totals[link] = totals.get(link, 0.0) + alarm.deviation
            last[link] = max(last.get(link, alarm.timestamp), alarm.timestamp)
        summaries = [
            LinkHealth(
                link=link,
                alarm_count=counts[link],
                peak_deviation=peaks[link],
                total_deviation=totals[link],
                last_timestamp=last[link],
            )
            for link in counts
        ]
        summaries.sort(
            key=lambda s: (-s.alarm_count, -s.total_deviation, s.link)
        )
        return summaries

    def _magnitude_table(self, kind: str) -> Dict[int, np.ndarray]:
        """The per-AS magnitude dict for *kind* (validates the kind)."""
        if kind == "delay":
            return self._delay_magnitudes
        if kind == "forwarding":
            return self._forwarding_magnitudes
        raise ValueError(f"kind must be 'delay' or 'forwarding': {kind}")

    def top_asns(
        self, kind: str = "delay", k: int = 10
    ) -> List[Tuple[int, float]]:
        """The *k* most anomalous ASes: (ASN, peak signed magnitude).

        Ranked by |peak magnitude| descending, ties broken by ASN — the
        IHR front page's "worst offenders" list.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0: {k}")
        ranking: List[Tuple[int, float]] = []
        table = self._magnitude_table(kind)
        for asn in sorted(table):
            magnitudes = table[asn]
            if not magnitudes.size:
                continue
            index = int(np.argmax(np.abs(magnitudes)))
            ranking.append((asn, float(magnitudes[index])))
        ranking.sort(key=lambda entry: (-abs(entry[1]), entry[0]))
        return ranking[:k]

    # -- event queries ----------------------------------------------------------

    def top_events(
        self, kind: str = "delay", threshold: float = 5.0, limit: int = 10
    ) -> List[DetectedEvent]:
        """Most severe magnitude excursions, like the IHR front page."""
        events = self.analysis.aggregator.detect_events(
            kind, threshold, self.window_bins
        )
        return events[:limit]

    def events_in(
        self,
        start_timestamp: int,
        end_timestamp: int,
        kind: str = "delay",
        threshold: float = 5.0,
    ) -> List[DetectedEvent]:
        """Events within ``[start, end)``, most severe first."""
        if end_timestamp < start_timestamp:
            raise ValueError(
                f"end {end_timestamp} precedes start {start_timestamp}"
            )
        return [
            event
            for event in self.analysis.aggregator.detect_events(
                kind, threshold, self.window_bins
            )
            if start_timestamp <= event.timestamp < end_timestamp
        ]

    def alarms_at(
        self, timestamp: int
    ) -> Tuple[List[DelayAlarm], List[ForwardingAlarm]]:
        """Both alarm lists for the bin containing *timestamp*."""
        bin_start = (timestamp // self._bin_s) * self._bin_s
        delay = [
            a
            for a in self.analysis.delay_alarms
            if (a.timestamp // self._bin_s) * self._bin_s == bin_start
        ]
        forwarding = [
            a
            for a in self.analysis.forwarding_alarms
            if (a.timestamp // self._bin_s) * self._bin_s == bin_start
        ]
        return delay, forwarding

    def alarms_involving(self, ip: str) -> List[DelayAlarm]:
        """Delay alarms naming *ip* (e.g. all K-root pairs, §7.1)."""
        return [a for a in self.analysis.delay_alarms if a.involves(ip)]

    # -- export -------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise the per-AS summary as the IHR API would.

        An alarm-free campaign is an explicit healthy report (``empty``
        true, no conditions) rather than an error.
        """
        payload = {
            "empty": self.is_empty,
            "monitored_asns": self.monitored_asns(),
            "stats": asdict(self.analysis.stats()),
            "conditions": [
                {
                    **asdict(condition),
                    "healthy": condition.healthy,
                }
                for condition in map(
                    self.as_condition, self.monitored_asns()
                )
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)
