"""Tests for IPv6 address utilities and the dual-stack mapper/trie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    MAX_IPV6,
    AsMapper,
    PrefixTrie,
    int_to_ip6,
    ip6_in_prefix,
    ip6_to_int,
    is_valid_ipv6,
    prefix6_netmask,
)


class TestParsing:
    def test_full_form(self):
        assert ip6_to_int("0:0:0:0:0:0:0:1") == 1

    def test_compressed_forms(self):
        assert ip6_to_int("::1") == 1
        assert ip6_to_int("::") == 0
        assert ip6_to_int("1::") == 1 << 112
        assert ip6_to_int("2001:db8::ff") == (0x2001 << 112) | (
            0x0DB8 << 96
        ) | 0xFF

    def test_real_root_server_addresses(self):
        # K, F, I root server v6 addresses parse fine.
        for address in ("2001:7fd::1", "2001:500:2f::f", "2001:7fe::53"):
            assert is_valid_ipv6(address)

    def test_rejects_malformed(self):
        for bad in (
            "", "1.2.3.4", ":::", "2001::db8::1", "12345::", "g::1",
            "1:2:3:4:5:6:7", "1:2:3:4:5:6:7:8:9", "1::2::3",
        ):
            assert not is_valid_ipv6(bad), bad

    def test_rejects_expansion_to_nothing(self):
        assert not is_valid_ipv6("1:2:3:4:5:6:7::8")


class TestFormatting:
    def test_loopback(self):
        assert int_to_ip6(1) == "::1"
        assert int_to_ip6(0) == "::"

    def test_rfc5952_compression(self):
        assert int_to_ip6(ip6_to_int("2001:db8:0:0:0:0:0:ff")) == "2001:db8::ff"
        # RFC 5952 §4.2.3: the *longest* zero run is compressed.
        assert int_to_ip6(ip6_to_int("2001:0:0:1:0:0:0:1")) == "2001:0:0:1::1"

    def test_no_compression_for_single_zero(self):
        value = ip6_to_int("1:0:2:3:4:5:6:7")
        assert int_to_ip6(value) == "1:0:2:3:4:5:6:7"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ip6(-1)
        with pytest.raises(ValueError):
            int_to_ip6(MAX_IPV6 + 1)

    @settings(max_examples=200)
    @given(st.integers(min_value=0, max_value=MAX_IPV6))
    def test_roundtrip(self, value):
        assert ip6_to_int(int_to_ip6(value)) == value


class TestPrefixes:
    def test_netmask(self):
        assert prefix6_netmask(0) == 0
        assert prefix6_netmask(128) == MAX_IPV6
        assert prefix6_netmask(32) == (2**32 - 1) << 96
        with pytest.raises(ValueError):
            prefix6_netmask(129)

    def test_in_prefix(self):
        assert ip6_in_prefix("2001:db8::1", "2001:db8::", 32)
        assert not ip6_in_prefix("2001:db9::1", "2001:db8::", 32)
        assert ip6_in_prefix("::1", "::", 0)

    @settings(max_examples=100)
    @given(
        st.integers(min_value=0, max_value=MAX_IPV6),
        st.integers(min_value=0, max_value=128),
    )
    def test_every_address_in_own_prefix(self, value, length):
        ip = int_to_ip6(value)
        assert ip6_in_prefix(ip, ip, length)


class TestTrie128:
    def test_longest_match(self):
        trie = PrefixTrie(bits=128)
        trie.insert("2001:db8::", 32, "short")
        trie.insert("2001:db8:5::", 48, "long")
        assert trie.lookup_value("2001:db8:5::1") == "long"
        assert trie.lookup_value("2001:db8:9::1") == "short"
        assert trie.lookup_value("fe80::1") is None

    def test_items_canonical(self):
        trie = PrefixTrie(bits=128)
        trie.insert("2001:7fd::", 32, 25152)
        assert dict(trie.items()) == {("2001:7fd::", 32): 25152}

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            PrefixTrie(bits=64)


class TestDualStackMapper:
    def test_both_families(self):
        mapper = AsMapper(
            [("193.0.0.0", 16, 25152), ("2001:7fd::", 32, 25152)]
        )
        assert mapper.asn_of("193.0.14.129") == 25152
        assert mapper.asn_of("2001:7fd::1") == 25152
        assert len(mapper) == 2

    def test_cross_family_isolation(self):
        mapper = AsMapper([("2001:7fd::", 32, 25152)])
        assert mapper.asn_of("193.0.14.129") is None

    def test_v6_link_mapping(self):
        mapper = AsMapper(
            [("2001:db8:1::", 48, 1), ("2001:db8:2::", 48, 2)]
        )
        assert mapper.asns_of_link("2001:db8:1::a", "2001:db8:2::b") == [1, 2]

    def test_prefix_of_v6(self):
        mapper = AsMapper([("2001:7fd::", 32, 25152)])
        assert mapper.prefix_of("2001:7fd::1") == ("2001:7fd::", 32)
