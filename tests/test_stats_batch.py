"""Bit-identity tests for the batched statistics hot paths.

The sharded engine's equivalence guarantee rests on the batched Wilson
interval and batched Pearson correlation producing results **bit
identical** to their scalar counterparts — not merely approximately
equal.  These tests compare exact float values over adversarial random
inputs (tiny and large sample sets, duplicate values, constant and
degenerate patterns, key-set sizes crossing numpy's pairwise-summation
block boundaries).
"""

import numpy as np
import pytest

from repro.core.alarms import UNRESPONSIVE
from repro.stats import (
    median_confidence_interval,
    median_confidence_interval_batch,
    pearson_correlation,
    pearson_correlation_batch,
)


class TestWilsonBatch:
    def test_bit_identical_to_scalar_random(self):
        rng = np.random.default_rng(42)
        sample_sets = []
        for _ in range(300):
            n = int(rng.integers(1, 500))
            values = rng.normal(50.0, 30.0, n)
            if rng.random() < 0.3:  # duplicates stress tie handling
                values = np.round(values)
            sample_sets.append(list(values))
        batch = median_confidence_interval_batch(sample_sets)
        for values, batched in zip(sample_sets, batch):
            scalar = median_confidence_interval(values)
            assert scalar == batched  # dataclass eq -> exact floats

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 9, 127, 128, 129])
    def test_boundary_sizes(self, n):
        rng = np.random.default_rng(n)
        values = list(rng.normal(0.0, 5.0, n))
        [batched] = median_confidence_interval_batch([values])
        assert batched == median_confidence_interval(values)

    def test_custom_z(self):
        values = [5.0, 1.0, 3.0, 2.0, 8.0, 13.0]
        [batched] = median_confidence_interval_batch([values], z=2.58)
        assert batched == median_confidence_interval(values, z=2.58)

    def test_mixed_lengths_padding_isolated(self):
        """A huge set next to a singleton must not leak padding."""
        big = list(np.random.default_rng(1).normal(0, 1, 400))
        batch = median_confidence_interval_batch([big, [7.0], big[:3]])
        assert batch[1].median == 7.0
        assert batch[1].lower == 7.0
        assert batch[1].upper == 7.0
        assert batch[2] == median_confidence_interval(big[:3])

    def test_empty_batch(self):
        assert median_confidence_interval_batch([]) == []

    def test_empty_sample_set_rejected(self):
        with pytest.raises(ValueError):
            median_confidence_interval_batch([[1.0], []])

    def test_invalid_z(self):
        with pytest.raises(ValueError):
            median_confidence_interval_batch([[1.0]], z=0.0)


def _random_pattern(rng, keys):
    return {
        key: float(rng.integers(0, 40))
        for key in keys
        if rng.random() < 0.8
    }


class TestPearsonBatch:
    def test_bit_identical_to_scalar_random(self):
        rng = np.random.default_rng(7)
        pairs = []
        for _ in range(400):
            n = int(rng.integers(1, 200))
            keys = [f"10.0.{i // 250}.{i % 250}" for i in range(n)]
            keys.append(UNRESPONSIVE)
            current = _random_pattern(rng, keys)
            reference = _random_pattern(rng, keys)
            if not current and not reference:
                current = {"fallback": 1.0}
            if rng.random() < 0.1:  # constant vectors (degenerate path)
                current = {key: 3.0 for key in (list(current) or ["a"])}
            if rng.random() < 0.1:  # identical patterns -> rho == 1
                reference = dict(current)
            pairs.append((current, reference))
        batch = pearson_correlation_batch(pairs)
        for (current, reference), batched in zip(pairs, batch):
            assert pearson_correlation(current, reference) == batched

    def test_degenerate_policies(self):
        # Both constant and proportional -> +1.
        [rho] = pearson_correlation_batch([({"a": 5.0}, {"a": 9.0})])
        assert rho == 1.0
        # One constant, one varying -> 0.
        [rho] = pearson_correlation_batch(
            [({"a": 5.0, "b": 5.0}, {"a": 1.0, "b": 9.0})]
        )
        assert rho == 0.0

    def test_empty_batch(self):
        assert pearson_correlation_batch([]) == []

    def test_empty_pair_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation_batch([({}, {})])
