"""Property-based tests on pipeline-level invariants.

These exercise the detection machinery with randomly generated (but
structurally valid) traceroute workloads and assert invariants that must
hold for *any* input: determinism, conservation of counts, absence of
warm-up alarms, bounded scores.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atlas import make_traceroute
from repro.core import (
    Pipeline,
    PipelineConfig,
    differential_rtts,
    forwarding_patterns,
)
from repro.core.alarms import UNRESPONSIVE

ip_strategy = st.sampled_from(
    ["10.0.0.1", "10.0.0.2", "10.0.1.1", "10.1.0.1", "10.1.0.2"]
)
rtt_strategy = st.floats(min_value=0.1, max_value=200.0, allow_nan=False)


@st.composite
def traceroute_strategy(draw, ts=0):
    n_hops = draw(st.integers(min_value=1, max_value=5))
    hop_replies = []
    for _ in range(n_hops):
        n_replies = draw(st.integers(min_value=1, max_value=3))
        replies = []
        for _ in range(n_replies):
            if draw(st.booleans()):
                replies.append((draw(ip_strategy), draw(rtt_strategy)))
            else:
                replies.append((None, None))
        hop_replies.append(replies)
    return make_traceroute(
        prb_id=draw(st.integers(0, 20)),
        src_addr="192.0.2.1",
        dst_addr=draw(ip_strategy),
        timestamp=ts,
        hop_replies=hop_replies,
        from_asn=draw(st.sampled_from([65001, 65002, 65003, None])),
    )


class TestDiffRttInvariants:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(traceroute_strategy(), max_size=15))
    def test_sample_counts_bounded_by_reply_products(self, traceroutes):
        observations = differential_rtts(traceroutes)
        for link, obs in observations.items():
            assert link[0] != link[1]
            assert obs.n_samples >= obs.n_probes  # >=1 sample per probe
            # At most 9 samples per probe per traceroute.
            assert obs.n_samples <= 9 * len(traceroutes)

    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(traceroute_strategy(), max_size=10))
    def test_deterministic(self, traceroutes):
        first = differential_rtts(traceroutes)
        second = differential_rtts(traceroutes)
        assert set(first) == set(second)
        for link in first:
            assert first[link].all_samples() == second[link].all_samples()


class TestForwardingPatternInvariants:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(traceroute_strategy(), max_size=15))
    def test_counts_conserved(self, traceroutes):
        """Total packets attributed across next hops equals the number of
        replies at successor hops of responsive routers."""
        patterns = forwarding_patterns(traceroutes)
        total_attributed = sum(
            sum(p.values()) for p in patterns.values()
        )
        expected = 0
        for tr in traceroutes:
            for near, far in tr.adjacent_pairs():
                if near.primary_ip is not None:
                    expected += len(far.replies)
        assert total_attributed == expected

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(traceroute_strategy(), max_size=15))
    def test_keys_are_responsive_routers(self, traceroutes):
        patterns = forwarding_patterns(traceroutes)
        for (router_ip, destination), pattern in patterns.items():
            assert router_ip is not None
            assert router_ip != UNRESPONSIVE
            assert all(count > 0 for count in pattern.values())


class TestPipelineInvariants:
    @settings(max_examples=15, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_no_alarms_on_first_bins(self, data):
        """Whatever the workload, the 3-bin warm-up forbids alarms."""
        pipeline = Pipeline(PipelineConfig(seed=0))
        for t in range(2):
            traceroutes = data.draw(
                st.lists(traceroute_strategy(ts=t * 3600), max_size=10)
            )
            result = pipeline.process_bin(t * 3600, traceroutes)
            assert result.delay_alarms == []
            assert result.forwarding_alarms == []

    @settings(max_examples=10, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(traceroute_strategy(), max_size=20))
    def test_bin_result_counts_consistent(self, traceroutes):
        pipeline = Pipeline(PipelineConfig(seed=0))
        result = pipeline.process_bin(0, traceroutes)
        assert result.n_traceroutes == len(traceroutes)
        assert 0 <= result.n_links_analyzed <= result.n_links_observed
        stats = pipeline.stats()
        assert stats.links_observed == result.n_links_observed
        assert stats.links_analyzed == result.n_links_analyzed

    @settings(max_examples=10, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(traceroute_strategy(), max_size=12))
    def test_pipeline_deterministic_across_instances(self, traceroutes):
        results = []
        for _ in range(2):
            pipeline = Pipeline(PipelineConfig(seed=5))
            result = pipeline.process_bin(0, traceroutes)
            results.append(
                (
                    result.n_links_observed,
                    result.n_links_analyzed,
                    len(result.delay_alarms),
                    len(result.forwarding_alarms),
                )
            )
        assert results[0] == results[1]


class TestAlarmScoreBounds:
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.dictionaries(
            st.sampled_from(["A", "B", "C", UNRESPONSIVE]),
            st.floats(min_value=0.0, max_value=1000.0),
            min_size=1,
            max_size=4,
        ),
        st.dictionaries(
            st.sampled_from(["A", "B", "C", UNRESPONSIVE]),
            st.floats(min_value=0.0, max_value=1000.0),
            min_size=1,
            max_size=4,
        ),
    )
    def test_responsibilities_bounded_and_sum_structure(self, pattern, ref):
        from repro.core import responsibility_scores
        from repro.stats import pearson_correlation

        rho = pearson_correlation(pattern, ref)
        scores = responsibility_scores(pattern, ref, rho)
        for value in scores.values():
            assert -1.0 <= value <= 1.0
        # |Σ r_i| <= |ρ| by the triangle inequality on Eq. 9.
        assert abs(sum(scores.values())) <= abs(rho) + 1e-9
