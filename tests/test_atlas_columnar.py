"""Columnar ingestion: interner, batch round-trips, decoder, bin cache.

The columnar layer's contract is *exact* equivalence with the object
path — same traceroutes back out of the columns, same strict/lenient
error behaviour as ``read_traceroutes``, same bins from ``TimeBinner``
— plus a versioned binary cache that must fail loudly (never serve
wrong data) on foreign, stale or corrupt files.
"""

import gzip
import json
import os
import warnings

import pytest

from repro.atlas import (
    BatchView,
    BinCacheError,
    DecodeWarning,
    IPInterner,
    TimeBinner,
    TracerouteBatch,
    TracerouteDecodeError,
    bin_views,
    decode_traceroutes,
    default_cache_path,
    fingerprint_of,
    load_or_build,
    make_traceroute,
    read_bincache,
    read_traceroutes,
    write_bincache,
    write_traceroutes,
)


def _mixed_traceroutes():
    """A small campaign exercising every optional-field combination."""
    return [
        make_traceroute(
            1,
            "192.0.2.1",
            "10.9.9.9",
            100,
            [
                [("10.0.0.1", 1.5), ("10.0.0.1", 1.6), (None, None)],
                [("10.0.0.2", 4.0), ("10.0.0.3", 4.5)],
                [(None, None)],
            ],
            from_asn=65001,
            msm_id=5001,
        ),
        make_traceroute(2, "192.0.2.2", "10.9.9.9", 3700, [[("10.0.0.1", 2.0)]]),
        make_traceroute(
            3, "192.0.2.3", "10.8.8.8", 7300, [], from_asn=None, msm_id=None
        ),
    ]


class TestIPInterner:
    def test_ids_are_dense_and_stable(self):
        interner = IPInterner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0
        assert interner.lookup(1) == "b"
        assert len(interner) == 2
        assert "a" in interner and "c" not in interner

    def test_seeding_from_strings(self):
        interner = IPInterner(["x", "y"])
        assert interner.intern("x") == 0
        assert interner.intern("z") == 2
        assert interner.strings == ["x", "y", "z"]

    def test_interning_returns_same_string_object(self):
        interner = IPInterner()
        first = "10." + "0.0.1"  # avoid small-literal identity
        interner.intern(first)
        assert interner.lookup(0) is first


class TestTracerouteBatchRoundTrip:
    def test_object_round_trip_is_exact(self):
        originals = _mixed_traceroutes()
        batch = TracerouteBatch.from_traceroutes(originals)
        assert len(batch) == 3
        assert batch.to_traceroutes() == originals

    def test_negative_optional_ints_rejected(self):
        """Regression: -1 would collide with the NO_INT sentinel and
        silently round-trip to None; the batch must refuse instead."""
        for kwargs in ({"from_asn": -1}, {"msm_id": -5}):
            tr = make_traceroute(1, "s", "d", 0, [[("a", 1.0)]], **kwargs)
            with pytest.raises(ValueError):
                TracerouteBatch.from_traceroutes([tr])

    def test_negative_from_asn_is_decode_error(self, tmp_path):
        path = tmp_path / "neg.jsonl"
        path.write_text(json.dumps({
            "prb_id": 1, "src_addr": "s", "dst_addr": "d", "timestamp": 1,
            "from_asn": -1, "result": [],
        }) + "\n")
        with pytest.raises(TracerouteDecodeError):
            decode_traceroutes(path)

    def test_lost_packet_with_rtt_round_trips(self):
        """A hand-built Reply(None, rtt) keeps its RTT through columns."""
        tr = make_traceroute(1, "s", "d", 0, [[(None, 5.0), ("a", 1.0)]])
        batch = TracerouteBatch.from_traceroutes([tr])
        assert batch.to_traceroutes() == [tr]

    def test_view_and_iteration(self):
        originals = _mixed_traceroutes()
        batch = TracerouteBatch.from_traceroutes(originals)
        view = batch.view()
        assert len(view) == 3
        assert list(view) == originals
        sub = batch.view([2, 0])
        assert sub.to_traceroutes() == [originals[2], originals[0]]

    def test_repr_smoke(self):
        batch = TracerouteBatch.from_traceroutes(_mixed_traceroutes())
        assert "n_traceroutes=3" in repr(batch)
        assert "BatchView" in repr(batch.view())


class TestDecodeTraceroutes:
    def test_matches_object_reader(self, tmp_path):
        path = tmp_path / "c.jsonl"
        write_traceroutes(path, _mixed_traceroutes())
        batch = decode_traceroutes(path)
        assert batch.to_traceroutes() == list(read_traceroutes(path))

    def test_gzip(self, tmp_path):
        path = tmp_path / "c.jsonl.gz"
        write_traceroutes(path, _mixed_traceroutes())
        assert decode_traceroutes(path).to_traceroutes() == list(
            read_traceroutes(path)
        )

    def test_strict_error_matches_object_reader(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        write_traceroutes(path, _mixed_traceroutes()[:1])
        with open(path, "a") as handle:
            handle.write("not json\n")
        with pytest.raises(TracerouteDecodeError) as columnar_error:
            decode_traceroutes(path)
        with pytest.raises(TracerouteDecodeError) as object_error:
            list(read_traceroutes(path))
        assert (
            columnar_error.value.line_number
            == object_error.value.line_number
            == 2
        )

    def test_lenient_skips_and_warns_and_rolls_back(self, tmp_path):
        """A line failing mid-parse must leave no partial hops behind."""
        good = _mixed_traceroutes()[0]
        bad = good.to_json()
        del bad["prb_id"]  # fails *after* its hops were parsed
        path = tmp_path / "mixed.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps(good.to_json()) + "\n")
            handle.write(json.dumps(bad) + "\n")
            handle.write("\n")  # blank: skipped silently, not counted
            handle.write(json.dumps(good.to_json()) + "\n")
        with pytest.warns(DecodeWarning) as captured:
            batch = decode_traceroutes(path, strict=False)
        assert captured[0].message.skipped == 1
        assert batch.to_traceroutes() == [good, good]
        assert batch.n_hops == 2 * len(good.hops)  # rollback left no orphans

    def test_ttl_validation_matches_object_path(self, tmp_path):
        path = tmp_path / "ttl.jsonl"
        record = _mixed_traceroutes()[0].to_json()
        record["result"][0]["hop"] = 0
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(TracerouteDecodeError):
            decode_traceroutes(path)
        with pytest.raises(TracerouteDecodeError):
            list(read_traceroutes(path))

    def test_numeric_string_rtt_converts_like_object_path(self, tmp_path):
        """Regression: a JSON string RTT must go through the same
        float() conversion as Reply.from_json, not be rejected."""
        path = tmp_path / "strrtt.jsonl"
        path.write_text(json.dumps({
            "prb_id": 1, "src_addr": "s", "dst_addr": "d", "timestamp": 10,
            "result": [{"hop": 1, "result": [{"from": "a", "rtt": "1.5"}]}],
        }) + "\n")
        batch = decode_traceroutes(path)
        assert batch.to_traceroutes() == list(read_traceroutes(path))
        assert batch.to_traceroutes()[0].hops[0].replies[0].rtt_ms == 1.5

    def test_non_string_addresses_are_decode_errors(self, tmp_path):
        """Regression: a non-string responder/endpoint address must fail
        at decode time with a line number, not crash write_bincache
        later (interned strings round-trip through UTF-8)."""
        for field_line in (
            {"prb_id": 1, "src_addr": "s", "dst_addr": "d", "timestamp": 1,
             "result": [{"hop": 1, "result": [{"from": 123, "rtt": 1.0}]}]},
            {"prb_id": 1, "src_addr": 99, "dst_addr": "d", "timestamp": 1,
             "result": []},
            {"prb_id": 1, "src_addr": "s", "dst_addr": 99, "timestamp": 1,
             "result": []},
        ):
            path = tmp_path / "nonstr.jsonl"
            path.write_text(json.dumps(field_line) + "\n")
            with pytest.raises(TracerouteDecodeError) as excinfo:
                decode_traceroutes(path)
            assert excinfo.value.line_number == 1
            with pytest.warns(DecodeWarning):
                assert len(decode_traceroutes(path, strict=False)) == 0

    def test_interner_rejects_non_strings(self):
        with pytest.raises(TypeError):
            IPInterner().intern(123)

    def test_shared_interner_across_files(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        write_traceroutes(first, _mixed_traceroutes()[:1])
        write_traceroutes(second, _mixed_traceroutes()[1:])
        interner = IPInterner()
        batch_a = decode_traceroutes(first, interner=interner)
        batch_b = decode_traceroutes(second, interner=interner)
        assert batch_a.interner is batch_b.interner
        combined = batch_a.to_traceroutes() + batch_b.to_traceroutes()
        assert combined == _mixed_traceroutes()


class TestColumnarBinning:
    def test_bins_match_object_binner(self):
        originals = _mixed_traceroutes()
        batch = TracerouteBatch.from_traceroutes(originals)
        for dense in (True, False):
            object_bins = list(TimeBinner(3600, dense=dense).bins(originals))
            column_bins = list(TimeBinner(3600, dense=dense).bins(batch))
            assert [s for s, _ in object_bins] == [s for s, _ in column_bins]
            for (_, members), (_, view) in zip(object_bins, column_bins):
                assert isinstance(view, BatchView)
                assert view.to_traceroutes() == members

    def test_bin_views_validates_bin_size(self):
        batch = TracerouteBatch.from_traceroutes(_mixed_traceroutes())
        with pytest.raises(ValueError):
            list(bin_views(batch, 0))

    def test_bin_views_accepts_views(self):
        batch = TracerouteBatch.from_traceroutes(_mixed_traceroutes())
        rebinned = list(bin_views(batch.view([0, 1]), 3600))
        assert [start for start, _ in rebinned] == [0, 3600]

    def test_empty_batch(self):
        assert list(bin_views(TracerouteBatch(), 3600)) == []


class TestBinCache:
    def test_round_trip(self, tmp_path):
        batch = TracerouteBatch.from_traceroutes(_mixed_traceroutes())
        cache = tmp_path / "campaign.binc"
        written = write_bincache(cache, batch)
        assert written == cache.stat().st_size
        restored = read_bincache(cache)
        assert restored.to_traceroutes() == batch.to_traceroutes()

    def test_bad_magic_rejected(self, tmp_path):
        cache = tmp_path / "x.binc"
        write_bincache(cache, TracerouteBatch())
        corrupted = bytearray(cache.read_bytes())
        corrupted[0] ^= 0xFF
        cache.write_bytes(bytes(corrupted))
        with pytest.raises(BinCacheError):
            read_bincache(cache)

    def test_truncation_rejected(self, tmp_path):
        batch = TracerouteBatch.from_traceroutes(_mixed_traceroutes())
        cache = tmp_path / "x.binc"
        write_bincache(cache, batch)
        cache.write_bytes(cache.read_bytes()[:-8])
        with pytest.raises(BinCacheError):
            read_bincache(cache)

    def test_length_preserving_corruption_rejected(self, tmp_path):
        """Regression: a flipped value inside a column payload (same
        lengths, out-of-range ids) must fail validation — analysis must
        never see a batch whose ids don't index the string table."""
        batch = TracerouteBatch.from_traceroutes(_mixed_traceroutes())
        cache = tmp_path / "x.binc"
        write_bincache(cache, batch)
        clean = cache.read_bytes()
        # The last 8 bytes of the reply_rtt column are the file tail;
        # reply_ip sits just before it.  Rather than compute offsets,
        # corrupt every int64 window that currently equals a valid id
        # and assert at least one such corruption is caught.
        import struct as structlib

        target = structlib.pack("<q", batch.reply_ip[0])
        position = clean.rindex(target)
        corrupt = (
            clean[:position]
            + structlib.pack("<q", 10_000_000)
            + clean[position + 8:]
        )
        cache.write_bytes(corrupt)
        with pytest.raises(BinCacheError):
            read_bincache(cache)
        # load_or_build recovers by rebuilding from the source.
        source = tmp_path / "c.jsonl"
        write_traceroutes(source, _mixed_traceroutes())
        write_bincache(
            default_cache_path(source), batch, fingerprint=fingerprint_of(source)
        )
        bad = default_cache_path(source).read_bytes()
        position = bad.rindex(target)
        default_cache_path(source).write_bytes(
            bad[:position] + structlib.pack("<q", 10_000_000) + bad[position + 8:]
        )
        rebuilt, hit = load_or_build(source)
        assert not hit
        assert rebuilt.to_traceroutes() == _mixed_traceroutes()

    def test_stale_fingerprint_rejected(self, tmp_path):
        cache = tmp_path / "x.binc"
        write_bincache(cache, TracerouteBatch(), fingerprint=(10, 20))
        assert len(read_bincache(cache, fingerprint=(10, 20))) == 0
        with pytest.raises(BinCacheError):
            read_bincache(cache, fingerprint=(10, 21))

    def test_unbound_cache_accepts_any_fingerprint(self, tmp_path):
        cache = tmp_path / "x.binc"
        write_bincache(cache, TracerouteBatch())  # fingerprint (0, 0)
        assert len(read_bincache(cache, fingerprint=(123, 456))) == 0

    def test_load_or_build_miss_then_hit(self, tmp_path):
        source = tmp_path / "c.jsonl"
        write_traceroutes(source, _mixed_traceroutes())
        batch, hit = load_or_build(source)
        assert not hit
        assert default_cache_path(source).exists()
        again, hit = load_or_build(source)
        assert hit
        assert again.to_traceroutes() == batch.to_traceroutes()

    def test_load_or_build_rebuilds_when_source_changes(self, tmp_path):
        source = tmp_path / "c.jsonl"
        write_traceroutes(source, _mixed_traceroutes()[:1])
        load_or_build(source)
        write_traceroutes(source, _mixed_traceroutes())
        os.utime(source, ns=(1, 1))  # force a new mtime even on fast FS
        rebuilt, hit = load_or_build(source)
        assert not hit
        assert rebuilt.to_traceroutes() == _mixed_traceroutes()

    def test_load_or_build_rebuilds_corrupt_cache(self, tmp_path):
        source = tmp_path / "c.jsonl"
        write_traceroutes(source, _mixed_traceroutes())
        load_or_build(source)
        default_cache_path(source).write_bytes(b"garbage")
        batch, hit = load_or_build(source)
        assert not hit
        assert batch.to_traceroutes() == _mixed_traceroutes()

    def test_explicit_cache_path(self, tmp_path):
        source = tmp_path / "c.jsonl"
        cache = tmp_path / "elsewhere.bin"
        write_traceroutes(source, _mixed_traceroutes())
        _, hit = load_or_build(source, cache_path=cache)
        assert not hit and cache.exists()
        _, hit = load_or_build(source, cache_path=cache)
        assert hit

    def test_gzip_source(self, tmp_path):
        source = tmp_path / "c.jsonl.gz"
        write_traceroutes(source, _mixed_traceroutes())
        batch, hit = load_or_build(source)
        assert not hit
        assert batch.to_traceroutes() == _mixed_traceroutes()
