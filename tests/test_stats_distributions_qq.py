"""Tests for ECDF/CCDF helpers (Fig. 5) and Q-Q normality tools (Fig. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    eccdf,
    ecdf,
    fraction_above,
    fraction_below,
    normal_qq,
    normality_verdict,
    qq_linearity,
    qq_max_deviation,
    quantile_of_fraction,
    tail_weight,
)


class TestEcdf:
    def test_basic(self):
        x, y = ecdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert y[-1] == 1.0

    def test_eccdf_complements(self):
        x, y = eccdf([1.0, 2.0, 3.0, 4.0])
        assert y[-1] == 0.0
        assert y[0] == 0.75

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ecdf([])

    @settings(max_examples=40)
    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200))
    def test_monotone_nondecreasing(self, values):
        x, y = ecdf(values)
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(y) >= 0)
        assert 0 < y[0] <= 1.0


class TestFractions:
    def test_fraction_below(self):
        assert fraction_below([0.1, 0.5, 2.0, 3.0], 1.0) == 0.5

    def test_fraction_above(self):
        assert fraction_above([0.1, 0.5, 2.0, 3.0], 1.0) == 0.5

    def test_below_above_sum_to_one_without_ties(self):
        values = [0.0, 1.0, 2.0, 3.0]
        assert fraction_below(values, 1.5) + fraction_above(values, 1.5) == 1.0

    def test_quantile_of_fraction(self):
        values = list(range(101))
        assert quantile_of_fraction(values, 0.5) == 50.0

    def test_quantile_validates(self):
        with pytest.raises(ValueError):
            quantile_of_fraction([1.0], 1.5)
        with pytest.raises(ValueError):
            quantile_of_fraction([], 0.5)

    def test_tail_weight(self):
        assert tail_weight([0.0, 0.0, 5.0, -5.0], 1.0) == 0.5

    def test_empty_raise(self):
        for func in (fraction_below, fraction_above):
            with pytest.raises(ValueError):
                func([], 1.0)


class TestQQ:
    def test_normal_sample_is_linear(self):
        rng = np.random.default_rng(11)
        sample = rng.normal(5.0, 2.0, size=400)
        assert qq_linearity(sample) > 0.99
        assert normality_verdict(sample)

    def test_heavy_tailed_sample_fails(self):
        """Mean-like statistic contaminated by outliers: Fig. 3b shape."""
        rng = np.random.default_rng(12)
        sample = np.concatenate(
            [rng.normal(5.0, 0.1, size=380), rng.exponential(50.0, size=20)]
        )
        assert qq_linearity(sample) < 0.9
        assert not normality_verdict(sample)

    def test_qq_series_shapes(self):
        rng = np.random.default_rng(13)
        theoretical, observed = normal_qq(rng.normal(size=100))
        assert theoretical.shape == observed.shape == (100,)
        assert np.all(np.diff(theoretical) > 0)
        assert np.all(np.diff(observed) >= 0)

    def test_max_deviation_small_for_normal(self):
        rng = np.random.default_rng(14)
        assert qq_max_deviation(rng.normal(size=1000)) < 0.5

    def test_too_few_samples_raise(self):
        with pytest.raises(ValueError):
            normal_qq([1.0, 2.0])

    def test_constant_sample_raises(self):
        with pytest.raises(ValueError):
            normal_qq([5.0] * 10)

    @settings(max_examples=20)
    @given(st.integers(min_value=10, max_value=300))
    def test_linearity_in_unit_range(self, n):
        rng = np.random.default_rng(n)
        sample = rng.normal(size=n)
        rho = qq_linearity(sample)
        assert 0.0 < rho <= 1.0
