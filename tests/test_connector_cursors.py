"""Corruption-matrix tests for the durable fetch cursors.

A cursor that cannot be trusted must raise the typed
:class:`~repro.atlas.connectors.CursorError` — never parse into a
half-valid resume point that skips or duplicates data.  This file walks
the whole corruption matrix (truncation at every depth, bit flips,
foreign magic, stale versions, trailing garbage, mistyped payloads,
foreign windows) and proves the fetcher restarts cleanly afterwards.
"""

import struct

import pytest

from repro.atlas.connectors import (
    CURSOR_VERSION,
    CursorError,
    FetchCursor,
    cursor_key,
    load_cursor,
    save_cursor,
)
from repro.atlas.connectors.cursors import MAGIC, _HEADER


def sample_cursor() -> FetchCursor:
    """A representative mid-pagination cursor."""
    return FetchCursor(
        key="https://atlas.example/api/v2/measurements/7/results/?x=1",
        next_url="https://atlas.example/api/v2/.../?page=3",
        pages_fetched=2,
        records_written=951,
        output_bytes=180224,
        completed=False,
    )


class TestRoundTrip:
    def test_save_then_load_is_identity(self, tmp_path):
        path = tmp_path / "fetch.cursor"
        cursor = sample_cursor()
        written = save_cursor(path, cursor)
        assert written == path.stat().st_size
        assert load_cursor(path) == cursor

    def test_save_is_atomic_no_temp_left_behind(self, tmp_path):
        path = tmp_path / "fetch.cursor"
        save_cursor(path, sample_cursor())
        save_cursor(path, sample_cursor())  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["fetch.cursor"]

    def test_expected_key_accepts_matching_window(self, tmp_path):
        path = tmp_path / "fetch.cursor"
        cursor = sample_cursor()
        save_cursor(path, cursor)
        assert load_cursor(path, expected_key=cursor.key) == cursor

    def test_cursor_key_is_canonical(self):
        a = cursor_key("ep", b=2, a=1)
        b = cursor_key("ep", a=1, b=2)
        assert a == b == "ep?a=1&b=2"
        assert cursor_key("ep") == "ep"
        assert cursor_key("ep", stop=100) != cursor_key("ep", stop=200)


class TestCorruptionMatrix:
    """Every damaged file raises CursorError with a telling message."""

    def saved(self, tmp_path):
        path = tmp_path / "fetch.cursor"
        save_cursor(path, sample_cursor())
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(CursorError, match="cannot read"):
            load_cursor(tmp_path / "absent.cursor")

    def test_truncated_at_every_boundary(self, tmp_path):
        # Cut the file at every prefix length: header-level cuts and
        # payload-level cuts must all be rejected (length 0 included).
        path = self.saved(tmp_path)
        raw = path.read_bytes()
        for cut in range(len(raw)):
            path.write_bytes(raw[:cut])
            with pytest.raises(CursorError):
                load_cursor(path)

    def test_single_bit_flip_anywhere_is_detected(self, tmp_path):
        path = self.saved(tmp_path)
        raw = bytearray(path.read_bytes())
        for offset in range(len(raw)):
            flipped = bytearray(raw)
            flipped[offset] ^= 0x01
            path.write_bytes(bytes(flipped))
            with pytest.raises(CursorError):
                load_cursor(path)

    def test_foreign_magic(self, tmp_path):
        path = self.saved(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(b"RPROBINC" + raw[len(MAGIC):])
        with pytest.raises(CursorError, match="bad magic"):
            load_cursor(path)

    def test_stale_version(self, tmp_path):
        path = self.saved(tmp_path)
        raw = path.read_bytes()
        _, length, digest = _HEADER.unpack_from(raw, len(MAGIC))
        doctored = (
            MAGIC
            + _HEADER.pack(CURSOR_VERSION + 1, length, digest)
            + raw[len(MAGIC) + _HEADER.size:]
        )
        path.write_bytes(doctored)
        with pytest.raises(CursorError, match="version"):
            load_cursor(path)

    def test_trailing_bytes(self, tmp_path):
        path = self.saved(tmp_path)
        path.write_bytes(path.read_bytes() + b"\x00garbage")
        with pytest.raises(CursorError, match="trailing bytes"):
            load_cursor(path)

    def test_digest_over_wrong_payload(self, tmp_path):
        # Swap in a *valid JSON* payload without re-digesting: the
        # digest check must catch semantic tampering, not just noise.
        path = self.saved(tmp_path)
        raw = path.read_bytes()
        _, length, digest = _HEADER.unpack_from(raw, len(MAGIC))
        payload = bytearray(raw[len(MAGIC) + _HEADER.size:])
        assert b"951" in payload
        tampered = bytes(payload).replace(b"951", b"159")
        path.write_bytes(
            MAGIC + _HEADER.pack(CURSOR_VERSION, len(tampered), digest)
            + tampered
        )
        with pytest.raises(CursorError, match="digest mismatch"):
            load_cursor(path)

    def test_not_even_a_struct(self, tmp_path):
        path = tmp_path / "fetch.cursor"
        path.write_bytes(b"{}")  # shorter than the header
        with pytest.raises(CursorError, match="truncated"):
            load_cursor(path)

    def rewrap(self, path, payload: bytes) -> None:
        """Write *payload* with a correct header and digest around it."""
        import hashlib

        digest = hashlib.blake2b(payload, digest_size=16).digest()
        path.write_bytes(
            MAGIC + _HEADER.pack(CURSOR_VERSION, len(payload), digest)
            + payload
        )

    def test_undecodable_payload(self, tmp_path):
        path = tmp_path / "fetch.cursor"
        self.rewrap(path, b"\xff\xfe not json")
        with pytest.raises(CursorError, match="undecodable"):
            load_cursor(path)

    def test_wrong_field_set(self, tmp_path):
        path = tmp_path / "fetch.cursor"
        self.rewrap(path, b'{"key": "x", "bogus": 1}')
        with pytest.raises(CursorError, match="wrong fields"):
            load_cursor(path)

    def test_mistyped_field(self, tmp_path):
        path = tmp_path / "fetch.cursor"
        self.rewrap(
            path,
            b'{"key": "x", "next_url": "", "pages_fetched": "2", '
            b'"records_written": 0, "output_bytes": 0, "completed": false}',
        )
        with pytest.raises(CursorError, match="pages_fetched"):
            load_cursor(path)

    def test_bool_int_confusion_rejected(self, tmp_path):
        # bool is an int subclass in Python; the loader must still
        # reject `completed: 1` and `pages_fetched: true`.
        path = tmp_path / "fetch.cursor"
        self.rewrap(
            path,
            b'{"key": "x", "next_url": "", "pages_fetched": true, '
            b'"records_written": 0, "output_bytes": 0, "completed": false}',
        )
        with pytest.raises(CursorError, match="pages_fetched"):
            load_cursor(path)
        self.rewrap(
            path,
            b'{"key": "x", "next_url": "", "pages_fetched": 0, '
            b'"records_written": 0, "output_bytes": 0, "completed": 1}',
        )
        with pytest.raises(CursorError, match="completed"):
            load_cursor(path)

    def test_negative_counter_rejected(self, tmp_path):
        path = tmp_path / "fetch.cursor"
        self.rewrap(
            path,
            b'{"key": "x", "next_url": "", "pages_fetched": 0, '
            b'"records_written": 0, "output_bytes": -1, "completed": false}',
        )
        with pytest.raises(CursorError, match="negative"):
            load_cursor(path)

    def test_foreign_window_rejected(self, tmp_path):
        path = self.saved(tmp_path)
        with pytest.raises(CursorError, match="different window"):
            load_cursor(path, expected_key="some-other-window")

    def test_header_struct_is_stable(self):
        # The on-disk layout is part of the format contract: version
        # (u32), payload length (u64), BLAKE2b-128 digest, all LE.
        assert _HEADER.size == struct.calcsize("<IQ16s")
        assert len(MAGIC) == 8
