"""Tests for stage accounting, span tracing, and stage-name coherence."""

import json

import pytest

from repro.cli import main
from repro.obs.tracing import (
    NULL_TIMER,
    NULL_TRACER,
    STAGE_NAMES,
    StageAccumulator,
    Tracer,
    stage_order,
)


class TestStageNames:
    def test_canonical_order(self):
        assert STAGE_NAMES == (
            "decode", "bin", "extract", "detect", "store", "compact"
        )

    def test_profiling_shim_is_the_same_object(self):
        """core.profiling must re-export, not redefine, the stage list."""
        from repro.core import profiling

        assert profiling.STAGES is STAGE_NAMES
        assert profiling.StageTimer is StageAccumulator
        assert profiling.NULL_TIMER is NULL_TIMER

    def test_stage_order_known_first_extras_sorted(self):
        assert stage_order(["store", "decode", "zz", "aa"]) == [
            "decode", "store", "aa", "zz"
        ]


class TestStageAccumulator:
    def test_stage_context_charges_time_and_calls(self):
        acc = StageAccumulator()
        with acc.stage("detect"):
            pass
        timings = acc.timings()
        assert timings["detect"]["calls"] == 1
        assert timings["detect"]["seconds"] >= 0.0

    def test_add_and_merge(self):
        worker = StageAccumulator()
        worker.add("extract", 0.25, calls=3)
        parent = StageAccumulator()
        parent.add("extract", 0.5)
        parent.merge(worker.timings())
        entry = parent.timings()["extract"]
        assert entry == {"calls": 4, "seconds": 0.75}

    def test_timings_canonically_ordered(self):
        acc = StageAccumulator()
        for name in ("store", "custom", "decode"):
            acc.add(name, 0.1)
        assert list(acc.timings()) == ["decode", "store", "custom"]

    def test_reset(self):
        acc = StageAccumulator()
        acc.add("bin", 1.0)
        acc.reset()
        assert acc.timings() == {}

    def test_disabled_accumulator_records_nothing(self):
        acc = StageAccumulator(enabled=False)
        with acc.stage("detect"):
            pass
        acc.add("bin", 1.0)
        assert acc.timings() == {}
        assert NULL_TIMER.timings() == {}


class TestTracer:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("work", args={"n": 3}):
            pass
        [event] = tracer.events()
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["args"] == {"n": 3}
        assert event["dur"] >= 0.0

    def test_add_span_lays_explicit_timeline(self):
        tracer = Tracer()
        start = tracer.now()
        tracer.add_span("shard-1", start, 0.002, tid=2)
        tracer.add_span("shard-0", start, 0.004, tid=1)
        events = tracer.events()
        # Same ts: longer span first, then tid breaks the tie.
        assert [e["name"] for e in events] == ["shard-0", "shard-1"]

    def test_export_order_is_deterministic(self):
        tracer = Tracer()
        start = tracer.now()
        for tid in (3, 1, 2):
            tracer.add_span(f"s{tid}", start, 0.001, tid=tid)
        assert tracer.events() == tracer.events()
        assert [e["tid"] for e in tracer.events()] == [1, 2, 3]

    def test_to_chrome_document_shape(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        doc = tracer.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 1

    def test_write_is_loadable_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["name"] == "x"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            pass
        tracer.add_span("y", 0.0, 1.0)
        assert tracer.events() == []
        assert NULL_TRACER.events() == []


@pytest.fixture(scope="module")
def campaign_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs-cli") / "campaign.jsonl"
    assert main(
        [
            "generate", "--hours", "3", "--seed", "3", "--probes", "12",
            "--no-anchoring", "--out", str(path),
        ]
    ) == 0
    return path


class TestTimingsSchemaCoherence:
    """Regression: every stage-keyed CLI surface spells stages the same."""

    def _timings_record(self, err: str) -> dict:
        record = json.loads(err.strip().splitlines()[-1])
        assert record["schema"] == "timings/v1"
        return record["timings"]

    def test_analyze_timings_stages_are_canonical(
        self, campaign_path, capsys
    ):
        assert main(
            ["analyze", str(campaign_path), "--seed", "3", "--probes", "12",
             "--json", "--timings"]
        ) == 0
        captured = capsys.readouterr()
        timings = self._timings_record(captured.err)
        assert timings  # something was recorded
        assert set(timings) <= set(STAGE_NAMES)
        for entry in timings.values():
            assert set(entry) == {"calls", "seconds"}

    def test_monitor_json_stages_are_canonical(self, campaign_path, capsys):
        assert main(["monitor", str(campaign_path), "--json"]) == 0
        captured = capsys.readouterr()
        timings = self._timings_record(captured.err)
        assert timings
        assert set(timings) <= set(STAGE_NAMES)

    def test_monitor_and_analyze_agree_on_shared_stage_names(
        self, campaign_path, capsys
    ):
        assert main(
            ["analyze", str(campaign_path), "--seed", "3", "--probes", "12",
             "--json", "--timings"]
        ) == 0
        analyze_stages = set(self._timings_record(capsys.readouterr().err))
        assert main(["monitor", str(campaign_path), "--json"]) == 0
        monitor_stages = set(self._timings_record(capsys.readouterr().err))
        shared = analyze_stages & monitor_stages
        assert "decode" in shared and "detect" in shared

    def test_analyze_trace_spans_use_canonical_stage_names(
        self, campaign_path, tmp_path, capsys
    ):
        trace = tmp_path / "trace.json"
        assert main(
            ["analyze", str(campaign_path), "--seed", "3", "--probes", "12",
             "--shards", "2", "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        events = json.loads(trace.read_text())["traceEvents"]
        names = {e["name"] for e in events}
        assert "campaign" in names
        stage_names = {
            n for n in names
            if n != "campaign" and not n.startswith("shard-")
        }
        assert stage_names <= set(STAGE_NAMES)
        # Shard spans ride their own tracks; the coordinator is tid 0.
        assert {e["tid"] for e in events if e["name"].startswith("shard-")} \
            == {1, 2}
