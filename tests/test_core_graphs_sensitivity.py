"""Tests for alarm graphs (Fig. 8/12) and sensitivity analysis (App. B)."""

import pytest

from repro.core import (
    DelayAlarm,
    ForwardingAlarm,
    alarm_graph,
    component_of,
    components_by_size,
    sensitivity_point,
    sensitivity_table,
    summarize_component,
)
from repro.atlas import ANCHORING, BUILTIN
from repro.stats import WilsonInterval


def _delay_alarm(near, far, deviation=5.0, shift=10.0):
    return DelayAlarm(
        timestamp=0,
        link=(near, far),
        observed=WilsonInterval(5.0 + shift, 4.5 + shift, 5.5 + shift, 50),
        reference=WilsonInterval(5.0, 4.5, 5.5, 50),
        deviation=deviation,
        direction=1,
        n_probes=10,
        n_asns=3,
    )


def _fwd_alarm(router, responsibilities):
    return ForwardingAlarm(
        timestamp=0,
        router_ip=router,
        destination="d",
        correlation=-0.5,
        responsibilities=responsibilities,
        pattern={},
        reference={},
    )


class TestAlarmGraph:
    def test_edges_from_delay_alarms(self):
        graph = alarm_graph([_delay_alarm("A", "B"), _delay_alarm("B", "C")])
        assert set(graph.nodes) == {"A", "B", "C"}
        assert graph.number_of_edges() == 2
        assert graph["A"]["B"]["median_shift_ms"] == pytest.approx(10.0)

    def test_duplicate_link_keeps_max_deviation(self):
        graph = alarm_graph(
            [_delay_alarm("A", "B", deviation=2.0), _delay_alarm("A", "B", deviation=9.0)]
        )
        assert graph["A"]["B"]["deviation"] == 9.0

    def test_forwarding_flags(self):
        graph = alarm_graph(
            [_delay_alarm("A", "B")],
            [_fwd_alarm("A", {"X": -0.5, "*": 0.2})],
        )
        assert graph.nodes["A"]["in_forwarding_alarm"]
        assert not graph.nodes["B"]["in_forwarding_alarm"]

    def test_component_extraction(self):
        graph = alarm_graph(
            [
                _delay_alarm("A", "B"),
                _delay_alarm("B", "C"),
                _delay_alarm("X", "Y"),  # disjoint component
            ]
        )
        component = component_of(graph, "A")
        assert set(component.nodes) == {"A", "B", "C"}
        assert component_of(graph, "missing").number_of_nodes() == 0

    def test_components_by_size(self):
        graph = alarm_graph(
            [
                _delay_alarm("A", "B"),
                _delay_alarm("B", "C"),
                _delay_alarm("X", "Y"),
            ]
        )
        components = components_by_size(graph)
        assert [c.number_of_nodes() for c in components] == [3, 2]

    def test_summary(self):
        graph = alarm_graph(
            [_delay_alarm("A", "B", shift=15.0), _delay_alarm("B", "193.0.14.129")],
            [_fwd_alarm("B", {"A": -0.3})],
        )
        component = component_of(graph, "193.0.14.129")
        summary = summarize_component(component, anycast_ips=["193.0.14.129"])
        assert summary.n_nodes == 3
        assert summary.n_edges == 2
        assert summary.anycast_ips == ("193.0.14.129",)
        assert summary.max_median_shift_ms == pytest.approx(15.0)
        assert summary.n_forwarding_flagged >= 2  # B flagged + A flagged
        assert not summary.is_empty

    def test_empty_summary(self):
        import networkx as nx

        summary = summarize_component(nx.Graph())
        assert summary.is_empty
        assert summary.max_median_shift_ms == 0.0


class TestSensitivity:
    def test_paper_headline_builtin(self):
        """Builtin, 3 probes, 1h bin -> 33 minutes (paper §4.4)."""
        point = sensitivity_point(BUILTIN, n_probes=3, bin_s=3600)
        assert point.shortest_event_min == pytest.approx(33.33, abs=0.1)

    def test_paper_headline_anchoring(self):
        """Anchoring at its minimum bin -> ~9 minutes (paper §4.4)."""
        point = sensitivity_point(ANCHORING, n_probes=3, bin_s=900)
        assert point.shortest_event_min == pytest.approx(9.17, abs=0.2)

    def test_more_probes_smaller_events(self):
        few = sensitivity_point(BUILTIN, n_probes=3, bin_s=3600)
        many = sensitivity_point(BUILTIN, n_probes=30, bin_s=3600)
        assert many.shortest_event_s < few.shortest_event_s
        # The T/2 term dominates: detection can't go below half a bin.
        assert many.shortest_event_s > 1800

    def test_bin_below_minimum_rejected(self):
        with pytest.raises(ValueError):
            sensitivity_point(BUILTIN, n_probes=3, bin_s=600)

    def test_table_contains_both_specs(self):
        table = sensitivity_table()
        specs = {point.spec_name for point in table}
        assert specs == {"builtin", "anchoring"}
        assert any(
            point.spec_name == "anchoring" and point.bin_s == 900
            for point in table
        )
        for point in table:
            assert point.shortest_event_s > 0
            assert point.min_usable_bin_s <= point.bin_s
