"""Documentation lint, enforced in tier-1.

Every module under ``src/repro`` must carry a module docstring, and
every public module-level class/function must be documented — the same
check ``make docs`` / ``tools/doclint.py`` runs, imported here so the
test suite fails fast when an undocumented module lands.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_doclint():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import doclint
    finally:
        sys.path.pop(0)
    return doclint


def test_every_module_documented():
    doclint = _load_doclint()
    problems = doclint.lint_tree(REPO_ROOT / "src" / "repro")
    assert problems == [], "\n".join(problems)


def test_doclint_detects_missing_docstrings(tmp_path):
    doclint = _load_doclint()
    bad = tmp_path / "bad.py"
    bad.write_text("def public():\n    pass\n")
    problems = doclint.lint_file(bad)
    assert len(problems) == 2  # module + function
    good = tmp_path / "good.py"
    good.write_text('"""Doc."""\n\ndef public():\n    """Doc."""\n')
    assert doclint.lint_file(good) == []
