"""Tests for AS-level aggregation and the Eq. 10 magnitude (paper §6)."""

import numpy as np
import pytest

from repro.core import AlarmAggregator, DelayAlarm, ForwardingAlarm
from repro.core.alarms import UNRESPONSIVE
from repro.core.events import AsTimeSeries
from repro.net import AsMapper
from repro.stats import WilsonInterval


@pytest.fixture
def mapper():
    return AsMapper(
        [
            ("10.1.0.0", 16, 3356),
            ("10.2.0.0", 16, 3549),
            ("10.3.0.0", 16, 25152),
        ]
    )


def _delay_alarm(ts, near, far, deviation):
    return DelayAlarm(
        timestamp=ts,
        link=(near, far),
        observed=WilsonInterval(10.0, 9.5, 10.5, 50),
        reference=WilsonInterval(5.0, 4.8, 5.2, 50),
        deviation=deviation,
        direction=1,
        n_probes=10,
        n_asns=4,
    )


def _fwd_alarm(ts, router, responsibilities):
    return ForwardingAlarm(
        timestamp=ts,
        router_ip=router,
        destination="dst",
        correlation=-0.7,
        responsibilities=responsibilities,
        pattern={},
        reference={},
    )


class TestAsTimeSeries:
    def test_accumulates_into_bins(self):
        series = AsTimeSeries(asn=1, bin_s=3600, start=0)
        series.add(100, 2.0)
        series.add(200, 3.0)
        series.add(3700, 1.0)
        assert series.values == [5.0, 1.0]
        assert series.timestamps() == [0, 3600]

    def test_pad_to(self):
        series = AsTimeSeries(asn=1, bin_s=3600, start=0)
        series.add(0, 1.0)
        series.pad_to(3 * 3600)
        assert series.values == [1.0, 0.0, 0.0, 0.0]

    def test_rejects_pre_start_timestamps(self):
        series = AsTimeSeries(asn=1, bin_s=3600, start=7200)
        with pytest.raises(ValueError):
            series.add(0, 1.0)

    def test_magnitudes_flag_spike(self):
        series = AsTimeSeries(asn=1, bin_s=3600, start=0)
        for hour in range(100):
            series.add(hour * 3600, 0.0)
        series.add(100 * 3600, 500.0)
        magnitudes = series.magnitudes(window_bins=50)
        assert np.argmax(magnitudes) == 100
        assert magnitudes[100] > 100


class TestDelayAggregation:
    def test_same_as_link_single_group(self, mapper):
        agg = AlarmAggregator(mapper)
        asns = agg.add_delay_alarm(_delay_alarm(0, "10.1.0.1", "10.1.0.2", 7.0))
        assert asns == [3356]
        assert agg.delay_series[3356].values == [7.0]

    def test_cross_as_link_credited_to_both(self, mapper):
        """§6: alarms with IPs from different ASes go to multiple groups."""
        agg = AlarmAggregator(mapper)
        asns = agg.add_delay_alarm(_delay_alarm(0, "10.1.0.1", "10.2.0.1", 4.0))
        assert set(asns) == {3356, 3549}
        assert agg.delay_series[3356].values == [4.0]
        assert agg.delay_series[3549].values == [4.0]

    def test_deviations_sum_within_bin(self, mapper):
        agg = AlarmAggregator(mapper)
        agg.add_delay_alarm(_delay_alarm(0, "10.1.0.1", "10.1.0.2", 4.0))
        agg.add_delay_alarm(_delay_alarm(100, "10.1.0.3", "10.1.0.4", 6.0))
        assert agg.delay_series[3356].values == [10.0]

    def test_unmapped_ips_dropped(self, mapper):
        agg = AlarmAggregator(mapper)
        asns = agg.add_delay_alarm(_delay_alarm(0, "8.8.8.8", "9.9.9.9", 4.0))
        assert asns == []
        assert agg.delay_series == {}


class TestForwardingAggregation:
    def test_responsibilities_credited_per_hop_as(self, mapper):
        agg = AlarmAggregator(mapper)
        alarm = _fwd_alarm(
            0, "10.1.0.1", {"10.2.0.9": -0.4, "10.3.0.9": 0.3, UNRESPONSIVE: 0.1}
        )
        asns = agg.add_forwarding_alarm(alarm)
        assert set(asns) == {3549, 25152}
        assert agg.forwarding_series[3549].values == [-0.4]
        assert agg.forwarding_series[25152].values == [0.3]

    def test_intra_as_reroute_cancels(self, mapper):
        """§6: devalued + new hop in the same AS cancel out."""
        agg = AlarmAggregator(mapper)
        alarm = _fwd_alarm(0, "10.1.0.1", {"10.2.0.1": -0.4, "10.2.0.2": 0.4})
        agg.add_forwarding_alarm(alarm)
        assert agg.forwarding_series[3549].values == [0.0]

    def test_unresponsive_bucket_not_mapped(self, mapper):
        agg = AlarmAggregator(mapper)
        alarm = _fwd_alarm(0, "10.1.0.1", {UNRESPONSIVE: 0.9})
        assert agg.add_forwarding_alarm(alarm) == []

    def test_zero_responsibility_skipped(self, mapper):
        agg = AlarmAggregator(mapper)
        alarm = _fwd_alarm(0, "10.1.0.1", {"10.2.0.9": 0.0})
        assert agg.add_forwarding_alarm(alarm) == []


class TestMagnitudesAndEvents:
    def _populated(self, mapper):
        agg = AlarmAggregator(mapper, bin_s=3600, start=0)
        # Quiet background with occasional small alarms...
        for hour in range(0, 300):
            if hour % 13 == 0:
                agg.add_delay_alarm(
                    _delay_alarm(hour * 3600, "10.1.0.1", "10.1.0.2", 0.5)
                )
        # ... and one massive two-hour event.
        for hour in (200, 201):
            for _ in range(20):
                agg.add_delay_alarm(
                    _delay_alarm(hour * 3600, "10.1.0.1", "10.1.0.2", 30.0)
                )
        return agg

    def test_detect_events_finds_the_spike(self, mapper):
        agg = self._populated(mapper)
        events = agg.detect_events("delay", threshold=10.0)
        assert events
        hours = {e.timestamp // 3600 for e in events}
        assert hours == {200, 201}
        assert all(e.asn == 3356 for e in events)
        assert all(e.magnitude > 10 for e in events)

    def test_all_magnitude_values_pools_ases(self, mapper):
        agg = self._populated(mapper)
        agg.add_delay_alarm(_delay_alarm(100 * 3600, "10.2.0.1", "10.2.0.2", 1.0))
        pooled = agg.all_magnitude_values("delay")
        per_as = agg.delay_magnitudes()
        assert len(pooled) == sum(len(v) for v in per_as.values())

    def test_negative_forwarding_event(self, mapper):
        agg = AlarmAggregator(mapper, bin_s=3600, start=0)
        for hour in range(200):
            agg.add_forwarding_alarm(
                _fwd_alarm(hour * 3600, "r", {"10.1.0.9": -0.01})
            )
        for _ in range(50):
            agg.add_forwarding_alarm(
                _fwd_alarm(150 * 3600, "r", {"10.1.0.9": -0.8})
            )
        events = agg.detect_events("forwarding", threshold=5.0)
        assert events
        assert events[0].timestamp // 3600 == 150
        assert events[0].magnitude < 0

    def test_detect_events_validation(self, mapper):
        agg = AlarmAggregator(mapper)
        with pytest.raises(ValueError):
            agg.detect_events("delay", threshold=0.0)
        with pytest.raises(ValueError):
            agg.detect_events("nonsense", threshold=1.0)
        with pytest.raises(ValueError):
            agg.all_magnitude_values("nonsense")

    def test_empty_aggregator(self, mapper):
        agg = AlarmAggregator(mapper)
        assert agg.delay_magnitudes() == {}
        assert len(agg.all_magnitude_values("delay")) == 0
        assert agg.detect_events("delay", threshold=1.0) == []

    def test_constructor_validation(self, mapper):
        with pytest.raises(ValueError):
            AlarmAggregator(mapper, bin_s=0)
