"""Tests for the metrics primitives (repro.obs.metrics)."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricError,
    MetricsRegistry,
    default_registry,
    exponential_buckets,
    set_default_registry,
)


class TestExponentialBuckets:
    def test_bounds_multiply(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_rejects_degenerate_parameters(self):
        for start, factor, count in [(0, 2, 3), (-1, 2, 3), (1, 1, 3), (1, 2, 0)]:
            with pytest.raises(MetricError):
                exponential_buckets(start, factor, count)

    def test_default_latency_buckets_cover_service_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_LATENCY_BUCKETS[-1] > 20.0


class TestCounter:
    def test_increments_and_snapshots(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        [family] = registry.collect()
        [child] = family.children
        assert child.value == 3.5
        assert family.type == "counter"

    def test_labeled_children_are_interned(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("kind",))
        assert counter.labels("a") is counter.labels("a")
        counter.labels("a").inc()
        counter.labels("b").inc(4)
        [family] = registry.collect()
        values = {c.labelvalues: c.value for c in family.children}
        assert values == {("a",): 1.0, ("b",): 4.0}

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("c_total", "help")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_labeled_family_rejects_bare_use(self):
        counter = MetricsRegistry().counter("c_total", "help", ("kind",))
        with pytest.raises(MetricError):
            counter.inc()

    def test_wrong_label_count_rejected(self):
        counter = MetricsRegistry().counter("c_total", "help", ("a", "b"))
        with pytest.raises(MetricError):
            counter.labels("only-one")


class TestGauge:
    def test_up_down_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "help")
        gauge.inc(3)
        gauge.dec()
        gauge.set(10.5)
        [family] = registry.collect()
        assert family.children[0].value == 10.5


class TestHistogram:
    def test_cumulative_buckets_and_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "help", buckets=(1.0, 10.0))
        for value in (0.5, 0.9, 5.0, 100.0):
            hist.observe(value)
        [family] = registry.collect()
        [child] = family.children
        assert child.buckets == ((1.0, 2), (10.0, 3), (float("inf"), 4))
        assert child.count == 4
        assert child.sum == pytest.approx(106.4)

    def test_le_is_upper_inclusive(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "help", buckets=(1.0,))
        hist.observe(1.0)
        [family] = registry.collect()
        assert family.children[0].buckets[0] == (1.0, 1)

    def test_explicit_inf_bound_is_dropped(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "help", buckets=(1.0, float("inf")))
        assert hist.buckets == (1.0,)

    def test_non_increasing_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.histogram("h", "help", buckets=(2.0, 1.0))
        with pytest.raises(MetricError):
            registry.histogram("h2", "help", buckets=(1.0, 1.0))


class TestRegistry:
    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ("kind",))
        second = registry.counter("c_total", "other help", ("kind",))
        assert first is second

    def test_conflicting_reregistration_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", "help")
        with pytest.raises(MetricError):
            registry.gauge("m", "help")
        registry.counter("labeled", "help", ("a",))
        with pytest.raises(MetricError):
            registry.counter("labeled", "help", ("b",))
        registry.histogram("h", "help", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            registry.histogram("h", "help", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "9leading", "has space", "dash-ed"):
            with pytest.raises(MetricError):
                registry.counter(bad, "help")
        with pytest.raises(MetricError):
            registry.counter("ok", "help", ("bad-label",))

    def test_collect_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zzz", "help")
        registry.gauge("aaa", "help")
        assert [f.name for f in registry.collect()] == ["aaa", "zzz"]

    def test_children_sorted_by_label_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "help", ("kind",))
        for kind in ("z", "a", "m"):
            counter.labels(kind).inc()
        [family] = registry.collect()
        assert [c.labelvalues for c in family.children] == [("a",), ("m",), ("z",)]

    def test_concurrent_increments_do_not_lose_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("t",))
        child = counter.labels("x")

        def work():
            for _ in range(1000):
                child.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        [family] = registry.collect()
        assert family.children[0].value == 8000.0


class TestDisabledRegistry:
    def test_all_primitives_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total", "help", ("kind",))
        counter.labels("a").inc()
        gauge = registry.gauge("g", "help")
        gauge.inc()
        gauge.set(5)
        hist = registry.histogram("h", "help")
        hist.observe(1.0)
        assert registry.collect() == []

    def test_disabled_children_are_shared(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total", "help", ("kind",))
        assert counter.labels("a") is counter.labels("b")


class TestDefaultRegistry:
    def test_swap_returns_previous(self):
        original = default_registry()
        replacement = MetricsRegistry()
        try:
            assert set_default_registry(replacement) is original
            assert default_registry() is replacement
        finally:
            set_default_registry(original)
        assert default_registry() is original
