"""Unit and property tests for repro.net.addr."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (
    MAX_IPV4,
    int_to_ip,
    ip_in_prefix,
    ip_to_int,
    is_valid_ipv4,
    prefix_netmask,
    prefix_size,
)


class TestIsValidIpv4:
    def test_accepts_standard_addresses(self):
        assert is_valid_ipv4("0.0.0.0")
        assert is_valid_ipv4("255.255.255.255")
        assert is_valid_ipv4("193.0.14.129")

    def test_rejects_out_of_range_octet(self):
        assert not is_valid_ipv4("256.0.0.1")
        assert not is_valid_ipv4("1.2.3.300")

    def test_rejects_wrong_arity(self):
        assert not is_valid_ipv4("1.2.3")
        assert not is_valid_ipv4("1.2.3.4.5")
        assert not is_valid_ipv4("")

    def test_rejects_non_numeric(self):
        assert not is_valid_ipv4("a.b.c.d")
        assert not is_valid_ipv4("1.2.3.x")
        assert not is_valid_ipv4("1.2.-3.4")

    def test_rejects_leading_zeros(self):
        assert not is_valid_ipv4("01.2.3.4")
        assert not is_valid_ipv4("1.2.3.04")

    def test_accepts_single_zero_octets(self):
        assert is_valid_ipv4("0.0.0.0")
        assert is_valid_ipv4("10.0.0.1")


class TestConversions:
    def test_known_values(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("0.0.0.1") == 1
        assert ip_to_int("1.0.0.0") == 1 << 24
        assert ip_to_int("255.255.255.255") == MAX_IPV4

    def test_int_to_ip_known_values(self):
        assert int_to_ip(0) == "0.0.0.0"
        assert int_to_ip(MAX_IPV4) == "255.255.255.255"
        assert int_to_ip(3238006401) == "193.0.14.129"

    def test_ip_to_int_rejects_invalid(self):
        with pytest.raises(ValueError):
            ip_to_int("999.0.0.1")

    def test_int_to_ip_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(MAX_IPV4 + 1)

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_roundtrip_int_ip_int(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_int_to_ip_always_valid(self, value):
        assert is_valid_ipv4(int_to_ip(value))


class TestPrefixHelpers:
    def test_netmask_boundaries(self):
        assert prefix_netmask(0) == 0
        assert prefix_netmask(32) == MAX_IPV4
        assert prefix_netmask(24) == 0xFFFFFF00

    def test_netmask_rejects_bad_length(self):
        with pytest.raises(ValueError):
            prefix_netmask(33)
        with pytest.raises(ValueError):
            prefix_netmask(-1)

    def test_prefix_size(self):
        assert prefix_size(32) == 1
        assert prefix_size(24) == 256
        assert prefix_size(0) == 2**32

    def test_prefix_size_rejects_bad_length(self):
        with pytest.raises(ValueError):
            prefix_size(40)

    @given(st.integers(min_value=0, max_value=32))
    def test_netmask_has_length_leading_ones(self, length):
        mask = prefix_netmask(length)
        assert bin(mask).count("1") == length
        # All set bits must be contiguous from the top.
        assert (mask | (mask >> 1)) & MAX_IPV4 in (mask, mask | (mask >> 1))

    def test_ip_in_prefix(self):
        assert ip_in_prefix("10.1.2.3", "10.1.2.0", 24)
        assert not ip_in_prefix("10.1.3.3", "10.1.2.0", 24)
        assert ip_in_prefix("8.8.8.8", "0.0.0.0", 0)

    def test_ip_in_prefix_masks_host_bits(self):
        # Network given with host bits set still matches its covered range.
        assert ip_in_prefix("10.1.2.3", "10.1.2.99", 24)

    @given(
        st.integers(min_value=0, max_value=MAX_IPV4),
        st.integers(min_value=0, max_value=32),
    )
    def test_every_ip_is_in_its_own_prefix(self, value, length):
        ip = int_to_ip(value)
        assert ip_in_prefix(ip, ip, length)
