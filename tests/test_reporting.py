"""Tests for the reporting layer (render + IHR API)."""

import json

import numpy as np
import pytest

from repro.atlas import make_traceroute
from repro.core import analyze_campaign
from repro.net import AsMapper
from repro.reporting import (
    InternetHealthReport,
    format_table,
    render_cdf,
    render_qq,
    render_series,
    sparkline,
)


class TestSparkline:
    def test_monotone(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "█"

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_downsampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_no_downsampling_if_short(self):
        assert len(sparkline([1, 2], width=10)) == 2


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]
        # all rows align on the second column
        assert lines[2].index("1") == lines[3].index("2")

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestRenderers:
    def test_render_series(self):
        out = render_series([0, 3600, 7200], [1.0, 5.0, 2.0], title="t")
        assert "t" in out
        assert "max=5.00" in out
        assert "hours 0..2" in out

    def test_render_series_empty(self):
        assert "(empty)" in render_series([], [], title="x")

    def test_render_cdf(self):
        out = render_cdf(list(range(1000)), title="dist")
        assert "dist" in out and "0.500" in out

    def test_render_qq(self):
        rng = np.random.default_rng(1)
        from repro.stats import normal_qq

        theo, obs = normal_qq(rng.normal(size=200))
        out = render_qq(theo, obs)
        assert "residual" in out

    def test_render_qq_validates(self):
        with pytest.raises(ValueError):
            render_qq([1.0], [1.0, 2.0])


def _campaign_with_event():
    """Tiny synthetic campaign: stable link, then a 2-bin delay event."""
    rng = np.random.default_rng(0)
    traceroutes = []
    for hour in range(12):
        shift = 20.0 if hour in (8, 9) else 0.0
        for probe in range(9):
            asn = 65001 + probe % 3
            base = 10.0 + probe
            noise = rng.normal(0, 0.1, size=2)
            traceroutes.append(
                make_traceroute(
                    probe,
                    f"s{probe}",
                    "dst",
                    hour * 3600,
                    [
                        [("10.1.0.1", base + noise[0])],
                        [("10.2.0.1", base + 5.0 + shift + noise[1])],
                    ],
                    from_asn=asn,
                )
            )
    mapper = AsMapper([("10.1.0.0", 16, 111), ("10.2.0.0", 16, 222)])
    return analyze_campaign(traceroutes, mapper)


class TestInternetHealthReport:
    @pytest.fixture(scope="class")
    def report(self):
        return InternetHealthReport(_campaign_with_event(), window_bins=6)

    def test_monitored_asns(self, report):
        assert set(report.monitored_asns()) == {111, 222}

    def test_as_condition_flags_event(self, report):
        condition = report.as_condition(111)
        assert condition.delay_alarm_count == 2
        assert condition.peak_delay_hour in (8, 9)
        assert condition.peak_delay_magnitude > 1
        assert not condition.healthy

    def test_unknown_as_is_healthy(self, report):
        condition = report.as_condition(99999)
        assert condition.healthy
        assert condition.delay_alarm_count == 0
        assert condition.peak_delay_hour is None

    def test_magnitude_series(self, report):
        timestamps, magnitudes = report.magnitude_series(111, "delay")
        assert len(timestamps) == len(magnitudes) == 12
        assert int(np.argmax(magnitudes)) in (8, 9)

    def test_magnitude_series_unknown(self, report):
        timestamps, magnitudes = report.magnitude_series(99999)
        assert timestamps == [] and magnitudes.size == 0

    def test_magnitude_series_validates_kind(self, report):
        with pytest.raises(ValueError):
            report.magnitude_series(111, "nonsense")

    def test_top_events(self, report):
        events = report.top_events("delay", threshold=1.0)
        assert events
        assert events[0].asn in (111, 222)
        assert events[0].timestamp // 3600 in (8, 9)

    def test_alarms_at(self, report):
        delay, forwarding = report.alarms_at(8 * 3600 + 120)
        assert len(delay) == 1
        assert forwarding == []
        delay_quiet, _ = report.alarms_at(2 * 3600)
        assert delay_quiet == []

    def test_alarms_involving(self, report):
        alarms = report.alarms_involving("10.2.0.1")
        assert len(alarms) == 2
        assert report.alarms_involving("8.8.8.8") == []

    def test_json_export(self, report):
        payload = json.loads(report.to_json())
        assert payload["monitored_asns"] == [111, 222]
        assert payload["stats"]["links_analyzed"] == 1
        assert len(payload["conditions"]) == 2
        assert payload["empty"] is False
        assert all("healthy" in c for c in payload["conditions"])

    # -- deterministic orderings (regression: ties must not depend on
    # dict insertion order) -------------------------------------------------

    def test_tied_events_ordered_by_asn_then_time(self, report):
        """AS 111 and 222 get identical magnitudes from the same link's
        alarms — ties must break by (ASN, timestamp), deterministically."""
        events = report.top_events("delay", threshold=1.0, limit=50)
        assert len(events) >= 2
        keys = [(-abs(e.magnitude), e.asn, e.timestamp) for e in events]
        assert keys == sorted(keys)
        top_two = {events[0], events[1]}
        assert {e.asn for e in top_two} == {111, 222}
        assert events[0].asn == 111  # the tie breaks toward the lower ASN

    def test_top_asns_ranking_and_ties(self, report):
        ranking = report.top_asns("delay", k=10)
        assert [asn for asn, _ in ranking] == [111, 222]
        assert ranking[0][1] == ranking[1][1]  # a genuine tie
        assert report.top_asns("delay", k=1) == ranking[:1]
        with pytest.raises(ValueError):
            report.top_asns("delay", k=-1)

    def test_links_of_groups_alarms(self, report):
        links = report.links_of(111)
        assert len(links) == 1
        summary = links[0]
        assert summary.link == ("10.1.0.1", "10.2.0.1")
        assert summary.alarm_count == 2
        assert summary.peak_deviation > 0
        assert summary.total_deviation >= summary.peak_deviation
        assert summary.last_timestamp // 3600 == 9
        assert report.links_of(99999) == []

    def test_events_in_window(self, report):
        everything = report.top_events("delay", threshold=1.0, limit=50)
        windowed = report.events_in(8 * 3600, 10 * 3600, "delay", 1.0)
        assert windowed
        assert all(
            8 * 3600 <= e.timestamp < 10 * 3600 for e in windowed
        )
        assert set(windowed) <= set(everything)
        assert report.events_in(0, 3600, "delay", 1.0) == []
        with pytest.raises(ValueError):
            report.events_in(10, 5, "delay", 1.0)


class TestEmptyCampaign:
    """No alarms must mean a healthy report, never an exception."""

    @pytest.fixture(scope="class")
    def empty_report(self):
        mapper = AsMapper([("10.1.0.0", 16, 111)])
        return InternetHealthReport(analyze_campaign([], mapper))

    def test_is_empty_and_monitored(self, empty_report):
        assert empty_report.is_empty
        assert empty_report.monitored_asns() == []

    def test_conditions_are_healthy(self, empty_report):
        condition = empty_report.as_condition(111)
        assert condition.healthy
        assert condition.delay_alarm_count == 0
        assert condition.peak_delay_hour is None

    def test_event_queries_are_empty(self, empty_report):
        assert empty_report.top_events("delay", threshold=1.0) == []
        assert empty_report.top_asns("forwarding") == []
        assert empty_report.events_in(0, 10**9, "delay", 1.0) == []
        assert empty_report.links_of(111) == []
        delay, forwarding = empty_report.alarms_at(0)
        assert delay == [] and forwarding == []
        assert empty_report.alarms_involving("10.1.0.1") == []

    def test_magnitude_series_empty(self, empty_report):
        timestamps, magnitudes = empty_report.magnitude_series(111)
        assert timestamps == [] and magnitudes.size == 0

    def test_json_is_explicit_healthy_report(self, empty_report):
        payload = json.loads(empty_report.to_json())
        assert payload["empty"] is True
        assert payload["monitored_asns"] == []
        assert payload["conditions"] == []

    def test_alarm_free_campaign_with_traffic(self):
        """Traceroutes but zero alarms is also an explicit healthy report."""
        from repro.atlas import make_traceroute

        traceroutes = [
            make_traceroute(
                probe, f"s{probe}", "dst", 0,
                [[("10.1.0.1", 10.0)], [("10.2.0.1", 15.0)]],
                from_asn=65001 + probe,
            )
            for probe in range(3)
        ]
        mapper = AsMapper([("10.1.0.0", 16, 111)])
        report = InternetHealthReport(analyze_campaign(traceroutes, mapper))
        assert report.is_empty
        assert report.monitored_asns() == []
        assert report.as_condition(111).healthy
