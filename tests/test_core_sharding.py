"""Tests for consistent shard assignment (`repro.core.sharding`)."""

import pytest

from repro.core.sharding import (
    partition_observations,
    partition_patterns,
    shard_layout,
    shard_of,
    stable_hash64,
)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash64("10.0.0.1") == stable_hash64("10.0.0.1")

    def test_distinct_inputs_differ(self):
        assert stable_hash64("10.0.0.1") != stable_hash64("10.0.0.2")

    def test_pinned_values(self):
        """Regression pins: assignments must never change between
        releases, or resumed campaigns would re-shard their state."""
        assert stable_hash64("10.0.0.1") == 0x75A4FEE35DD3BA4C
        assert stable_hash64("a|b") == 0x0D187ED6AE563ED7


class TestShardOf:
    def test_range_and_stability(self):
        links = [(f"10.0.{i}.1", f"10.0.{i}.2") for i in range(300)]
        for n_shards in (1, 2, 4, 8):
            first = [shard_of(link, n_shards) for link in links]
            second = [shard_of(link, n_shards) for link in links]
            assert first == second
            assert all(0 <= shard < n_shards for shard in first)

    def test_single_shard_is_zero(self):
        assert shard_of(("a", "b"), 1) == 0
        assert shard_of("router", 1) == 0

    def test_roughly_balanced(self):
        links = [(f"10.{i // 250}.{i % 250}.1", "x") for i in range(2000)]
        counts = [0] * 4
        for link in links:
            counts[shard_of(link, 4)] += 1
        assert min(counts) > 2000 / 4 * 0.7

    def test_string_and_tuple_keys_supported(self):
        assert isinstance(shard_of("192.0.2.1", 8), int)
        assert isinstance(shard_of(("192.0.2.1", "192.0.2.2"), 8), int)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_of("x", 0)


class TestPartitions:
    def test_observations_disjoint_and_complete(self):
        observations = {(f"a{i}", f"b{i}"): i for i in range(50)}
        parts = partition_observations(observations, 4)
        assert len(parts) == 4
        merged = {}
        for part in parts:
            assert not set(part) & set(merged)
            merged.update(part)
        assert merged == observations

    def test_patterns_sharded_by_router(self):
        """All of a router's models must land on the same shard, so
        router-level statistics merge by addition."""
        patterns = {
            (f"r{i % 7}", f"d{i}"): {"n": float(i)} for i in range(70)
        }
        parts = partition_patterns(patterns, 4)
        router_shard = {}
        for shard, part in enumerate(parts):
            for router, _ in part:
                assert router_shard.setdefault(router, shard) == shard
        assert sum(len(part) for part in parts) == len(patterns)


class TestShardLayout:
    def test_even_split(self):
        assert shard_layout(4, 2) == [[0, 1], [2, 3]]

    def test_uneven_split(self):
        assert shard_layout(5, 2) == [[0, 1, 2], [3, 4]]

    def test_more_jobs_than_shards(self):
        assert shard_layout(2, 8) == [[0], [1]]

    def test_all_shards_covered_once(self):
        for n_shards in (1, 3, 8, 13):
            for n_jobs in (1, 2, 5, 16):
                layout = shard_layout(n_shards, n_jobs)
                flat = [shard for worker in layout for shard in worker]
                assert sorted(flat) == list(range(n_shards))

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_layout(0, 1)
        with pytest.raises(ValueError):
            shard_layout(1, 0)
