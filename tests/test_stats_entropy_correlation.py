"""Tests for normalized entropy (§4.3) and Pearson correlation (§5.2.1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    align_patterns,
    entropy_after_discard,
    normalized_entropy,
    pearson_correlation,
)


class TestNormalizedEntropy:
    def test_uniform_is_one(self):
        assert normalized_entropy([10, 10, 10]) == pytest.approx(1.0)

    def test_single_class_is_zero(self):
        assert normalized_entropy([42]) == 0.0
        assert normalized_entropy({"AS1": 100, "AS2": 0}) == 0.0

    def test_concentration_lowers_entropy(self):
        balanced = normalized_entropy([50, 50])
        skewed = normalized_entropy([95, 5])
        assert skewed < balanced

    def test_paper_scenario_90_in_one_as(self):
        """100 probes in 5 ASes with 90 in one: low entropy (paper §4.3)."""
        counts = {"AS1": 90, "AS2": 3, "AS3": 3, "AS4": 2, "AS5": 2}
        assert normalized_entropy(counts) < 0.5

    def test_mapping_and_sequence_agree(self):
        assert normalized_entropy({"a": 3, "b": 7}) == normalized_entropy([3, 7])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            normalized_entropy([])
        with pytest.raises(ValueError):
            normalized_entropy([0, 0])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            normalized_entropy([5, -1])

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=30))
    def test_entropy_in_unit_interval(self, counts):
        assert 0.0 <= normalized_entropy(counts) <= 1.0 + 1e-12

    @settings(max_examples=50)
    @given(
        st.lists(st.integers(min_value=1, max_value=1000), min_size=2, max_size=20),
        st.integers(min_value=2, max_value=10),
    )
    def test_entropy_scale_invariant(self, counts, factor):
        scaled = [c * factor for c in counts]
        assert normalized_entropy(scaled) == pytest.approx(
            normalized_entropy(counts)
        )


class TestEntropyAfterDiscard:
    def test_removes_from_largest(self):
        counts = {"AS1": 5, "AS2": 2}
        assert entropy_after_discard(counts) == {"AS1": 4, "AS2": 2}

    def test_removes_empty_class(self):
        counts = {"AS1": 1}
        assert entropy_after_discard(counts) == {}

    def test_discard_loop_raises_entropy(self):
        """Iterating the discard raises H(A) above 0.5 eventually (§4.3)."""
        counts = {"AS1": 90, "AS2": 3, "AS3": 3, "AS4": 2, "AS5": 2}
        iterations = 0
        while normalized_entropy(counts) <= 0.5:
            counts = entropy_after_discard(counts)
            iterations += 1
            assert iterations < 100
        assert normalized_entropy(counts) > 0.5
        assert counts["AS1"] < 90

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            entropy_after_discard({})


class TestPearsonCorrelation:
    def test_perfect_positive(self):
        rho = pearson_correlation([1.0, 2.0, 3.0], [2.0, 4.0, 6.0])
        assert rho == pytest.approx(1.0)

    def test_perfect_negative(self):
        rho = pearson_correlation([1.0, 2.0, 3.0], [3.0, 2.0, 1.0])
        assert rho == pytest.approx(-1.0)

    def test_paper_figure4_example(self):
        """Fig. 4: F̄=[10,100,5] vs F=[12,2,60,30] gives ρ ≈ -0.6."""
        reference = {"A": 10.0, "B": 100.0, "Z": 5.0}
        current = {"A": 12.0, "B": 2.0, "C": 60.0, "Z": 30.0}
        rho = pearson_correlation(current, reference)
        assert rho < -0.25  # below the paper's τ threshold
        assert rho == pytest.approx(-0.6, abs=0.1)

    def test_mapping_alignment_with_missing_keys(self):
        rho = pearson_correlation({"a": 1.0, "b": 2.0}, {"b": 2.0, "c": 3.0})
        assert -1.0 <= rho <= 1.0

    def test_both_constant_is_one(self):
        assert pearson_correlation({"a": 10.0}, {"a": 12.0}) == 1.0
        assert pearson_correlation([5.0, 5.0], [3.0, 3.0]) == 1.0

    def test_one_constant_is_zero(self):
        assert pearson_correlation([1.0, 2.0], [3.0, 3.0]) == 0.0

    def test_mismatched_types_raise(self):
        with pytest.raises(TypeError):
            pearson_correlation({"a": 1.0}, [1.0])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0, 2.0], [1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([], [])

    def test_agrees_with_numpy_on_generic_data(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=100)
        y = 0.5 * x + rng.normal(size=100)
        ours = pearson_correlation(list(x), list(y))
        reference = float(np.corrcoef(x, y)[0, 1])
        assert ours == pytest.approx(reference, abs=1e-12)

    @settings(max_examples=50)
    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=50,
        )
    )
    def test_self_correlation_is_one_or_degenerate(self, xs):
        rho = pearson_correlation(xs, xs)
        assert rho == pytest.approx(1.0) or len(set(xs)) == 1

    @settings(max_examples=50)
    @given(
        st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=2, max_size=30),
        st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=2, max_size=30),
    )
    def test_symmetry_and_range(self, xs, ys):
        n = min(len(xs), len(ys))
        xs, ys = xs[:n], ys[:n]
        rho_xy = pearson_correlation(xs, ys)
        rho_yx = pearson_correlation(ys, xs)
        assert rho_xy == pytest.approx(rho_yx, abs=1e-9)
        assert -1.0 <= rho_xy <= 1.0


class TestAlignPatterns:
    def test_union_of_keys(self):
        cur, ref, keys = align_patterns({"a": 1.0}, {"b": 2.0})
        assert keys == ["a", "b"]
        assert list(cur) == [1.0, 0.0]
        assert list(ref) == [0.0, 2.0]

    def test_deterministic_order(self):
        _, _, keys1 = align_patterns({"b": 1.0, "a": 1.0}, {})
        _, _, keys2 = align_patterns({"a": 1.0, "b": 1.0}, {})
        assert keys1 == keys2 == ["a", "b"]
