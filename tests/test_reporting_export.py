"""Tests for CSV export of figure data."""

import csv

import networkx as nx
import pytest

from repro.core import alarm_graph, DelayAlarm
from repro.core.pipeline import TrackedLinkPoint
from repro.reporting import (
    write_alarm_graph,
    write_distribution,
    write_magnitude_series,
    write_tracked_link,
)
from repro.stats import WilsonInterval


def _read(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestMagnitudeSeries:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "mag.csv"
        rows = write_magnitude_series(path, [0, 3600], [1.5, -2.0])
        assert rows == 2
        data = _read(path)
        assert data[0] == ["timestamp", "magnitude"]
        assert data[1] == ["0", "1.500000"]
        assert data[2][1] == "-2.000000"

    def test_with_severity_column(self, tmp_path):
        path = tmp_path / "mag.csv"
        write_magnitude_series(path, [0], [1.0], values=[42.0])
        data = _read(path)
        assert data[0] == ["timestamp", "magnitude", "severity"]
        assert data[1][2] == "42.000000"

    def test_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_magnitude_series(tmp_path / "x.csv", [0, 1], [1.0])
        with pytest.raises(ValueError):
            write_magnitude_series(
                tmp_path / "x.csv", [0], [1.0], values=[1.0, 2.0]
            )


class TestTrackedLink:
    def test_full_and_gap_rows(self, tmp_path):
        points = [
            TrackedLinkPoint(
                timestamp=0,
                observed=WilsonInterval(5.0, 4.9, 5.1, 100),
                reference=WilsonInterval(5.0, 4.9, 5.1, 10),
                alarmed=True,
                accepted=True,
                n_probes=12,
                mean=5.2,
                sample_std=1.1,
            ),
            TrackedLinkPoint(
                timestamp=3600,
                observed=None,
                reference=None,
                alarmed=False,
                accepted=False,
                n_probes=0,
            ),
        ]
        path = tmp_path / "link.csv"
        assert write_tracked_link(path, points) == 2
        data = _read(path)
        assert data[1][1] == "5.000000"
        assert data[1][10] == "1"  # alarmed
        assert data[2][1] == ""  # gap bin
        assert data[2][10] == "0"


class TestDistribution:
    def test_write(self, tmp_path):
        path = tmp_path / "dist.csv"
        assert write_distribution(path, [1.0, 2.5], column="mag") == 2
        data = _read(path)
        assert data[0] == ["mag"]
        assert data[2] == ["2.500000"]


class TestAlarmGraph:
    def test_edge_list(self, tmp_path):
        alarm = DelayAlarm(
            timestamp=0,
            link=("A", "B"),
            observed=WilsonInterval(15.0, 14.5, 15.5, 50),
            reference=WilsonInterval(5.0, 4.8, 5.2, 50),
            deviation=9.0,
            direction=1,
            n_probes=5,
            n_asns=3,
        )
        graph = alarm_graph([alarm])
        path = tmp_path / "graph.csv"
        assert write_alarm_graph(path, graph) == 1
        data = _read(path)
        assert data[1][0] == "A" and data[1][1] == "B"
        assert float(data[1][3]) == pytest.approx(10.0)

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_alarm_graph(path, nx.Graph()) == 0
