"""Tests for CSV export of figure data and the canonical alarm records."""

import csv

import networkx as nx
import pytest

from repro.core import alarm_graph, DelayAlarm, ForwardingAlarm
from repro.core.pipeline import BinResult, TrackedLinkPoint
from repro.reporting import (
    BIN_EVENT_FIELDS,
    DELAY_ALARM_FIELDS,
    FORWARDING_ALARM_FIELDS,
    SCHEMA_VERSION,
    bin_event_record,
    bin_result_from_record,
    delay_alarm_from_record,
    delay_alarm_record,
    forwarding_alarm_from_record,
    forwarding_alarm_record,
    write_alarm_graph,
    write_distribution,
    write_magnitude_series,
    write_tracked_link,
)
from repro.stats import WilsonInterval


def _read(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestMagnitudeSeries:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "mag.csv"
        rows = write_magnitude_series(path, [0, 3600], [1.5, -2.0])
        assert rows == 2
        data = _read(path)
        assert data[0] == ["timestamp", "magnitude"]
        assert data[1] == ["0", "1.500000"]
        assert data[2][1] == "-2.000000"

    def test_with_severity_column(self, tmp_path):
        path = tmp_path / "mag.csv"
        write_magnitude_series(path, [0], [1.0], values=[42.0])
        data = _read(path)
        assert data[0] == ["timestamp", "magnitude", "severity"]
        assert data[1][2] == "42.000000"

    def test_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_magnitude_series(tmp_path / "x.csv", [0, 1], [1.0])
        with pytest.raises(ValueError):
            write_magnitude_series(
                tmp_path / "x.csv", [0], [1.0], values=[1.0, 2.0]
            )


class TestTrackedLink:
    def test_full_and_gap_rows(self, tmp_path):
        points = [
            TrackedLinkPoint(
                timestamp=0,
                observed=WilsonInterval(5.0, 4.9, 5.1, 100),
                reference=WilsonInterval(5.0, 4.9, 5.1, 10),
                alarmed=True,
                accepted=True,
                n_probes=12,
                mean=5.2,
                sample_std=1.1,
            ),
            TrackedLinkPoint(
                timestamp=3600,
                observed=None,
                reference=None,
                alarmed=False,
                accepted=False,
                n_probes=0,
            ),
        ]
        path = tmp_path / "link.csv"
        assert write_tracked_link(path, points) == 2
        data = _read(path)
        assert data[1][1] == "5.000000"
        assert data[1][10] == "1"  # alarmed
        assert data[2][1] == ""  # gap bin
        assert data[2][10] == "0"


class TestDistribution:
    def test_write(self, tmp_path):
        path = tmp_path / "dist.csv"
        assert write_distribution(path, [1.0, 2.5], column="mag") == 2
        data = _read(path)
        assert data[0] == ["mag"]
        assert data[2] == ["2.500000"]


def _delay_alarm() -> DelayAlarm:
    return DelayAlarm(
        timestamp=7200,
        link=("10.0.0.1", "10.0.0.2"),
        observed=WilsonInterval(15.25, 14.5, 15.75, 50),
        reference=WilsonInterval(5.125, 4.875, 5.5, 41),
        deviation=9.0625,
        direction=1,
        n_probes=7,
        n_asns=3,
    )


def _forwarding_alarm() -> ForwardingAlarm:
    return ForwardingAlarm(
        timestamp=7200,
        router_ip="10.0.0.1",
        destination="anchor-3",
        correlation=-0.75,
        responsibilities={"10.0.1.1": -1.5, "*": 0.25, "10.0.2.1": 1.25},
        pattern={"10.0.1.1": 0.0, "*": 4.0, "10.0.2.1": 12.0},
        reference={"10.0.1.1": 9.5, "*": 1.0, "10.0.2.1": 2.5},
    )


class TestCanonicalRecords:
    """The alarm/event records are versioned, ordered and round-trip."""

    def test_delay_schema_and_field_order(self):
        record = delay_alarm_record(_delay_alarm())
        assert record["schema"] == f"delay_alarm/v{SCHEMA_VERSION}"
        assert tuple(record) == DELAY_ALARM_FIELDS

    def test_forwarding_schema_and_field_order(self):
        record = forwarding_alarm_record(_forwarding_alarm())
        assert record["schema"] == f"forwarding_alarm/v{SCHEMA_VERSION}"
        assert tuple(record) == FORWARDING_ALARM_FIELDS

    def test_bin_event_schema_and_field_order(self):
        result = BinResult(
            timestamp=7200, n_traceroutes=9, n_links_observed=4,
            n_links_analyzed=3, delay_alarms=[_delay_alarm()],
            forwarding_alarms=[_forwarding_alarm()],
        )
        record = bin_event_record(result)
        assert record["schema"] == f"bin_event/v{SCHEMA_VERSION}"
        assert tuple(record) == BIN_EVENT_FIELDS

    def test_delay_round_trip_is_bit_identical(self):
        alarm = _delay_alarm()
        assert delay_alarm_from_record(delay_alarm_record(alarm)) == alarm

    def test_forwarding_round_trip_preserves_order(self):
        alarm = _forwarding_alarm()
        rebuilt = forwarding_alarm_from_record(
            forwarding_alarm_record(alarm)
        )
        assert rebuilt == alarm
        assert list(rebuilt.responsibilities) == list(
            alarm.responsibilities
        )
        assert list(rebuilt.pattern) == list(alarm.pattern)

    def test_bin_event_round_trip(self):
        result = BinResult(
            timestamp=7200, n_traceroutes=9, n_links_observed=4,
            n_links_analyzed=3, delay_alarms=[_delay_alarm()],
            forwarding_alarms=[_forwarding_alarm()],
        )
        assert bin_result_from_record(bin_event_record(result)) == result

    def test_schema_less_record_accepted(self):
        record = delay_alarm_record(_delay_alarm())
        del record["schema"]  # an old (pre-schema) monitor feed line
        assert delay_alarm_from_record(record) == _delay_alarm()

    def test_foreign_schema_rejected(self):
        record = delay_alarm_record(_delay_alarm())
        record["schema"] = "delay_alarm/v999"
        with pytest.raises(ValueError):
            delay_alarm_from_record(record)
        swapped = forwarding_alarm_record(_forwarding_alarm())
        with pytest.raises(ValueError):
            delay_alarm_from_record(swapped)

    def test_json_round_trip(self):
        """The records survive a JSON hop (the monitor's JSONL path)."""
        import json

        alarm = _forwarding_alarm()
        record = json.loads(json.dumps(forwarding_alarm_record(alarm)))
        assert forwarding_alarm_from_record(record) == alarm


class TestAlarmGraph:
    def test_edge_list(self, tmp_path):
        alarm = DelayAlarm(
            timestamp=0,
            link=("A", "B"),
            observed=WilsonInterval(15.0, 14.5, 15.5, 50),
            reference=WilsonInterval(5.0, 4.8, 5.2, 50),
            deviation=9.0,
            direction=1,
            n_probes=5,
            n_asns=3,
        )
        graph = alarm_graph([alarm])
        path = tmp_path / "graph.csv"
        assert write_alarm_graph(path, graph) == 1
        data = _read(path)
        assert data[1][0] == "A" and data[1][1] == "B"
        assert float(data[1][3]) == pytest.approx(10.0)

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_alarm_graph(path, nx.Graph()) == 0
