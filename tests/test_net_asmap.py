"""Tests for the IP→AS mapper used by alarm aggregation."""

import pytest

from repro.net import AsMapper, AsMappingError


@pytest.fixture
def mapper():
    return AsMapper(
        [
            ("193.0.0.0", 16, 25152),
            ("4.0.0.0", 8, 3356),
            ("67.16.0.0", 14, 3549),
            ("67.17.0.0", 16, 3549),
        ]
    )


class TestAsnOf:
    def test_basic_lookup(self, mapper):
        assert mapper.asn_of("193.0.14.129") == 25152
        assert mapper.asn_of("4.68.110.202") == 3356

    def test_unknown_returns_none(self, mapper):
        assert mapper.asn_of("8.8.8.8") is None

    def test_invalid_ip_returns_none(self, mapper):
        assert mapper.asn_of("not-an-ip") is None
        assert mapper.asn_of("300.1.1.1") is None

    def test_cache_returns_consistent_results(self, mapper):
        first = mapper.asn_of("67.16.133.130")
        second = mapper.asn_of("67.16.133.130")
        assert first == second == 3549

    def test_len(self, mapper):
        assert len(mapper) == 4


class TestLinkMapping:
    def test_same_as_link_yields_single_group(self, mapper):
        assert mapper.asns_of_link("67.16.133.130", "67.17.106.150") == [3549]

    def test_cross_as_link_yields_both_groups(self, mapper):
        assert mapper.asns_of_link("4.68.110.202", "67.16.133.126") == [3356, 3549]

    def test_unknown_end_is_dropped(self, mapper):
        assert mapper.asns_of_link("8.8.8.8", "4.68.110.202") == [3356]

    def test_both_unknown_is_empty(self, mapper):
        assert mapper.asns_of_link("8.8.8.8", "9.9.9.9") == []


class TestLoading:
    def test_load_rejects_bad_network(self):
        with pytest.raises(AsMappingError):
            AsMapper([("garbage", 24, 1)])

    def test_load_rejects_bad_asn(self):
        with pytest.raises(AsMappingError):
            AsMapper([("10.0.0.0", 8, -5)])
        with pytest.raises(AsMappingError):
            AsMapper([("10.0.0.0", 8, "AS65000")])

    def test_incremental_load(self, mapper):
        added = mapper.load([("80.81.192.0", 21, 1200)])
        assert added == 1
        assert mapper.asn_of("80.81.192.154") == 1200

    def test_prefix_of(self, mapper):
        assert mapper.prefix_of("193.0.14.129") == ("193.0.0.0", 16)
        assert mapper.prefix_of("8.8.8.8") is None
        assert mapper.prefix_of("junk") is None
