"""Same-seed determinism for every scenario, in- and cross-process.

Scenario constructors draw per-edge/per-probe randomness; if any draw
iterated an unordered set, campaigns would differ between processes
(Python randomises string hashing per process).  The regression here is
two-fold: same seed twice in one process must reproduce the campaign
bit-for-bit, and running this file as a script under different
``PYTHONHASHSEED`` values must print identical campaign digests.
"""

import hashlib
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.simulation import (
    AtlasPlatform,
    BgpHijackScenario,
    CampaignConfig,
    CatchmentShiftScenario,
    DdosScenario,
    DiurnalCongestionScenario,
    IxpOutageScenario,
    ProbeChurnScenario,
    RouteLeakScenario,
    ScenarioFuzzer,
    build_topology,
)

WINDOW = (2 * 3600, 3 * 3600)
DURATION_S = 4 * 3600

SCENARIO_BUILDERS = {
    "ddos": lambda topo: DdosScenario(
        topo,
        "K-root",
        [topo.services["K-root"].instances[0].node],
        [WINDOW],
        seed=3,
    ),
    "route-leak": lambda topo: RouteLeakScenario(
        topo,
        leak_waypoint=topo.routers_of_as(4788)[0],
        leak_entry=topo.routers_of_as(3549)[0],
        leaked_targets={a.name for a in topo.anchors[:2]},
        window=WINDOW,
        seed=5,
    ),
    "ixp-outage": lambda topo: IxpOutageScenario(
        topo, ixp_asn=1200, window=WINDOW
    ),
    "catchment-shift": lambda topo: CatchmentShiftScenario.largest_shift(
        topo, "K-root", WINDOW
    ),
    "hijack-subprefix": lambda topo: BgpHijackScenario(
        topo,
        topo.routers_of_as(174)[0],
        [topo.anchors[0].name],
        WINDOW,
        mode="subprefix",
    ),
    "hijack-exact": lambda topo: BgpHijackScenario(
        topo,
        topo.routers_of_as(174)[0],
        [topo.anchors[0].name],
        WINDOW,
        mode="exact",
    ),
    "diurnal": lambda topo: DiurnalCongestionScenario(
        topo, [WINDOW], asn=174, seed=2
    ),
    "probe-churn": lambda topo: ProbeChurnScenario(
        topo, [WINDOW], seed=1
    ),
    "fuzz": lambda topo: ScenarioFuzzer(topo, seed=7).sample(2),
}


def campaign_digest(topo, scenario, seed=7) -> str:
    """Bit-stable digest of a small campaign under *scenario*."""
    platform = AtlasPlatform(topo, scenario=scenario, seed=seed)
    config = CampaignConfig(
        start=0,
        duration_s=DURATION_S,
        probe_ids=[p.probe_id for p in topo.probes[:6]],
        service_names=["K-root"],
        anchor_names=[topo.anchors[0].name],
    )
    h = hashlib.blake2b(digest_size=16)
    for traceroute in platform.run_campaign(config):
        h.update(
            json.dumps(traceroute.to_json(), sort_keys=True).encode()
        )
    return h.hexdigest()


def truth_digest(scenario) -> str:
    payload = json.dumps(scenario.ground_truth().to_dict(), sort_keys=True)
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


@pytest.fixture(scope="module")
def topo():
    return build_topology(seed=21)


@pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
def test_same_seed_same_campaign(topo, name):
    build = SCENARIO_BUILDERS[name]
    first, second = build(topo), build(topo)
    assert first.ground_truth() == second.ground_truth()
    assert campaign_digest(topo, first) == campaign_digest(topo, second)


def test_cross_process_hash_seed_independence():
    """Digests must not depend on the per-process string-hash seed."""
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    outputs = []
    for hash_seed in ("0", "1"):
        env["PYTHONHASHSEED"] = hash_seed
        result = subprocess.run(
            [sys.executable, os.path.abspath(__file__)],
            env=env,
            capture_output=True,
            text=True,
            check=True,
            timeout=560,
        )
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1]
    assert len(outputs[0].strip().splitlines()) == len(SCENARIO_BUILDERS)


def _main() -> None:
    """Script mode: print one digest line per scenario (see the test)."""
    topology = build_topology(seed=21)
    for name in sorted(SCENARIO_BUILDERS):
        scenario = SCENARIO_BUILDERS[name](topology)
        print(
            name,
            campaign_digest(topology, scenario),
            truth_digest(scenario),
        )


if __name__ == "__main__":
    _main()
