"""Tests for the routing engine and traceroute engine."""

import numpy as np
import pytest

from repro.simulation import (
    AtlasPlatform,
    CampaignConfig,
    NoRouteError,
    RoutingEngine,
    TargetSpec,
    TopologyParams,
    TracerouteEngine,
    build_topology,
)


@pytest.fixture(scope="module")
def topo():
    return build_topology(seed=11)


@pytest.fixture(scope="module")
def routing(topo):
    return RoutingEngine(topo)


@pytest.fixture(scope="module")
def engine(topo):
    return TracerouteEngine(topo, seed=5)


class TestRouting:
    def test_forward_path_endpoints(self, topo, routing):
        probe = topo.probes[0]
        anchor = topo.anchors[0]
        path = routing.forward_path(probe.router, anchor.node)
        assert path[0] == probe.router
        assert path[-1] == anchor.node

    def test_forward_path_cached(self, topo, routing):
        probe = topo.probes[0]
        anchor = topo.anchors[0]
        first = routing.forward_path(probe.router, anchor.node)
        second = routing.forward_path(probe.router, anchor.node)
        assert first is second

    def test_anycast_path_ends_at_instance(self, topo, routing):
        kroot = topo.services["K-root"]
        instance_nodes = {i.node for i in kroot.instances}
        for probe in topo.probes[:10]:
            path = routing.forward_path_to_service(probe.router, kroot)
            assert path[-1] in instance_nodes

    def test_anycast_catchments_differ(self, topo, routing):
        """Different probes should reach different K-root instances."""
        kroot = topo.services["K-root"]
        instances = {
            routing.instance_for(probe.router, kroot)
            for probe in topo.probes
        }
        assert len(instances) >= 2

    def test_return_path_differs_from_forward(self, topo, routing):
        """Route asymmetry: at least some pairs take different routes."""
        asymmetric = 0
        checked = 0
        for probe in topo.probes[:12]:
            for anchor in topo.anchors:
                forward = routing.forward_path(probe.router, anchor.node)
                backward = routing.return_path(anchor.node, probe.router)
                checked += 1
                if list(reversed(backward)) != forward:
                    asymmetric += 1
        assert checked > 0
        assert asymmetric / checked > 0.2

    def test_waypoint_path_passes_waypoint(self, topo, routing):
        probe = topo.probes[0]
        anchor = topo.anchors[-1]
        waypoint = topo.routers_of_as(4788)[0]
        path = routing.forward_path_via(probe.router, waypoint, anchor.node)
        assert waypoint in path
        assert path[-1] == anchor.node

    def test_no_route_error(self, topo):
        routing = RoutingEngine(topo)
        with pytest.raises(NoRouteError):
            routing.forward_path("does-not-exist", topo.probes[0].router)

    def test_path_base_delay_positive(self, topo, routing):
        probe = topo.probes[0]
        anchor = topo.anchors[0]
        path = routing.forward_path(probe.router, anchor.node)
        assert routing.path_base_delay_ms(path) > 0


class TestTracerouteEngine:
    def test_traceroute_shape(self, topo, engine):
        probe = topo.probes[0]
        target = TargetSpec.for_anchor(topo.anchors[0])
        tr = engine.run(probe, target, t=0)
        assert tr.prb_id == probe.probe_id
        assert tr.src_addr == probe.ip
        assert tr.dst_addr == target.dst_ip
        assert tr.from_asn == probe.asn
        assert len(tr.hops) >= 2
        for hop in tr.hops:
            assert len(hop.replies) == 3

    def test_rtts_increase_along_path(self, topo, engine):
        """Median RTT should be (weakly) increasing with TTL, modulo
        asymmetric return paths; at least the last hop exceeds the first."""
        probe = topo.probes[1]
        target = TargetSpec.for_anchor(topo.anchors[0])
        tr = engine.run(probe, target, t=60)
        rtts = [np.median(h.rtts) for h in tr.hops if h.rtts]
        assert len(rtts) >= 2
        assert rtts[-1] > rtts[0]

    def test_destination_reached_and_reported(self, topo, engine):
        probe = topo.probes[2]
        target = TargetSpec.for_anchor(topo.anchors[1])
        tr = engine.run(probe, target, t=120)
        assert tr.destination_reached
        assert tr.hops[-1].primary_ip == target.dst_ip

    def test_anycast_last_hop_is_service_ip(self, topo, engine):
        kroot = topo.services["K-root"]
        target = TargetSpec.for_service(kroot)
        tr = engine.run(topo.probes[3], target, t=0)
        assert tr.hops[-1].primary_ip == kroot.service_ip

    def test_deterministic_paths_across_time(self, topo, engine):
        """Paris traceroute: same (probe, target) -> same hop IPs."""
        probe = topo.probes[4]
        target = TargetSpec.for_anchor(topo.anchors[0])
        first = engine.run(probe, target, t=0)
        second = engine.run(probe, target, t=3600)
        assert [h.primary_ip for h in first.hops] == [
            h.primary_ip for h in second.hops
        ]

    def test_rtt_values_are_plain_floats(self, topo, engine):
        import json

        probe = topo.probes[5]
        target = TargetSpec.for_anchor(topo.anchors[0])
        tr = engine.run(probe, target, t=0)
        json.dumps(tr.to_json())  # must not raise on numpy types

    def test_unresponsive_router_shows_timeouts(self, topo):
        unresponsive = [
            r for r in topo.routers.values() if not r.responsive
        ]
        if not unresponsive:
            pytest.skip("seed produced no unresponsive routers")
        engine = TracerouteEngine(topo, seed=1)
        target_router = unresponsive[0]
        # Find a traceroute whose path crosses the unresponsive router.
        found = False
        for probe in topo.probes:
            for anchor in topo.anchors:
                target = TargetSpec.for_anchor(anchor)
                tr = engine.run(probe, target, t=0)
                plan = engine._plan_for(probe, target, None)
                nodes = [hp.node for hp in plan.hops]
                if target_router.node in nodes[:-1]:
                    index = nodes.index(target_router.node)
                    assert tr.hops[index].is_unresponsive
                    found = True
                    break
            if found:
                break
        if not found:
            pytest.skip("no path crosses an unresponsive router")

    def test_packets_per_hop_validation(self, topo):
        with pytest.raises(ValueError):
            TracerouteEngine(topo, packets_per_hop=0)


class TestPlatform:
    def test_campaign_size_matches_run(self, topo):
        platform = AtlasPlatform(topo, seed=3)
        config = CampaignConfig(duration_s=3600)
        expected = platform.campaign_size(config)
        results = list(platform.run_campaign(config))
        assert len(results) == expected
        assert expected > 0

    def test_results_sorted_by_timestamp(self, topo):
        platform = AtlasPlatform(topo, seed=3)
        config = CampaignConfig(duration_s=3600)
        stamps = [tr.timestamp for tr in platform.run_campaign(config)]
        assert stamps == sorted(stamps)

    def test_probe_and_target_filters(self, topo):
        platform = AtlasPlatform(topo, seed=3)
        config = CampaignConfig(
            duration_s=3600,
            probe_ids=[0, 1],
            service_names=["K-root"],
            include_anchoring=False,
        )
        results = list(platform.run_campaign(config))
        assert {tr.prb_id for tr in results} == {0, 1}
        assert {tr.dst_addr for tr in results} == {
            topo.services["K-root"].service_ip
        }

    def test_builtin_cadence(self, topo):
        platform = AtlasPlatform(topo, seed=3)
        config = CampaignConfig(
            duration_s=7200,
            probe_ids=[0],
            service_names=["K-root"],
            include_anchoring=False,
        )
        results = list(platform.run_campaign(config))
        assert len(results) == 4  # every 30 min over 2 hours

    def test_as_mapper_resolves_hops(self, topo):
        platform = AtlasPlatform(topo, seed=3)
        mapper = platform.as_mapper()
        config = CampaignConfig(
            duration_s=1800, probe_ids=[0, 1, 2], include_anchoring=False
        )
        unresolved = 0
        total = 0
        for tr in platform.run_campaign(config):
            for hop in tr.hops:
                ip = hop.primary_ip
                if ip is None:
                    continue
                total += 1
                if mapper.asn_of(ip) is None:
                    unresolved += 1
        assert total > 0
        assert unresolved == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(duration_s=0)
        with pytest.raises(ValueError):
            CampaignConfig(include_builtin=False, include_anchoring=False)

    def test_empty_probe_filter_raises(self, topo):
        platform = AtlasPlatform(topo, seed=3)
        config = CampaignConfig(duration_s=3600, probe_ids=[99999])
        with pytest.raises(ValueError):
            list(platform.run_campaign(config))
