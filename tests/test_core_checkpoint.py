"""Checkpoint/resume: snapshot round-trips, crash/resume equivalence,
and snapshot-format corruption handling.

Three guarantees are pinned here:

1. ``snapshot()`` → ``restore()`` reproduces detector state
   **bit-identically** — every arena array, warm-up buffer, smoother
   value, counter, diversity round and tracked point — at 1/2/4 shards
   and for the serial reference pipeline (hypothesis property);
2. a run interrupted after any bin and resumed in a fresh engine (any
   executor, any shard count, even a *different* one) produces exactly
   the uninterrupted run's alarms, campaign aggregates and tracked-link
   series;
3. the binary snapshot format never silently serves a truncated,
   foreign, stale or corrupt file — every such file raises
   :class:`SnapshotError`, and the resumable driver rebuilds from
   scratch instead of trusting it.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atlas import TimeBinner, make_traceroute
from repro.core import (
    EngineSnapshot,
    Pipeline,
    PipelineConfig,
    ShardedPipeline,
    SnapshotError,
    config_fingerprint,
    load_snapshot,
    run_checkpointed,
    save_snapshot,
)
from repro.core.checkpoint import (
    MAGIC,
    SNAPSHOT_VERSION,
    _encode_payload,
)

# -- synthetic campaign generator -------------------------------------------


def _campaign(n_links=8, n_probes=8, n_bins=9, seed=3):
    """A compact multi-link campaign exercising every detector path.

    Mid-campaign delay shifts (delay alarms after warm-up), a next-hop
    flip (forwarding alarms), a skewed AS distribution (entropy
    rebalancing — the diversity RNG path a checkpoint must preserve), a
    single-AS link (diversity rejection) and a vanishing link (tracked
    gap points).
    """
    rng = np.random.default_rng(seed)
    traceroutes = []
    for bin_index in range(n_bins):
        timestamp = bin_index * 3600
        for link_index in range(n_links):
            near = f"10.{link_index}.0.1"
            far = f"10.{link_index}.0.2"
            if link_index == 1 and bin_index in (5, 6):
                continue  # tracked-link gap
            shift = 25.0 if bin_index >= 6 and link_index % 3 == 0 else 0.0
            for probe in range(n_probes):
                if link_index == 2:
                    asn = 65001  # single AS: diversity-rejected
                elif link_index == 3:
                    # Heavily skewed: triggers entropy rebalancing.
                    asn = 65001 if probe < n_probes - 2 else 65002 + probe % 2
                else:
                    asn = 65001 + probe % 4
                base = 10.0 + probe
                near_rtts = base + rng.normal(0.0, 0.2, 2)
                far_rtts = base + 6.0 + shift + rng.normal(0.0, 0.2, 2)
                next_hop = far
                if link_index == 4 and bin_index >= 5:
                    next_hop = f"10.{link_index}.9.9"  # forwarding flip
                traceroutes.append(
                    make_traceroute(
                        probe + link_index * 100,
                        f"src{probe}",
                        f"dst{link_index}",
                        timestamp + probe,
                        [
                            [(near, float(v)) for v in near_rtts],
                            [(next_hop, float(v)) for v in far_rtts],
                        ],
                        from_asn=asn,
                    )
                )
    return traceroutes


TRACKED = {
    ("10.0.0.1", "10.0.0.2"),  # alarmed link
    ("10.1.0.1", "10.1.0.2"),  # link with a gap
    ("10.2.0.1", "10.2.0.2"),  # diversity-rejected link
    ("192.0.2.1", "192.0.2.2"),  # never observed
}


def _config(**kwargs):
    return PipelineConfig(track_links=set(TRACKED), **kwargs)


def _bins(campaign, bin_s=3600):
    binner = TimeBinner(bin_s=bin_s, dense=True)
    return [(start, list(payload)) for start, payload in binner.bins(campaign)]


@pytest.fixture(scope="module")
def campaign():
    return _campaign()


@pytest.fixture(scope="module")
def campaign_bins(campaign):
    return _bins(campaign)


@pytest.fixture(scope="module")
def serial_reference(campaign):
    pipeline = Pipeline(_config())
    results = pipeline.run(campaign)
    return pipeline, results


# -- bit-identical state round-trips ----------------------------------------


def _assert_arena_state_identical(original, restored):
    """Compare two ShardedPipelines' full internal state, bit for bit."""
    assert original.n_shards == restored.n_shards
    for core_a, core_b in zip(
        original._backend.cores, restored._backend.cores
    ):
        da, db = core_a.delay_arena, core_b.delay_arena
        assert da.interner.keys == db.interner.keys
        n = len(da.interner)
        for name in ("_median", "_lower", "_upper"):
            assert np.array_equal(
                getattr(da, name)[:n], getattr(db, name)[:n], equal_nan=True
            ), name
        for name in (
            "_warm_count",
            "_bins_seen",
            "_alarms_raised",
            "_max_probes",
        ):
            assert np.array_equal(
                getattr(da, name)[:n], getattr(db, name)[:n]
            ), name
        # Warm-up buffers matter (bit for bit) only while a link is
        # still warming; ready rows are dead storage.
        for ident in range(n):
            if np.isnan(da._median[ident]):
                count = int(da._warm_count[ident])
                assert np.array_equal(
                    da._warm[ident, :, :count], db._warm[ident, :, :count]
                )
        fa, fb = core_a.forwarding_arena, core_b.forwarding_arena
        assert fa.interner.keys == fb.interner.keys
        assert fa._references == fb._references
        assert fa._bins_seen == fb._bins_seen
        assert fa._alarms_raised == fb._alarms_raised
        assert fa._routers == fb._routers
        assert core_a.diversity._rounds == core_b.diversity._rounds
        assert core_a.tracked == core_b.tracked
    assert original._links_seen == restored._links_seen
    assert original._bins == restored._bins
    assert original._traceroutes == restored._traceroutes


class TestRoundTripProperty:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n_links=st.integers(3, 6),
        n_bins=st.integers(1, 6),
        seed=st.integers(0, 5),
        n_shards=st.sampled_from([1, 2, 4]),
    )
    def test_snapshot_restore_is_bit_identical(
        self, n_links, n_bins, seed, n_shards
    ):
        """For arbitrary campaigns, snapshot → restore reproduces the
        arenas, interners, warm-up buffers and counters bit for bit."""
        campaign = _campaign(
            n_links=n_links, n_probes=6, n_bins=n_bins, seed=seed
        )
        engine = ShardedPipeline(_config(n_shards=n_shards, executor="serial"))
        engine.run(campaign)
        snapshot = engine.snapshot()
        restored = ShardedPipeline(
            _config(n_shards=n_shards, executor="serial")
        )
        restored.restore(snapshot)
        _assert_arena_state_identical(engine, restored)
        assert restored.stats() == engine.stats()
        assert restored.tracked == engine.tracked

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(n_bins=st.integers(1, 6), seed=st.integers(0, 3))
    def test_serial_pipeline_roundtrip_smoother_state(self, n_bins, seed):
        """The scalar pipeline's smoothers (values *and* warm-up
        buffers) survive a snapshot round-trip bit-identically."""
        campaign = _campaign(n_links=5, n_probes=6, n_bins=n_bins, seed=seed)
        pipeline = Pipeline(_config())
        pipeline.run(campaign)
        restored = Pipeline(_config())
        restored.restore(pipeline.snapshot())
        states_a = pipeline.delay_detector._states
        states_b = restored.delay_detector._states
        assert states_a.keys() == states_b.keys()
        for link, state_a in states_a.items():
            state_b = states_b[link]
            for name in ("median", "lower", "upper"):
                smoother_a = getattr(state_a, name)
                smoother_b = getattr(state_b, name)
                assert smoother_a._value == smoother_b._value
                assert smoother_a._warmup == smoother_b._warmup
            assert state_a.bins_seen == state_b.bins_seen
            assert state_a.alarms_raised == state_b.alarms_raised
        fwd_a = pipeline.forwarding_detector._states
        fwd_b = restored.forwarding_detector._states
        assert fwd_a.keys() == fwd_b.keys()
        for key, state_a in fwd_a.items():
            state_b = fwd_b[key]
            assert state_a.smoother._weights == state_b.smoother._weights
            assert state_a.smoother._updates == state_b.smoother._updates
            assert state_a.alarms_raised == state_b.alarms_raised
        assert pipeline.diversity._rounds == restored.diversity._rounds
        assert pipeline.tracked == restored.tracked
        assert pipeline._probes_per_link == restored._probes_per_link
        assert pipeline.stats() == restored.stats()

    def test_disk_roundtrip_preserves_everything(self, campaign, tmp_path):
        """save → load reproduces the snapshot including results and
        float bit patterns."""
        engine = ShardedPipeline(_config(n_shards=2, executor="serial"))
        results = engine.run(campaign)
        snapshot = engine.snapshot(results=results)
        path = tmp_path / "state.ckpt"
        save_snapshot(path, snapshot)
        loaded = load_snapshot(path, config=_config())
        assert loaded.fingerprint == snapshot.fingerprint
        assert loaded.bins_processed == snapshot.bins_processed
        assert loaded.traceroutes_processed == snapshot.traceroutes_processed
        assert loaded.last_timestamp == snapshot.last_timestamp
        assert loaded.links_seen == snapshot.links_seen
        assert loaded.rounds == snapshot.rounds
        assert loaded.delay.links == snapshot.delay.links
        for name in ("median", "lower", "upper", "warm_values"):
            assert np.array_equal(
                getattr(loaded.delay, name),
                getattr(snapshot.delay, name),
                equal_nan=True,
            )
        for name in (
            "warm_count",
            "bins_seen",
            "alarms_raised",
            "max_probes",
            "warm_offsets",
        ):
            assert np.array_equal(
                getattr(loaded.delay, name), getattr(snapshot.delay, name)
            )
        assert loaded.forwarding.keys == snapshot.forwarding.keys
        assert loaded.forwarding.ref_hops == snapshot.forwarding.ref_hops
        assert np.array_equal(
            loaded.forwarding.ref_weights, snapshot.forwarding.ref_weights
        )
        assert loaded.tracked == snapshot.tracked
        assert loaded.results == snapshot.results

    def test_snapshot_bytes_are_deterministic(self, campaign, tmp_path):
        """Two identical runs write byte-identical snapshot files."""
        paths = []
        for index in range(2):
            engine = ShardedPipeline(_config(n_shards=2, executor="serial"))
            results = engine.run(campaign)
            path = tmp_path / f"state{index}.ckpt"
            save_snapshot(path, engine.snapshot(results=results))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


# -- crash/resume equivalence ------------------------------------------------


def _sharded(n_shards, executor="serial", n_jobs=None):
    kwargs = {"n_shards": n_shards, "executor": executor}
    if n_jobs is not None:
        kwargs["n_jobs"] = n_jobs
    return ShardedPipeline(_config(**kwargs))


class TestCrashResumeEquivalence:
    @pytest.mark.parametrize("k", [1, 3, 6, 8])
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_interrupted_equals_uninterrupted(
        self, campaign, campaign_bins, serial_reference, k, n_shards, tmp_path
    ):
        """Run bins 0..k-1, checkpoint through disk, restore in a fresh
        engine, run the rest: alarms, aggregates and tracked series are
        identical to the uninterrupted serial run."""
        serial, full = serial_reference
        first_engine = _sharded(n_shards)
        first = [
            first_engine.process_bin(start, payload)
            for start, payload in campaign_bins[:k]
        ]
        path = tmp_path / "state.ckpt"
        save_snapshot(path, first_engine.snapshot(results=first))
        resumed = _sharded(n_shards)
        results = resumed.run(campaign, resume_from=load_snapshot(path))
        assert results == full
        assert resumed.stats() == serial.stats()
        assert resumed.tracked == serial.tracked

    @pytest.mark.parametrize("k", [2, 7])
    def test_serial_pipeline_resume(
        self, campaign, campaign_bins, serial_reference, k, tmp_path
    ):
        serial, full = serial_reference
        first_pipeline = Pipeline(_config())
        first = [
            first_pipeline.process_bin(start, payload)
            for start, payload in campaign_bins[:k]
        ]
        path = tmp_path / "state.ckpt"
        save_snapshot(path, first_pipeline.snapshot(results=first))
        resumed = Pipeline(_config())
        results = resumed.run(campaign, resume_from=load_snapshot(path))
        assert results == full
        assert resumed.stats() == serial.stats()
        assert resumed.tracked == serial.tracked

    def test_cross_executor_resume(
        self, campaign, campaign_bins, serial_reference, tmp_path
    ):
        """A checkpoint taken under the process executor resumes under
        the serial executor (and at a different shard count)."""
        serial, full = serial_reference
        path = tmp_path / "state.ckpt"
        with _sharded(3, executor="process", n_jobs=2) as engine:
            first = [
                engine.process_bin(start, payload)
                for start, payload in campaign_bins[:4]
            ]
            save_snapshot(path, engine.snapshot(results=first))
        resumed = _sharded(2)
        assert resumed.run(campaign, resume_from=load_snapshot(path)) == full
        assert resumed.stats() == serial.stats()

    def test_process_executor_resume(
        self, campaign, campaign_bins, serial_reference, tmp_path
    ):
        serial, full = serial_reference
        path = tmp_path / "state.ckpt"
        engine = _sharded(2)
        first = [
            engine.process_bin(start, payload)
            for start, payload in campaign_bins[:5]
        ]
        save_snapshot(path, engine.snapshot(results=first))
        with _sharded(2, executor="process", n_jobs=2) as resumed:
            out = resumed.run(campaign, resume_from=load_snapshot(path))
            assert out == full
            assert resumed.stats() == serial.stats()
            assert resumed.tracked == serial.tracked

    def test_serial_snapshot_resumes_in_sharded_engine(
        self, campaign, campaign_bins, serial_reference, tmp_path
    ):
        """Snapshots are engine-agnostic: a serial-pipeline checkpoint
        resumes inside the sharded engine (and vice versa, covered by
        test_cross_executor_resume)."""
        serial, full = serial_reference
        path = tmp_path / "state.ckpt"
        first_pipeline = Pipeline(_config())
        first = [
            first_pipeline.process_bin(start, payload)
            for start, payload in campaign_bins[:3]
        ]
        save_snapshot(path, first_pipeline.snapshot(results=first))
        resumed = _sharded(4)
        out = resumed.run(campaign, resume_from=load_snapshot(path))
        assert out == full
        assert resumed.stats() == serial.stats()
        assert resumed.tracked == serial.tracked

    def test_resume_on_nonfresh_engine_rejected(
        self, campaign_bins, tmp_path
    ):
        engine = _sharded(2)
        first = [
            engine.process_bin(start, payload)
            for start, payload in campaign_bins[:2]
        ]
        path = tmp_path / "state.ckpt"
        save_snapshot(path, engine.snapshot(results=first))
        snapshot = load_snapshot(path)
        busy = _sharded(2)
        busy.process_bin(*campaign_bins[0])
        with pytest.raises(SnapshotError):
            busy.restore(snapshot)
        serial = Pipeline(_config())
        serial.process_bin(*campaign_bins[0])
        with pytest.raises(SnapshotError):
            serial.restore(snapshot)

    def test_run_checkpointed_crash_resume(
        self, campaign, serial_reference, tmp_path
    ):
        """The driver end to end: fresh run writes checkpoints; a rerun
        resumes and returns the complete, identical result list."""
        serial, full = serial_reference
        path = tmp_path / "state.ckpt"
        fresh = Pipeline(_config())
        results, resumed = run_checkpointed(
            fresh, campaign, path, every_bins=2
        )
        assert not resumed
        assert results == full
        rerun = _sharded(2)
        results, resumed = run_checkpointed(
            rerun, campaign, path, every_bins=2
        )
        assert resumed
        assert results == full
        assert rerun.stats() == serial.stats()

    def test_run_checkpointed_partial_then_resume(
        self, campaign, campaign_bins, serial_reference, tmp_path
    ):
        """Simulated crash: checkpoint covers a prefix; the rerun
        processes only the remaining bins yet returns the full list."""
        serial, full = serial_reference
        path = tmp_path / "state.ckpt"
        partial = Pipeline(_config())
        first = [
            partial.process_bin(start, payload)
            for start, payload in campaign_bins[:4]
        ]
        save_snapshot(path, partial.snapshot(results=first))
        resumed_pipeline = Pipeline(_config())
        results, resumed = run_checkpointed(
            resumed_pipeline, campaign, path, every_bins=3
        )
        assert resumed
        assert results == full
        assert resumed_pipeline._bins == len(full)


# -- format corruption and staleness ----------------------------------------


@pytest.fixture()
def valid_checkpoint(campaign_bins, tmp_path):
    engine = ShardedPipeline(_config(n_shards=2, executor="serial"))
    results = [
        engine.process_bin(start, payload)
        for start, payload in campaign_bins[:5]
    ]
    path = tmp_path / "valid.ckpt"
    save_snapshot(path, engine.snapshot(results=results))
    return path


class TestSnapshotFormatVetting:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(tmp_path / "nope.ckpt")

    def test_truncated_everywhere(self, valid_checkpoint):
        """Any prefix of a valid file must raise, never load."""
        raw = valid_checkpoint.read_bytes()
        target = valid_checkpoint.with_name("trunc.ckpt")
        for cut in (0, 4, len(MAGIC), 20, len(raw) // 2, len(raw) - 1):
            target.write_bytes(raw[:cut])
            with pytest.raises(SnapshotError):
                load_snapshot(target)

    def test_flipped_magic(self, valid_checkpoint):
        raw = bytearray(valid_checkpoint.read_bytes())
        raw[0] ^= 0xFF
        valid_checkpoint.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="magic"):
            load_snapshot(valid_checkpoint)

    def test_flipped_version(self, valid_checkpoint):
        raw = bytearray(valid_checkpoint.read_bytes())
        raw[len(MAGIC)] = SNAPSHOT_VERSION + 1
        valid_checkpoint.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(valid_checkpoint)

    def test_payload_bit_flip_fails_digest(self, valid_checkpoint):
        raw = bytearray(valid_checkpoint.read_bytes())
        raw[-10] ^= 0x01
        valid_checkpoint.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="digest"):
            load_snapshot(valid_checkpoint)

    def test_fingerprint_mismatch_is_stale(self, valid_checkpoint):
        # Loaded unpinned it is fine; pinned to a different alpha it is
        # stale and must be rejected.
        load_snapshot(valid_checkpoint)
        with pytest.raises(SnapshotError, match="fingerprint"):
            load_snapshot(valid_checkpoint, config=_config(alpha=0.05))

    def test_restore_rejects_foreign_fingerprint(self, valid_checkpoint):
        snapshot = load_snapshot(valid_checkpoint)
        engine = ShardedPipeline(_config(alpha=0.05, n_shards=2,
                                         executor="serial"))
        with pytest.raises(SnapshotError, match="fingerprint"):
            engine.restore(snapshot)
        pipeline = Pipeline(_config(alpha=0.05))
        with pytest.raises(SnapshotError, match="fingerprint"):
            pipeline.restore(snapshot)

    @pytest.mark.parametrize("table", ["warm_offsets", "ref_offsets"])
    def test_non_monotonic_offsets_rejected(self, valid_checkpoint, table):
        """A digest-valid file whose offset tables step backwards must
        still be rejected by structural vetting."""
        snapshot = load_snapshot(valid_checkpoint)
        if table == "warm_offsets":
            offsets = snapshot.delay.warm_offsets
        else:
            offsets = snapshot.forwarding.ref_offsets
        assert offsets.size >= 2
        offsets[-1] += 8  # unanchored tail
        target = valid_checkpoint.with_name("bad-offsets.ckpt")
        save_snapshot(target, snapshot)  # recomputes a valid digest
        with pytest.raises(SnapshotError):
            load_snapshot(target)

    def test_warm_count_out_of_range_rejected(self, valid_checkpoint):
        snapshot = load_snapshot(valid_checkpoint)
        assert snapshot.delay.warm_count.size
        snapshot.delay.warm_count[0] = snapshot.delay.seed_bins + 7
        target = valid_checkpoint.with_name("bad-warm.ckpt")
        save_snapshot(target, snapshot)
        with pytest.raises(SnapshotError):
            load_snapshot(target)

    def test_trailing_bytes_rejected(self, valid_checkpoint):
        raw = valid_checkpoint.read_bytes()
        valid_checkpoint.write_bytes(raw + b"junk")
        with pytest.raises(SnapshotError):
            load_snapshot(valid_checkpoint)

    def test_driver_rebuilds_from_corrupt_checkpoint(
        self, campaign, serial_reference, valid_checkpoint
    ):
        """run_checkpointed never trusts a corrupt file: it rebuilds the
        campaign from scratch and overwrites the checkpoint."""
        serial, full = serial_reference
        raw = bytearray(valid_checkpoint.read_bytes())
        raw[-1] ^= 0xFF
        valid_checkpoint.write_bytes(bytes(raw))
        pipeline = Pipeline(_config())
        results, resumed = run_checkpointed(
            pipeline, campaign, valid_checkpoint, every_bins=4
        )
        assert not resumed
        assert results == full
        # The rebuilt checkpoint is valid again.
        assert load_snapshot(valid_checkpoint).bins_processed == len(full)

    def test_driver_rebuilds_from_results_less_snapshot(
        self, campaign, campaign_bins, serial_reference, tmp_path
    ):
        """A state-only snapshot (the monitor's kind) embeds no per-bin
        results; resuming from it would silently report a campaign
        missing its first bins, so the driver must rebuild instead."""
        serial, full = serial_reference
        monitor_pipeline = Pipeline(_config())
        for start, payload in campaign_bins[:5]:
            monitor_pipeline.process_bin(start, payload)
        path = tmp_path / "monitor.ckpt"
        save_snapshot(path, monitor_pipeline.snapshot())  # no results
        pipeline = Pipeline(_config())
        results, resumed = run_checkpointed(
            pipeline, campaign, path, every_bins=4
        )
        assert not resumed
        assert results == full  # complete output, not a truncated one

    def test_driver_rebuilds_from_stale_checkpoint(
        self, campaign, valid_checkpoint
    ):
        """A checkpoint written under another configuration is ignored."""
        config = _config(alpha=0.05)
        pipeline = Pipeline(config)
        results, resumed = run_checkpointed(
            pipeline, campaign, valid_checkpoint, every_bins=4
        )
        assert not resumed
        reference = Pipeline(_config(alpha=0.05))
        assert results == reference.run(campaign)

    def test_driver_refuses_checkpoint_of_different_campaign(
        self, campaign, serial_reference, tmp_path
    ):
        """A checkpoint path reused against a different campaign file
        must rebuild, never merge the two campaigns' results."""
        from repro.atlas import write_traceroutes

        serial, full = serial_reference
        campaign_a = tmp_path / "a.jsonl"
        campaign_b = tmp_path / "b.jsonl"
        write_traceroutes(campaign_a, _campaign(seed=11))
        write_traceroutes(campaign_b, campaign)
        ckpt = tmp_path / "state.ckpt"
        first = Pipeline(_config())
        run_checkpointed(
            first, _campaign(seed=11), ckpt, every_bins=2,
            source_path=campaign_a,
        )
        # Same checkpoint path, different campaign: must start over.
        pipeline = Pipeline(_config())
        results, resumed = run_checkpointed(
            pipeline, campaign, ckpt, every_bins=2, source_path=campaign_b,
        )
        assert not resumed
        assert results == full
        # And with the matching source it resumes as usual.
        pipeline = Pipeline(_config())
        results, resumed = run_checkpointed(
            pipeline, campaign, ckpt, every_bins=2, source_path=campaign_b,
        )
        assert resumed
        assert results == full

    def test_deeply_nested_payload_rejected(self, tmp_path):
        """A digest-valid payload of pathological nesting raises
        SnapshotError (depth limit) — never RecursionError."""
        import hashlib

        from repro.core import checkpoint as ck

        payload = b"l\x01\x00\x00\x00" * 5000 + b"N"
        digest = hashlib.blake2b(payload, digest_size=16).digest()
        raw = (
            ck.MAGIC
            + ck._HEADER.pack(
                SNAPSHOT_VERSION, b"\x00" * 16, len(payload), digest
            )
            + payload
        )
        path = tmp_path / "deep.ckpt"
        path.write_bytes(raw)
        with pytest.raises(SnapshotError, match="nesting"):
            load_snapshot(path)

    def test_atomic_write_leaves_no_temp(self, valid_checkpoint):
        siblings = list(valid_checkpoint.parent.glob("*.tmp*"))
        assert siblings == []

    def test_save_rejects_bad_fingerprint_length(self, tmp_path):
        snapshot = Pipeline(_config()).snapshot()
        snapshot.fingerprint = b"short"
        with pytest.raises(SnapshotError, match="fingerprint"):
            save_snapshot(tmp_path / "x.ckpt", snapshot)

    def test_fingerprint_covers_detection_params_only(self):
        base = _config()
        assert config_fingerprint(base) == config_fingerprint(
            _config(n_shards=8, executor="process", n_jobs=2)
        )
        assert config_fingerprint(base) != config_fingerprint(
            _config(alpha=0.05)
        )
        assert config_fingerprint(base) != config_fingerprint(
            PipelineConfig()  # different tracked links
        )

    def test_run_checkpointed_validates_every_bins(self, campaign, tmp_path):
        with pytest.raises(ValueError):
            run_checkpointed(
                Pipeline(_config()), campaign, tmp_path / "x.ckpt",
                every_bins=0,
            )


# -- live path: stream feeding the incremental engine ------------------------


class TestStreamFeedsIncrementalEngine:
    def test_dense_stream_equals_batch_run(self, campaign, serial_reference):
        """Pushing the (shuffled) campaign through a dense
        TracerouteStream and processing each closed bin incrementally
        reproduces the batch run exactly — including the empty bins the
        gap produces."""
        from repro.atlas import TracerouteStream

        serial, full = serial_reference
        rng = np.random.default_rng(0)
        shuffled = list(campaign)
        for index in range(0, len(shuffled) - 40, 40):
            window = shuffled[index : index + 40]
            rng.shuffle(window)
            shuffled[index : index + 40] = window
        pipeline = Pipeline(_config())
        stream = TracerouteStream(bin_s=3600, lateness_bins=1, dense=True)
        results = []
        for traceroute in shuffled:
            for start, payload in stream.push(traceroute):
                results.append(pipeline.process_bin(start, payload))
        for start, payload in stream.drain():
            results.append(pipeline.process_bin(start, payload))
        assert results == full
        assert pipeline.stats() == serial.stats()

    def test_resumed_stream_continues_the_clock(
        self, campaign, campaign_bins, serial_reference, tmp_path
    ):
        """Checkpoint mid-stream, rebuild pipeline + stream (with
        start_after), replay the whole feed: the resumed monitor's bins
        complete the uninterrupted sequence."""
        from repro.atlas import TracerouteStream

        serial, full = serial_reference
        k = 4
        first_pipeline = Pipeline(_config())
        first = [
            first_pipeline.process_bin(start, payload)
            for start, payload in campaign_bins[:k]
        ]
        path = tmp_path / "mon.ckpt"
        save_snapshot(path, first_pipeline.snapshot(results=first))
        snapshot = load_snapshot(path, config=_config())
        pipeline = Pipeline(_config())
        pipeline.restore(snapshot)
        stream = TracerouteStream(
            bin_s=3600,
            lateness_bins=1,
            dense=True,
            start_after=snapshot.last_timestamp,
        )
        results = list(snapshot.results)
        for traceroute in campaign:
            for start, payload in stream.push(traceroute):
                results.append(pipeline.process_bin(start, payload))
        for start, payload in stream.drain():
            results.append(pipeline.process_bin(start, payload))
        assert results == full
        assert pipeline.stats() == serial.stats()
        assert stream.dropped_replayed > 0
        assert stream.dropped_late == 0


# -- misc API behaviour ------------------------------------------------------


class TestSnapshotApi:
    def test_snapshot_after_close_raises(self, campaign_bins):
        engine = ShardedPipeline(_config(n_shards=2, executor="serial"))
        engine.process_bin(*campaign_bins[0])
        engine.close()
        with pytest.raises(RuntimeError):
            engine.snapshot()

    def test_empty_engine_snapshot_roundtrip(self, tmp_path):
        """A snapshot of a fresh engine is valid and restorable."""
        engine = ShardedPipeline(_config(n_shards=2, executor="serial"))
        path = tmp_path / "empty.ckpt"
        save_snapshot(path, engine.snapshot())
        loaded = load_snapshot(path, config=_config())
        assert isinstance(loaded, EngineSnapshot)
        restored = Pipeline(_config())
        restored.restore(loaded)
        assert restored.stats().bins_processed == 0

    def test_payload_encoder_is_importable_for_tests(self):
        """_encode_payload exists for corruption-crafting tests."""
        snapshot = Pipeline(_config()).snapshot()
        assert isinstance(_encode_payload(snapshot), bytes)
