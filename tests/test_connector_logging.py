"""Structured-logging tests for the connector layer.

The load-bearing property: the Atlas API key travels only in the
``Authorization`` header and NEVER appears in any log record, however
noisy the transport gets.  Every emitted record is one compact JSON
object, so operators can grep and parse the stream mechanically.
"""

import json
import logging

import pytest

from repro.atlas.connectors import (
    Fault,
    FaultSchedule,
    FaultTolerantClient,
    RetryBudgetExceeded,
    RetryPolicy,
    ScriptedTransport,
)

URL = "https://atlas.example/api/v2/measurements/1/results/?format=json"
PAGES = {URL: b'{"results": [], "next": null}'}
SECRET = "hunter2-atlas-key"

LOGGER_NAME = "repro.atlas.connectors"


def noisy_client(faults=None, max_attempts=4):
    """A key-carrying client over a scripted transport (no real sleeps)."""
    return FaultTolerantClient(
        transport=ScriptedTransport(PAGES, faults=faults),
        policy=RetryPolicy(max_attempts=max_attempts, seed=1),
        api_key=SECRET,
        sleep=lambda _s: None,
    )


class TestSecretHygiene:
    def test_api_key_never_appears_in_any_log_output(self, caplog):
        """Grep every record produced by a retry/give-up storm for the key."""
        with caplog.at_level(logging.DEBUG, logger=LOGGER_NAME):
            client = noisy_client(
                faults=FaultSchedule(
                    {i: Fault(kind="drop") for i in range(10)}
                ),
                max_attempts=3,
            )
            with pytest.raises(RetryBudgetExceeded):
                client.get(URL)
        assert caplog.records  # the storm did log something
        for record in caplog.records:
            assert SECRET not in record.getMessage()
            assert SECRET not in repr(record.__dict__)

    def test_clean_request_with_key_logs_nothing_sensitive(self, caplog):
        with caplog.at_level(logging.DEBUG, logger=LOGGER_NAME):
            assert noisy_client().get(URL).status == 200
        for record in caplog.records:
            assert SECRET not in record.getMessage()


class TestStructuredEvents:
    def test_every_record_is_one_json_object_with_an_event(self, caplog):
        with caplog.at_level(logging.DEBUG, logger=LOGGER_NAME):
            client = noisy_client(
                faults=FaultSchedule({0: Fault(kind="drop")})
            )
            assert client.get(URL).status == 200
        events = []
        for record in caplog.records:
            payload = json.loads(record.getMessage())
            assert isinstance(payload, dict)
            assert "event" in payload
            events.append(payload["event"])
        assert "retry" in events

    def test_give_up_event_reports_reason(self, caplog):
        with caplog.at_level(logging.DEBUG, logger=LOGGER_NAME):
            client = noisy_client(
                faults=FaultSchedule(
                    {i: Fault(kind="drop") for i in range(10)}
                ),
                max_attempts=2,
            )
            with pytest.raises(RetryBudgetExceeded):
                client.get(URL)
        payloads = [json.loads(r.getMessage()) for r in caplog.records]
        give_ups = [p for p in payloads if p["event"] == "give_up"]
        assert give_ups and give_ups[-1]["reason"] in ("attempts", "budget")

    def test_nothing_emitted_below_enabled_level(self, caplog):
        """The logger guard keeps the disabled path allocation-free-ish."""
        with caplog.at_level(logging.ERROR, logger=LOGGER_NAME):
            client = noisy_client(
                faults=FaultSchedule({0: Fault(kind="drop")})
            )
            assert client.get(URL).status == 200
        assert caplog.records == []


class TestCliWiring:
    def test_verbose_handler_is_idempotent(self):
        from repro.cli import _enable_connector_logging

        logger = logging.getLogger(LOGGER_NAME)
        before = list(logger.handlers)
        try:
            _enable_connector_logging()
            _enable_connector_logging()
            added = [h for h in logger.handlers if h not in before]
            assert len(added) == 1
            assert logger.level == logging.DEBUG
        finally:
            for handler in list(logger.handlers):
                if handler not in before:
                    logger.removeHandler(handler)
            logger.setLevel(logging.NOTSET)

    def test_fetch_verbose_streams_json_events(self, tmp_path, capsys):
        """``fetch -v`` over a faulty fixture prints JSON events, no key."""
        from repro.atlas.connectors import paged_results_fixture, write_fixture
        from repro.cli import main
        from tests.test_connector_fetch import BASE_URL, MSM, campaign

        fixture = tmp_path / "fixture.json"
        write_fixture(
            fixture,
            paged_results_fixture(
                campaign(), MSM, page_size=25, base_url=BASE_URL
            ),
        )
        out = tmp_path / "feed.jsonl"
        logger = logging.getLogger(LOGGER_NAME)
        before = list(logger.handlers)
        try:
            code = main(
                ["fetch", "results", "--msm", str(MSM),
                 "--out", str(out), "-v",
                 "--base-url", BASE_URL, "--page-size", "25",
                 "--fixture", str(fixture),
                 "--fault-seed", "7", "--fault-rate", "0.4"]
            )
        finally:
            for handler in list(logger.handlers):
                if handler not in before:
                    logger.removeHandler(handler)
            logger.setLevel(logging.NOTSET)
        captured = capsys.readouterr()
        assert code == 0
        assert SECRET not in captured.err and SECRET not in captured.out
        json_lines = [
            line for line in captured.err.splitlines()
            if line.startswith(LOGGER_NAME)
        ]
        assert json_lines  # the fault schedule produced retries
        for line in json_lines:
            blob = line.split(" ", 2)[2]
            assert "event" in json.loads(blob)
