"""Tests for the end-to-end pipeline (unit level, synthetic traceroutes)."""

import numpy as np
import pytest

from repro.atlas import make_traceroute
from repro.core import Pipeline, PipelineConfig, analyze_campaign
from repro.net import AsMapper


def _stable_bin(t, shift=0.0, rng=None, n_probes=9):
    """One bin of traceroutes crossing link (A, B) from 9 probes / 3 ASes."""
    rng = rng or np.random.default_rng(t)
    traceroutes = []
    for probe in range(n_probes):
        asn = 65001 + probe % 3
        base_a = 10.0 + probe  # per-probe return path offset (ε)
        noise = rng.normal(0, 0.1, size=6)
        traceroutes.append(
            make_traceroute(
                probe,
                f"src{probe}",
                "dst",
                t,
                [
                    [("10.0.0.1", base_a + noise[i]) for i in range(3)],
                    [("10.0.0.2", base_a + 5.0 + shift + noise[3 + i]) for i in range(3)],
                ],
                from_asn=asn,
            )
        )
    return traceroutes


@pytest.fixture
def mapper():
    return AsMapper([("0.0.0.0", 0, 64999)])


class TestPipelineBasics:
    def test_process_bin_counts(self):
        pipeline = Pipeline()
        result = pipeline.process_bin(0, _stable_bin(0))
        assert result.timestamp == 0
        assert result.n_traceroutes == 9
        assert result.n_links_observed == 1
        assert result.n_links_analyzed == 1
        assert result.delay_alarms == []

    def test_run_bins_by_hour(self):
        pipeline = Pipeline()
        traceroutes = _stable_bin(0) + _stable_bin(3600) + _stable_bin(7200)
        results = pipeline.run(traceroutes)
        assert [r.timestamp for r in results] == [0, 3600, 7200]

    def test_dense_bins_include_empty(self):
        pipeline = Pipeline()
        traceroutes = _stable_bin(0) + _stable_bin(7200)
        results = pipeline.run(traceroutes)
        assert len(results) == 3
        assert results[1].n_traceroutes == 0

    def test_delay_alarm_on_shifted_bin(self):
        pipeline = Pipeline()
        for t in range(6):
            pipeline.process_bin(t * 3600, _stable_bin(t * 3600))
        result = pipeline.process_bin(6 * 3600, _stable_bin(6 * 3600, shift=20.0))
        assert len(result.delay_alarms) == 1
        alarm = result.delay_alarms[0]
        assert alarm.link == ("10.0.0.1", "10.0.0.2")
        assert alarm.direction == 1
        assert alarm.n_asns == 3

    def test_diversity_filter_blocks_single_as(self):
        pipeline = Pipeline()
        traceroutes = [
            make_traceroute(
                p, "s", "d", 0,
                [[("A", 10.0)], [("B", 15.0)]],
                from_asn=65001,  # all from one AS
            )
            for p in range(10)
        ]
        result = pipeline.process_bin(0, traceroutes)
        assert result.n_links_observed == 1
        assert result.n_links_analyzed == 0

    def test_forwarding_alarm_on_next_hop_change(self):
        pipeline = Pipeline()
        stable = [
            make_traceroute(p, "s", "d", 0, [[("R", 1.0)], [("N1", 2.0)]])
            for p in range(10)
        ]
        for t in range(5):
            result = pipeline.process_bin(t * 3600, stable)
            assert result.forwarding_alarms == []
        changed = [
            make_traceroute(p, "s", "d", 0, [[("R", 1.0)], [("N2", 2.0)]])
            for p in range(10)
        ]
        result = pipeline.process_bin(5 * 3600, changed)
        assert len(result.forwarding_alarms) == 1
        alarm = result.forwarding_alarms[0]
        assert alarm.router_ip == "R"
        assert alarm.new_hops.get("N2", 0) > 0
        assert alarm.devalued_hops.get("N1", 0) < 0


class TestTrackedLinks:
    def test_tracked_series_recorded(self):
        config = PipelineConfig(track_links={("10.0.0.1", "10.0.0.2")})
        pipeline = Pipeline(config)
        for t in range(4):
            pipeline.process_bin(t * 3600, _stable_bin(t * 3600))
        points = pipeline.tracked[("10.0.0.1", "10.0.0.2")]
        assert len(points) == 4
        assert all(p.observed is not None for p in points)
        assert all(p.accepted for p in points)
        # Reference exists from the third bin on (3-bin warm-up).
        assert points[-1].reference is not None

    def test_tracked_gap_when_no_samples(self):
        """Fig. 11b: bins without RTT samples leave a hole in the series."""
        config = PipelineConfig(track_links={("10.0.0.1", "10.0.0.2")})
        pipeline = Pipeline(config)
        pipeline.process_bin(0, _stable_bin(0))
        pipeline.process_bin(3600, [])  # nothing measured
        points = pipeline.tracked[("10.0.0.1", "10.0.0.2")]
        assert points[1].observed is None
        assert points[1].n_probes == 0

    def test_tracked_alarm_flag(self):
        config = PipelineConfig(track_links={("10.0.0.1", "10.0.0.2")})
        pipeline = Pipeline(config)
        for t in range(6):
            pipeline.process_bin(t * 3600, _stable_bin(t * 3600))
        pipeline.process_bin(6 * 3600, _stable_bin(6 * 3600, shift=25.0))
        points = pipeline.tracked[("10.0.0.1", "10.0.0.2")]
        assert points[-1].alarmed
        assert not points[-2].alarmed


class TestStats:
    def test_campaign_stats(self):
        pipeline = Pipeline()
        for t in range(6):
            pipeline.process_bin(t * 3600, _stable_bin(t * 3600))
        pipeline.process_bin(6 * 3600, _stable_bin(6 * 3600, shift=25.0))
        stats = pipeline.stats()
        assert stats.links_observed == 1
        assert stats.links_analyzed == 1
        assert stats.links_alarmed == 1
        assert stats.fraction_links_alarmed == 1.0
        assert stats.mean_probes_per_link == 9.0
        assert stats.bins_processed == 7
        assert stats.traceroutes_processed == 63
        assert stats.forwarding_models >= 1

    def test_empty_stats(self):
        stats = Pipeline().stats()
        assert stats.fraction_links_alarmed == 0.0
        assert stats.mean_probes_per_link == 0.0


class TestAnalyzeCampaign:
    def test_aggregation_wired(self, mapper):
        traceroutes = []
        for t in range(6):
            traceroutes.extend(_stable_bin(t * 3600))
        traceroutes.extend(_stable_bin(6 * 3600, shift=25.0))
        analysis = analyze_campaign(traceroutes, mapper)
        assert len(analysis.bin_results) == 7
        assert len(analysis.delay_alarms) == 1
        series = analysis.aggregator.delay_series
        assert 64999 in series
        assert series[64999].values[6] > 0

    def test_empty_campaign(self, mapper):
        analysis = analyze_campaign([], mapper)
        assert analysis.bin_results == []
        assert analysis.delay_alarms == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(bin_s=0)
