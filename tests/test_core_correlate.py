"""Tests for cross-method event correlation."""

import pytest

from repro.core import (
    AlarmAggregator,
    CorrelatedEvent,
    DelayAlarm,
    ForwardingAlarm,
    correlate_events,
)
from repro.net import AsMapper
from repro.stats import WilsonInterval


@pytest.fixture
def mapper():
    return AsMapper([("10.1.0.0", 16, 3356), ("10.2.0.0", 16, 3549)])


def _delay_alarm(ts, near, far, deviation=20.0):
    return DelayAlarm(
        timestamp=ts,
        link=(near, far),
        observed=WilsonInterval(20.0, 19.5, 20.5, 50),
        reference=WilsonInterval(5.0, 4.8, 5.2, 50),
        deviation=deviation,
        direction=1,
        n_probes=10,
        n_asns=4,
    )


def _fwd_alarm(ts, responsibilities):
    return ForwardingAlarm(
        timestamp=ts,
        router_ip="10.1.0.1",
        destination="dst",
        correlation=-0.8,
        responsibilities=responsibilities,
        pattern={},
        reference={},
    )


def _leak_like_aggregator(mapper):
    """200 quiet hours; hours 150-151 carry both delay and forwarding
    evidence in both ASes (a §7.2-style disruption)."""
    agg = AlarmAggregator(mapper, bin_s=3600, start=0)
    for hour in range(200):
        if hour % 17 == 0:
            agg.add_delay_alarm(
                _delay_alarm(hour * 3600, "10.1.0.1", "10.1.0.2", 0.3)
            )
    for hour in (150, 151):
        for _ in range(15):
            agg.add_delay_alarm(
                _delay_alarm(hour * 3600, "10.1.0.1", "10.2.0.2")
            )
            agg.add_forwarding_alarm(
                _fwd_alarm(hour * 3600, {"10.1.0.9": -0.6, "10.2.0.9": -0.5})
            )
    agg.close(199 * 3600)
    return agg


class TestCorrelateEvents:
    def test_single_disruption_single_event(self, mapper):
        agg = _leak_like_aggregator(mapper)
        events = correlate_events(agg, window_bins=100)
        assert len(events) == 1
        event = events[0]
        assert event.both_methods
        assert set(event.asns) == {3356, 3549}
        assert event.start_timestamp // 3600 == 150
        assert event.end_timestamp // 3600 == 151
        assert event.duration_bins == 2
        assert event.severity > 5

    def test_distinct_disruptions_stay_separate(self, mapper):
        agg = AlarmAggregator(mapper, bin_s=3600, start=0)
        for hour in (50, 120):
            for _ in range(15):
                agg.add_delay_alarm(
                    _delay_alarm(hour * 3600, "10.1.0.1", "10.1.0.2")
                )
        agg.close(200 * 3600)
        events = correlate_events(agg, window_bins=80)
        assert len(events) == 2
        hours = sorted(e.start_timestamp // 3600 for e in events)
        assert hours == [50, 120]
        assert all(not e.both_methods for e in events)

    def test_gap_bins_merging(self, mapper):
        agg = AlarmAggregator(mapper, bin_s=3600, start=0)
        for hour in (50, 52):  # one quiet bin between
            for _ in range(15):
                agg.add_delay_alarm(
                    _delay_alarm(hour * 3600, "10.1.0.1", "10.1.0.2")
                )
        agg.close(150 * 3600)
        merged = correlate_events(agg, window_bins=60, gap_bins=2)
        split = correlate_events(agg, window_bins=60, gap_bins=0)
        assert len(merged) == 1
        assert len(split) == 2

    def test_empty_aggregator(self, mapper):
        events = correlate_events(AlarmAggregator(mapper))
        assert events == []

    def test_validation(self, mapper):
        with pytest.raises(ValueError):
            correlate_events(AlarmAggregator(mapper), gap_bins=-1)

    def test_sorted_by_severity(self, mapper):
        agg = AlarmAggregator(mapper, bin_s=3600, start=0)
        for hour, dev in ((50, 10.0), (120, 50.0)):
            for _ in range(15):
                agg.add_delay_alarm(
                    _delay_alarm(hour * 3600, "10.1.0.1", "10.1.0.2", dev)
                )
        agg.close(200 * 3600)
        events = correlate_events(agg, window_bins=80)
        assert events[0].start_timestamp // 3600 == 120
        assert events[0].severity > events[1].severity
