"""Async HTTP tier tests: byte-identity with the sync tier, at scale.

The asyncio front end's contract is *byte identity*: for any request,
the status, body and ETag must equal the threading server's — both
answer through one :class:`~repro.service.http.ServiceState`.  These
tests drive that matrix (success, batch, 400/404 and 304 paths), the
tier's own machinery (keep-alive framing, single-flight coalescing,
``SO_REUSEPORT`` worker pools), and the hard case: both tiers serving
identical answers while a writer appends and the compactor rewrites
the store underneath them.
"""

import json
import random
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import (
    AlarmStoreWriter,
    CompactionPolicy,
    StoreError,
    compact_store,
    make_server,
)
from repro.service.aio import AsyncServerThread, start_worker_pool

from tests.test_service_store import (
    BIN_S,
    build_store,
    make_mapper,
    synthetic_bins,
)

#: The request matrix both tiers must answer identically: every route,
#: the batch forms, and each validation-bugfix rejection (ISSUE 9).
MATRIX = [
    "/health/65001",
    "/health/AS65002",
    "/health/99999",
    "/health?asns=65001,65002,65010",
    "/links/65001",
    "/links/65002",
    "/events?kind=delay&threshold=0.5&limit=5",
    "/events?kind=forwarding&threshold=0.5&limit=5&start=0&end=99999999",
    "/top?kind=delay&k=3",
    "/top?kinds=delay,forwarding&k=2",
    "/nonsense",
    "/events?threshold=nan",
    "/events?threshold=inf",
    "/events?threshold=1e999",
    "/events?limit=1_0",
    "/top?k=%2B2",
    "/health/%2B5",
]


def sync_get(base: str, target: str, headers=None):
    """GET via urllib against the sync tier; errors return their body."""
    request = urllib.request.Request(base + target, headers=headers or {})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


class KeepAliveClient:
    """A raw HTTP/1.1 keep-alive client for the asyncio tier.

    ``urllib`` opens one connection per request; this client exercises
    the persistent-connection framing the async tier is built around —
    and can split :meth:`send` from :meth:`read_response` so tests can
    put many requests in flight concurrently.
    """

    def __init__(self, port: int, host: str = "127.0.0.1") -> None:
        self.sock = socket.create_connection((host, port), timeout=30)
        self.file = self.sock.makefile("rb")

    def send(self, target: str, headers=None) -> None:
        lines = [f"GET {target} HTTP/1.1", "Host: test"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        self.sock.sendall(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))

    def read_response(self):
        status_line = self.file.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = self.file.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        body = self.file.read(length) if length else b""
        return status, headers, body

    def get(self, target: str, headers=None):
        self.send(target, headers)
        return self.read_response()

    def close(self) -> None:
        self.file.close()
        self.sock.close()


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """One store served by both tiers (async with exact freshness)."""
    directory = tmp_path_factory.mktemp("aio") / "store"
    mapper = make_mapper()
    bins = synthetic_bins(6, seed=29)
    build_store(directory, bins, mapper, chunk=2)
    sync_server = make_server(directory, port=0, window_bins=4)
    sync_thread = threading.Thread(
        target=sync_server.serve_forever, daemon=True
    )
    sync_thread.start()
    host, port = sync_server.server_address[:2]
    with AsyncServerThread(
        directory, window_bins=4, token_ttl=0.0
    ) as async_server:
        yield {
            "directory": directory,
            "mapper": mapper,
            "bins": bins,
            "sync_base": f"http://{host}:{port}",
            "async_port": async_server.port,
            "async_server": async_server,
        }
    sync_server.shutdown()
    sync_server.server_close()


class TestByteIdentity:
    def test_matrix_matches_sync_tier_exactly(self, stack):
        """Same status, same bytes, same ETag for every matrix request."""
        client = KeepAliveClient(stack["async_port"])
        try:
            for target in MATRIX:
                s_status, s_headers, s_body = sync_get(
                    stack["sync_base"], target
                )
                a_status, a_headers, a_body = client.get(target)
                assert a_status == s_status, target
                assert a_body == s_body, target
                assert a_headers.get("etag") == s_headers.get("ETag"), target
                assert a_headers.get("retry-after") == s_headers.get(
                    "Retry-After"
                ), target
        finally:
            client.close()

    def test_index_reports_same_store(self, stack):
        """``/`` embeds per-tier cache stats; the store half must agree."""
        _, _, s_body = sync_get(stack["sync_base"], "/")
        client = KeepAliveClient(stack["async_port"])
        try:
            _, _, a_body = client.get("/")
        finally:
            client.close()
        assert json.loads(a_body)["store"] == json.loads(s_body)["store"]

    def test_if_none_match_rfc_forms(self, stack):
        """List, ``*`` and ``W/`` forms all revalidate to 304 (RFC 9110)."""
        target = "/top?kind=delay&k=3"
        client = KeepAliveClient(stack["async_port"])
        try:
            _, headers, _ = client.get(target)
            etag = headers["etag"]
            for header in (
                etag,
                f'"zzz", {etag}',
                "*",
                f"W/{etag}",
            ):
                status, h304, body = client.get(
                    target, {"If-None-Match": header}
                )
                assert status == 304, header
                assert body == b""
                assert h304["etag"] == etag
            status, _, _ = client.get(target, {"If-None-Match": '"zzz"'})
            assert status == 200
        finally:
            client.close()


class TestConnectionHandling:
    def test_keep_alive_serves_many_requests(self, stack):
        client = KeepAliveClient(stack["async_port"])
        try:
            first = client.get("/health/65001")
            for _ in range(3):
                assert client.get("/health/65001") == first
        finally:
            client.close()

    def test_connection_close_is_honoured(self, stack):
        client = KeepAliveClient(stack["async_port"])
        try:
            status, headers, _ = client.get(
                "/health/65001", {"Connection": "close"}
            )
            assert status == 200
            assert headers.get("connection") == "close"
            assert client.file.read() == b""  # server closed after reply
        finally:
            client.close()

    def test_malformed_request_line_is_rejected(self, stack):
        sock = socket.create_connection(
            ("127.0.0.1", stack["async_port"]), timeout=30
        )
        try:
            sock.sendall(b"NONSENSE\r\n\r\n")
            reply = sock.makefile("rb").readline()
            assert b"400" in reply
        finally:
            sock.close()

    def test_non_get_method_gets_501(self, stack):
        client = KeepAliveClient(stack["async_port"])
        try:
            client.sock.sendall(
                b"POST /health/65001 HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            status, _, body = client.read_response()
            assert status == 501
            assert b"unsupported method" in body
        finally:
            client.close()


class TestSingleFlight:
    def test_concurrent_misses_compute_once(self, tmp_path):
        """N simultaneous misses on one key → one engine computation."""
        directory = tmp_path / "store"
        build_store(directory, synthetic_bins(6, seed=37), make_mapper())
        with AsyncServerThread(
            directory, window_bins=4, token_ttl=60.0
        ) as server:
            warm = KeepAliveClient(server.port)
            warm.get("/health/65001")  # prime the token probe
            warm.close()
            state = server.service.state
            original = state.compute
            calls = []

            def slow_compute(route, params):
                calls.append(route)
                time.sleep(0.3)
                return original(route, params)

            state.compute = slow_compute
            clients = [KeepAliveClient(server.port) for _ in range(6)]
            try:
                target = "/top?kind=forwarding&k=4"
                for client in clients:
                    client.send(target)
                replies = [client.read_response() for client in clients]
            finally:
                for client in clients:
                    client.close()
            assert len(calls) == 1  # coalesced: one compute for six waiters
            assert len({body for _, _, body in replies}) == 1
            assert len({h["etag"] for _, h, _ in replies}) == 1
            assert server.service.misses >= 6
            # The computed entry is cached: the next request is a pure hit.
            hits_before = server.service.hits
            follow_up = KeepAliveClient(server.port)
            try:
                follow_up.get(target)
            finally:
                follow_up.close()
            assert len(calls) == 1
            assert server.service.hits == hits_before + 1


class TestWorkerPool:
    def test_pool_serves_identically_then_stops(self, tmp_path):
        directory = tmp_path / "store"
        build_store(directory, synthetic_bins(6, seed=41), make_mapper())
        sync_server = make_server(directory, port=0, window_bins=4)
        thread = threading.Thread(
            target=sync_server.serve_forever, daemon=True
        )
        thread.start()
        host, port = sync_server.server_address[:2]
        base = f"http://{host}:{port}"
        pool = start_worker_pool(
            directory, workers=2, window_bins=4, token_ttl=0.0
        )
        try:
            assert pool.alive() == 2
            # Several connections so the kernel spreads the accepts.
            for _ in range(3):
                client = KeepAliveClient(pool.port)
                try:
                    for target in MATRIX[:6]:
                        s_status, s_headers, s_body = sync_get(base, target)
                        a_status, a_headers, a_body = client.get(target)
                        assert (a_status, a_body) == (s_status, s_body)
                        assert a_headers.get("etag") == s_headers.get("ETag")
                finally:
                    client.close()
        finally:
            pool.stop()
            sync_server.shutdown()
            sync_server.server_close()
        assert pool.alive() == 0


class TestLiveStoreEquivalence:
    """Both tiers, one store, a live writer and a running compactor."""

    def test_tiers_agree_while_store_churns(self, tmp_path):
        mapper = make_mapper()
        bins = synthetic_bins(16, seed=43)
        directory = tmp_path / "store"
        build_store(directory, bins[:6], mapper, chunk=2)
        sync_server = make_server(directory, port=0, window_bins=4)
        sync_thread = threading.Thread(
            target=sync_server.serve_forever, daemon=True
        )
        sync_thread.start()
        host, port = sync_server.server_address[:2]
        base = f"http://{host}:{port}"
        stop_compactor = threading.Event()
        failures = []

        def writer_loop():
            writer = AlarmStoreWriter.open_or_create(
                directory, mapper, bin_s=BIN_S
            )
            for result in bins[6:]:
                for _ in range(10):
                    try:
                        writer.append_bins([result])
                        break
                    except StoreError:
                        writer.reload()  # the compactor got there first
                else:  # pragma: no cover - would mean a livelock
                    failures.append("writer starved by compactor")
                    return
                time.sleep(0.01)

        def compactor_loop():
            while not stop_compactor.is_set():
                try:
                    compact_store(
                        directory, CompactionPolicy(max_segments=3)
                    )
                except StoreError as exc:  # pragma: no cover - unexpected
                    failures.append(f"compactor failed: {exc}")
                    return
                time.sleep(0.03)

        with AsyncServerThread(
            directory, window_bins=4, token_ttl=0.0
        ) as async_server:
            client = KeepAliveClient(async_server.port)
            writer_thread = threading.Thread(target=writer_loop)
            compactor_thread = threading.Thread(target=compactor_loop)
            writer_thread.start()
            compactor_thread.start()
            rng = random.Random(7)
            targets = [t for t in MATRIX if "nonsense" not in t]
            body_by_etag = {}
            iterations = 0
            try:
                while writer_thread.is_alive() or iterations < 60:
                    iterations += 1
                    target = rng.choice(targets)
                    for status, headers, body in (
                        sync_get(base, target),
                        client.get(target),
                    ):
                        if status == 503:
                            continue  # transient: manifest mid-swap
                        if status == 200:
                            # One token, one answer: any ETag seen from
                            # either tier must always name the same bytes.
                            etag = headers.get("etag", headers.get("ETag"))
                            assert etag is not None, (target, status)
                            key = etag
                        else:
                            # 400s carry no ETag; their bodies depend
                            # only on the offending parameter.
                            key = (target, status)
                        assert body_by_etag.setdefault(key, body) == body
            finally:
                writer_thread.join(timeout=60)
                stop_compactor.set()
                compactor_thread.join(timeout=60)
            assert not failures, failures
            # The churn was real: answers from more than one generation
            # token were observed (ETags are "g{token}-{digest}").
            tokens = {
                key.split("-", 1)[0]
                for key in body_by_etag
                if isinstance(key, str)
            }
            assert len(tokens) > 1
            # Quiesced: the strict matrix must now agree byte for byte.
            for target in MATRIX:
                s_status, s_headers, s_body = sync_get(base, target)
                a_status, a_headers, a_body = client.get(target)
                assert (a_status, a_body) == (s_status, s_body), target
                assert a_headers.get("etag") == s_headers.get(
                    "ETag"
                ), target
            client.close()
        sync_server.shutdown()
        sync_server.server_close()
