"""Ground-truth label emission tests, including the coverage property.

Every scenario class must emit labels derived from exactly the
perturbation it applies.  The Hypothesis property builds random
``CompositeScenario``s out of fuzzer-sampled members and checks the
emitted labels *exactly* cover the union of the members' perturbation
windows/edges: no label outside a member window, no perturbed
(edge, window) unlabeled.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quality import GroundTruth
from repro.simulation import (
    LOSS_LABEL_FLOOR,
    BgpHijackScenario,
    CatchmentShiftScenario,
    CompositeScenario,
    DdosScenario,
    DiurnalCongestionScenario,
    IxpOutageScenario,
    ProbeChurnScenario,
    RouteLeakScenario,
    Scenario,
    ScenarioFuzzer,
    WindowedLinkScenario,
)
from repro.simulation import build_topology

WINDOW = (10 * 3600, 12 * 3600)


@pytest.fixture(scope="module")
def topo():
    return build_topology(seed=21)


class TestPerScenarioEmission:
    def test_neutral_is_unlabeled(self):
        assert Scenario().ground_truth() == GroundTruth()

    def test_ddos_labels_every_perturbed_edge(self, topo):
        kroot = topo.services["K-root"]
        windows = [WINDOW, (16 * 3600, 17 * 3600)]
        ddos = DdosScenario(
            topo, "K-root", [kroot.instances[0].node], windows=windows, seed=3
        )
        truth = ddos.ground_truth()
        assert truth.forwarding == ()  # 5% loss is below the label floor
        assert len(truth.delay) == len(ddos.perturbed_edges) * len(windows)
        assert all(lbl.ip for lbl in truth.delay)
        assert all(lbl.shift_ms > 0 for lbl in truth.delay)
        assert truth.events() == [ddos.name]
        assert set(truth.windows()) == set(map(tuple, windows))

    def test_outage_labels_are_loss_forwarding(self, topo):
        outage = IxpOutageScenario(topo, ixp_asn=1200, window=WINDOW)
        truth = outage.ground_truth()
        assert truth.delay == ()
        assert len(truth.forwarding) == len(outage.perturbed_edges)
        assert all(lbl.kind == "loss" for lbl in truth.forwarding)
        assert all(lbl.ip for lbl in truth.forwarding)

    def test_leak_emits_delay_and_reroute_labels(self, topo):
        leak = RouteLeakScenario(
            topo,
            leak_waypoint=topo.routers_of_as(4788)[0],
            leak_entry=topo.routers_of_as(3549)[0],
            leaked_targets={a.name for a in topo.anchors[:3]},
            window=WINDOW,
            seed=5,
        )
        truth = leak.ground_truth()
        assert len(truth.delay) == len(
            [e for e in leak.perturbed_edges]
        )
        reroutes = [l for l in truth.forwarding if l.kind == "reroute"]
        assert reroutes
        anchor_ips = {a.ip for a in topo.anchors[:3]}
        assert {l.destination for l in reroutes} <= anchor_ips
        assert all(l.edge is None for l in reroutes)

    def test_catchment_shift_is_forwarding_only(self, topo):
        scenario = CatchmentShiftScenario.largest_shift(
            topo, "K-root", WINDOW
        )
        truth = scenario.ground_truth()
        assert scenario.shifted_probes
        assert truth.delay == ()
        assert truth.forwarding
        service_ip = topo.services["K-root"].service_ip
        assert all(l.destination == service_ip for l in truth.forwarding)

    def test_hijack_exact_is_subset_of_subprefix(self, topo):
        hijacker = topo.routers_of_as(174)[0]
        targets = [topo.anchors[0].name]
        sub = BgpHijackScenario(
            topo, hijacker, targets, WINDOW, mode="subprefix"
        )
        exact = BgpHijackScenario(
            topo, hijacker, targets, WINDOW, mode="exact"
        )
        name = targets[0]
        assert exact.captured[name] <= sub.captured[name]
        assert len(sub.captured[name]) == len(topo.probes)
        assert sub.ground_truth().forwarding

    def test_diurnal_labels_peak_and_cover_window(self, topo):
        scenario = DiurnalCongestionScenario(
            topo, windows=[WINDOW], asn=174, seed=2
        )
        truth = scenario.ground_truth()
        assert len(truth.delay) == len(scenario.perturbed_edges)
        mid = (WINDOW[0] + WINDOW[1]) // 2
        for lbl in truth.delay:
            assert lbl.window == WINDOW
            assert lbl.shift_ms == scenario.peak_shift_ms(lbl.edge)
            # The applied ramp never exceeds the labeled peak and hits
            # it (within float error) at the window midpoint.
            applied = scenario.extra_delay_ms(*lbl.edge, mid)
            assert applied == pytest.approx(lbl.shift_ms, rel=1e-9)
            assert scenario.extra_delay_ms(*lbl.edge, WINDOW[0]) == 0.0

    def test_churn_is_unlabeled(self, topo):
        scenario = ProbeChurnScenario(topo, windows=[WINDOW], seed=1)
        assert scenario.ground_truth() == GroundTruth()
        assert scenario.churned_probes

    def test_composite_merges_and_disambiguates(self, topo):
        kroot = topo.services["K-root"]
        a = DdosScenario(
            topo, "K-root", [kroot.instances[0].node], [WINDOW], seed=1
        )
        b = DdosScenario(
            topo, "K-root", [kroot.instances[1].node], [WINDOW], seed=2
        )
        combo = CompositeScenario([a, b])
        truth = combo.ground_truth()
        assert truth.events() == ["ddos:K-root", "ddos:K-root#2"]
        assert len(truth.delay) == len(a.ground_truth().delay) + len(
            b.ground_truth().delay
        )


def _expected_perturbation_labels(member):
    """(edge, window, magnitude) multisets a member's labels must cover."""
    delay = Counter()
    loss = Counter()
    if isinstance(member, WindowedLinkScenario):
        pert = member._perturbation
        for window in member.windows():
            for edge in pert.edges:
                shift = pert.delay_shift_ms.get(edge, 0.0)
                if shift > 0.0:
                    delay[(edge, tuple(window), shift)] += 1
                if pert.loss.get(edge, 0.0) >= LOSS_LABEL_FLOOR:
                    loss[(edge, tuple(window))] += 1
    elif isinstance(member, RouteLeakScenario):
        for window in member.windows():
            for edge in sorted(member.perturbed_edges):
                shift = member._delay_shift.get(edge, 0.0)
                if shift > 0.0:
                    delay[(edge, tuple(window), shift)] += 1
                if member._loss.get(edge, 0.0) >= LOSS_LABEL_FLOOR:
                    loss[(edge, tuple(window))] += 1
    elif isinstance(member, DiurnalCongestionScenario):
        for window in member.windows():
            for edge in sorted(member.perturbed_edges):
                delay[(edge, tuple(window), member.peak_shift_ms(edge))] += 1
    return delay, loss


class TestCompositeCoverageProperty:
    """Satellite: labels exactly cover member perturbation windows/edges."""

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10**6), n_members=st.integers(1, 4))
    def test_labels_exactly_cover_member_perturbations(
        self, topology_module, seed, n_members
    ):
        fuzzer = ScenarioFuzzer(topology_module, seed=seed)
        members = [fuzzer.sample_member() for _ in range(n_members)]
        composite = CompositeScenario(members)
        truth = composite.ground_truth()

        expected_delay = Counter()
        expected_loss = Counter()
        for member in members:
            d, l = _expected_perturbation_labels(member)
            expected_delay.update(d)
            expected_loss.update(l)

        # Every perturbed (edge, window) is labeled with the applied
        # magnitude, and no delay label exists beyond the perturbations.
        got_delay = Counter(
            (lbl.edge, lbl.window, lbl.shift_ms) for lbl in truth.delay
        )
        assert got_delay == expected_delay

        # Loss labels likewise; reroute labels carry no edge but must
        # stay inside some member's windows.
        got_loss = Counter(
            (lbl.edge, lbl.window)
            for lbl in truth.forwarding
            if lbl.kind == "loss"
        )
        assert got_loss == expected_loss

        member_windows = {
            tuple(w) for member in members for w in member.windows()
        }
        for lbl in truth.forwarding:
            if lbl.kind == "reroute":
                assert lbl.window in member_windows
                assert lbl.ip

    @pytest.fixture(scope="class")
    def topology_module(self):
        return build_topology(seed=21)


class TestFuzzerDeterminism:
    def test_same_seed_same_scenarios(self, topo):
        a = ScenarioFuzzer(topo, seed=99).sample(3)
        b = ScenarioFuzzer(topo, seed=99).sample(3)
        assert a.name == b.name
        assert a.ground_truth() == b.ground_truth()

    def test_different_seeds_differ(self, topo):
        names = {
            ScenarioFuzzer(topo, seed=s).sample(3).name for s in range(6)
        }
        assert len(names) > 1

    def test_random_topology_fuzzer_is_labeled(self):
        fuzzer = ScenarioFuzzer.on_random_topology(seed=5)
        composite = fuzzer.sample(3)
        # Churn members may be unlabeled; across three sampled events at
        # least the windows must be present and consistent.
        assert composite.windows()
        truth = fuzzer.topology and composite.ground_truth()
        assert isinstance(truth, GroundTruth)

    def test_rejects_unknown_family(self, topo):
        with pytest.raises(ValueError):
            ScenarioFuzzer(topo, families=["nope"])
