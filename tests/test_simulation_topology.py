"""Tests for the synthetic topology builder."""

import networkx as nx
import pytest

from repro.net import AsMapper, ip_in_prefix
from repro.simulation import (
    IXP_ASES,
    LEAKER_AS,
    TIER1_ASES,
    TopologyParams,
    build_topology,
)


@pytest.fixture(scope="module")
def topo():
    return build_topology(seed=7)


class TestStructure:
    def test_named_ases_present(self, topo):
        for asn, _ in TIER1_ASES:
            assert asn in topo.ases
            assert topo.ases[asn].tier == 1
        for asn, _ in IXP_ASES:
            assert asn in topo.ases
            assert topo.ases[asn].tier == 0
        assert LEAKER_AS[0] in topo.ases

    def test_counts_follow_params(self, topo):
        params = topo.params
        assert len(topo.probes) == params.n_probes
        assert len(topo.anchors) == params.n_anchors
        stubs = [a for a in topo.ases.values() if a.tier == 3 and a.name.startswith("Stub")]
        assert len(stubs) == params.n_stub

    def test_graph_strongly_connected_over_routers(self, topo):
        """Every probe must reach every anchor and vice versa."""
        real_nodes = [
            n for n, d in topo.graph.nodes(data=True) if not d.get("virtual")
        ]
        subgraph = topo.graph.subgraph(real_nodes)
        assert nx.is_strongly_connected(subgraph)

    def test_every_edge_has_required_attributes(self, topo):
        for u, v, data in topo.graph.edges(data=True):
            assert "base_delay_ms" in data
            assert "weight" in data
            assert "loss" in data
            if not topo.graph.nodes[v].get("virtual"):
                assert data["ingress_ip"] is not None
                assert data["base_delay_ms"] > 0

    def test_asymmetric_weights(self, topo):
        """Opposite directions of a link must (usually) differ in weight."""
        diffs = []
        for u, v, data in topo.graph.edges(data=True):
            if topo.graph.has_edge(v, u):
                diffs.append(data["weight"] != topo.graph[v][u]["weight"])
        assert sum(diffs) / len(diffs) > 0.9

    def test_deterministic_given_seed(self):
        a = build_topology(seed=3)
        b = build_topology(seed=3)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())
        assert [p.ip for p in a.probes] == [p.ip for p in b.probes]

    def test_different_seeds_differ(self):
        a = build_topology(seed=3)
        b = build_topology(seed=4)
        assert sorted(a.graph.edges()) != sorted(b.graph.edges())


class TestAddressing:
    def test_prefix_table_covers_probe_ips(self, topo):
        mapper = AsMapper(topo.prefix_table())
        for probe in topo.probes:
            assert mapper.asn_of(probe.ip) == probe.asn

    def test_ingress_ips_belong_to_claimed_as(self, topo):
        mapper = AsMapper(topo.prefix_table())
        for u, v, data in topo.graph.edges(data=True):
            ip = data.get("ingress_ip")
            if ip is None:
                continue
            assert mapper.asn_of(ip) == data["ingress_asn"], (u, v, ip)

    def test_service_ips_map_to_service_asn(self, topo):
        mapper = AsMapper(topo.prefix_table())
        for service in topo.services.values():
            assert mapper.asn_of(service.service_ip) == service.asn

    def test_ixp_lan_edges_in_ixp_prefix(self, topo):
        for ixp_asn, _ in IXP_ASES:
            edges = topo.ixp_lan_edges(ixp_asn)
            assert edges, f"AS{ixp_asn} has no LAN edges"
            prefix = topo.ases[ixp_asn]
            for u, v in edges:
                ip = topo.graph[u][v]["ingress_ip"]
                assert ip_in_prefix(ip, prefix.prefix, prefix.prefix_len)

    def test_unique_interface_ips(self, topo):
        """No two interfaces share an address (except anycast service IPs)."""
        service_ips = {s.service_ip for s in topo.services.values()}
        seen = set()
        for _, _, data in topo.graph.edges(data=True):
            ip = data.get("ingress_ip")
            if ip is None or ip in service_ips:
                continue
            assert ip not in seen, f"duplicate interface ip {ip}"
            seen.add(ip)


class TestAnycast:
    def test_kroot_has_multiple_instances(self, topo):
        kroot = topo.services["K-root"]
        assert len(kroot.instances) >= 3
        assert kroot.service_ip == "193.0.14.129"
        assert kroot.asn == 25152

    def test_instances_not_in_leaker_as(self, topo):
        for service in topo.services.values():
            for instance in service.instances:
                assert instance.host_asn != LEAKER_AS[0]

    def test_last_hop_edges_report_service_ip(self, topo):
        edges = topo.service_last_hop_edges("K-root")
        assert edges
        kroot = topo.services["K-root"]
        instance_nodes = {i.node for i in kroot.instances}
        for _, v in edges:
            assert v in instance_nodes

    def test_virtual_sink_reachable_from_instances(self, topo):
        kroot = topo.services["K-root"]
        for instance in kroot.instances:
            assert topo.graph.has_edge(instance.node, kroot.virtual_node)


class TestCustomParams:
    def test_small_topology(self):
        params = TopologyParams(n_tier2=2, n_stub=4, n_probes=8, n_anchors=2)
        topo = build_topology(params, seed=1)
        assert len(topo.probes) == 8
        assert len(topo.anchors) == 2

    def test_unresponsive_routers_exist_with_high_fraction(self):
        params = TopologyParams(unresponsive_fraction=0.5)
        topo = build_topology(params, seed=5)
        responsive = [r.responsive for r in topo.routers.values()]
        assert not all(responsive)
