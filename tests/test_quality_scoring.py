"""Exact-value tests for the quality scoring module.

Hand-built alarm/label fixtures pin precision, recall, F1 and
time-to-detection to known values, including the edge cases: zero
alarms, zero labels, tolerance-boundary matches, duplicate alarms,
strict vs default false-positive accounting, and JSON round-trips.
"""

import pytest

from repro.core.alarms import DelayAlarm, ForwardingAlarm
from repro.quality import (
    DelayLabel,
    ForwardingLabel,
    GroundTruth,
    MatchConfig,
    score_alarms,
    score_bin_results,
)
from repro.stats.wilson import WilsonInterval

H = 3600


def delay_alarm(timestamp, link):
    """DelayAlarm with placeholder statistics (scoring ignores them)."""
    obs = WilsonInterval(median=20.0, lower=18.0, upper=22.0, n=30)
    ref = WilsonInterval(median=10.0, lower=9.0, upper=11.0, n=30)
    return DelayAlarm(
        timestamp=timestamp,
        link=link,
        observed=obs,
        reference=ref,
        deviation=5.0,
        direction=1,
        n_probes=5,
        n_asns=4,
    )


def fwd_alarm(timestamp, router_ip, destination="198.18.0.1", resp=None):
    """ForwardingAlarm with placeholder pattern statistics."""
    return ForwardingAlarm(
        timestamp=timestamp,
        router_ip=router_ip,
        destination=destination,
        correlation=-0.8,
        responsibilities=resp or {"10.0.0.9": -1.0, "*": 0.5},
        pattern={"*": 3.0},
        reference={"10.0.0.9": 3.0},
    )


def delay_label(ip="10.0.0.1", start=10 * H, end=12 * H, event="e1"):
    return DelayLabel(
        edge=("u", "v"), ip=ip, start=start, end=end, shift_ms=15.0,
        event=event,
    )


class TestExactValues:
    def test_perfect_detection(self):
        """Alarms in every labeled bin: precision = recall = F1 = 1, TTD 0."""
        truth = GroundTruth(delay=(delay_label(),))
        alarms = [
            delay_alarm(10 * H + 60, ("10.0.0.1", "10.0.0.2")),
            delay_alarm(11 * H + 60, ("10.0.0.2", "10.0.0.1")),
        ]
        report = score_alarms(truth, alarms, [], MatchConfig(tolerance_bins=0))
        assert report.true_positives == 2
        assert report.false_positives == 0
        assert report.n_units == 2  # bins 10 and 11
        assert report.n_covered == 2
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0
        assert report.ttd_bins == 0
        assert report.events[0].event == "e1"
        assert report.events[0].n_labels_matched == 1

    def test_half_recall_and_ttd(self):
        """One of two labeled bins covered, first match one bin late."""
        truth = GroundTruth(delay=(delay_label(),))
        alarms = [delay_alarm(11 * H + 5, ("10.0.0.1", "10.9.9.9"))]
        report = score_alarms(truth, alarms, [], MatchConfig(tolerance_bins=0))
        assert report.recall == 0.5
        assert report.precision == 1.0
        assert report.f1 == pytest.approx(2 * 0.5 / 1.5)
        assert report.events[0].ttd_bins == 1

    def test_false_positive_out_of_window(self):
        """A quiet-period alarm on the labeled IP is a false positive."""
        truth = GroundTruth(delay=(delay_label(),))
        alarms = [
            delay_alarm(10 * H, ("10.0.0.1", "x")),  # TP
            delay_alarm(20 * H, ("10.0.0.1", "x")),  # FP: far outside
        ]
        report = score_alarms(truth, alarms, [], MatchConfig(tolerance_bins=0))
        assert report.true_positives == 1
        assert report.false_positives == 1
        assert report.precision == 0.5

    def test_wrong_ip_in_window_ignored_by_default(self):
        """In-window alarms on unlabeled IPs are event collateral."""
        truth = GroundTruth(delay=(delay_label(),))
        alarms = [delay_alarm(10 * H, ("172.16.0.1", "172.16.0.2"))]
        report = score_alarms(truth, alarms, [], MatchConfig(tolerance_bins=0))
        assert report.ignored == 1
        assert report.false_positives == 0
        assert report.precision == 1.0  # nothing judged

    def test_strict_mode_counts_collateral(self):
        truth = GroundTruth(delay=(delay_label(),))
        alarms = [delay_alarm(10 * H, ("172.16.0.1", "172.16.0.2"))]
        report = score_alarms(
            truth, alarms, [], MatchConfig(tolerance_bins=0, strict=True)
        )
        assert report.false_positives == 1
        assert report.ignored == 0
        assert report.precision == 0.0


class TestEdgeCases:
    def test_zero_alarms(self):
        truth = GroundTruth(delay=(delay_label(),))
        report = score_alarms(truth, [], [], MatchConfig())
        assert report.precision == 1.0  # vacuous: nothing judged
        assert report.recall == 0.0
        assert report.f1 == 0.0
        assert report.ttd_bins is None
        assert not report.events[0].detected

    def test_zero_labels(self):
        """Unlabeled scenario (probe churn): every alarm is an FP."""
        truth = GroundTruth()
        alarms = [delay_alarm(5 * H, ("a", "b"))]
        report = score_alarms(truth, alarms, [], MatchConfig(), n_bins=24)
        assert report.recall == 1.0  # vacuous: nothing to find
        assert report.precision == 0.0
        assert report.false_positives == 1
        assert report.false_alarm_rate == pytest.approx(1 / 24)
        assert report.events == ()

    def test_zero_labels_zero_alarms(self):
        report = score_alarms(GroundTruth(), [], [], MatchConfig())
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_tolerance_boundary(self):
        """An alarm exactly tolerance bins before the window matches."""
        truth = GroundTruth(delay=(delay_label(start=10 * H, end=11 * H),))
        early = delay_alarm(9 * H, ("10.0.0.1", "x"))  # bin 9, label bin 10
        report0 = score_alarms(truth, [early], [], MatchConfig(tolerance_bins=0))
        report1 = score_alarms(truth, [early], [], MatchConfig(tolerance_bins=1))
        assert report0.true_positives == 0
        assert report1.true_positives == 1
        assert report1.recall == 1.0  # bin 10 covered within tolerance
        assert report1.events[0].ttd_bins == 0  # clamped, never negative
        too_early = delay_alarm(8 * H, ("10.0.0.1", "x"))
        # Bin 8 is outside the padded span [10-1, 10+1]: a plain FP.
        report2 = score_alarms(
            truth, [too_early], [], MatchConfig(tolerance_bins=1)
        )
        assert report2.true_positives == 0
        assert report2.false_positives == 1
        assert report2.ignored == 0

    def test_duplicate_alarms_each_count_once(self):
        """Duplicates inflate TP but not covered units."""
        truth = GroundTruth(delay=(delay_label(start=10 * H, end=11 * H),))
        alarm = delay_alarm(10 * H, ("10.0.0.1", "x"))
        report = score_alarms(
            truth, [alarm, alarm, alarm], [], MatchConfig(tolerance_bins=0)
        )
        assert report.true_positives == 3
        assert report.n_covered == 1
        assert report.recall == 1.0
        assert report.precision == 1.0

    def test_window_to_bin_discretisation(self):
        """[start, end) windows map to the bins they intersect."""
        truth = GroundTruth(
            delay=(delay_label(start=10 * H + 1800, end=11 * H + 1),)
        )
        report = score_alarms(truth, [], [], MatchConfig(tolerance_bins=0))
        assert report.n_units == 2  # bins 10 and 11 both touched


class TestForwardingMatching:
    LABEL = ForwardingLabel(
        ip="10.0.0.9", start=10 * H, end=11 * H, kind="loss", event="e1"
    )

    def test_matches_by_router_ip(self):
        truth = GroundTruth(forwarding=(self.LABEL,))
        alarms = [fwd_alarm(10 * H, router_ip="10.0.0.9", resp={"*": 1.0})]
        report = score_alarms(truth, [], alarms, MatchConfig(tolerance_bins=0))
        assert report.true_positives == 1

    def test_matches_by_responsibility_hop(self):
        truth = GroundTruth(forwarding=(self.LABEL,))
        alarms = [fwd_alarm(10 * H, router_ip="10.0.0.1")]  # resp has .9
        report = score_alarms(truth, [], alarms, MatchConfig(tolerance_bins=0))
        assert report.true_positives == 1
        assert report.recall_forwarding == 1.0
        assert report.recall_delay is None

    def test_destination_pinning(self):
        pinned = ForwardingLabel(
            ip="10.0.0.9", destination="198.18.0.1",
            start=10 * H, end=11 * H, kind="reroute", event="e1",
        )
        truth = GroundTruth(forwarding=(pinned,))
        hit = fwd_alarm(10 * H, "10.0.0.9", destination="198.18.0.1")
        miss = fwd_alarm(10 * H, "10.0.0.9", destination="198.18.0.2")
        report = score_alarms(
            truth, [], [hit, miss], MatchConfig(tolerance_bins=0)
        )
        assert report.true_positives == 1
        assert report.ignored == 1  # in-window, wrong destination


class TestMultiEvent:
    def test_per_event_rollup(self):
        truth = GroundTruth(
            delay=(
                delay_label(ip="10.0.0.1", start=10 * H, end=11 * H, event="a"),
                delay_label(ip="10.0.0.2", start=14 * H, end=15 * H, event="b"),
            )
        )
        alarms = [delay_alarm(10 * H, ("10.0.0.1", "x"))]  # only event a
        report = score_alarms(truth, alarms, [], MatchConfig(tolerance_bins=0))
        by_name = {e.event: e for e in report.events}
        assert by_name["a"].recall == 1.0
        assert by_name["b"].recall == 0.0
        assert by_name["a"].ttd_bins == 0
        assert by_name["b"].ttd_bins is None
        assert report.recall == 0.5
        assert report.ttd_bins == 0  # mean over detected events only


class TestConfigValidation:
    def test_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            MatchConfig(bin_s=0)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            MatchConfig(tolerance_bins=-1)


class TestBinResults:
    class _Bin:
        def __init__(self, timestamp, delay, fwd):
            self.timestamp = timestamp
            self.delay_alarms = delay
            self.forwarding_alarms = fwd

    def test_scores_bin_result_stream(self):
        truth = GroundTruth(delay=(delay_label(start=1 * H, end=2 * H),))
        bins = [
            self._Bin(0, [], []),
            self._Bin(1 * H, [delay_alarm(1 * H, ("10.0.0.1", "x"))], []),
            self._Bin(2 * H, [], []),
        ]
        report = score_bin_results(truth, bins, MatchConfig(tolerance_bins=0))
        assert report.true_positives == 1
        assert report.n_bins == 3
        assert report.false_alarm_rate == 0.0

    def test_report_to_dict_shape(self):
        truth = GroundTruth(delay=(delay_label(),))
        report = score_alarms(truth, [], [], MatchConfig(), scenario="ddos")
        payload = report.to_dict()
        assert payload["scenario"] == "ddos"
        for key in ("precision", "recall", "f1", "ttd_bins", "events"):
            assert key in payload


class TestLabelSerialisation:
    def test_round_trip(self):
        truth = GroundTruth(
            delay=(delay_label(),),
            forwarding=(
                ForwardingLabel(
                    ip="10.0.0.9", destination="198.18.0.1",
                    start=10 * H, end=12 * H, kind="reroute", event="e1",
                ),
                ForwardingLabel(
                    ip="10.1.0.9", start=10 * H, end=12 * H, kind="loss",
                    event="e2", edge=("a", "b"),
                ),
            ),
        )
        assert GroundTruth.from_json(truth.to_json()) == truth

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            GroundTruth.from_dict({"schema": "nope"})

    def test_merged_disambiguates_events(self):
        a = GroundTruth(delay=(delay_label(event="ddos"),))
        b = GroundTruth(delay=(delay_label(ip="10.0.0.3", event="ddos"),))
        merged = GroundTruth.merged([a, b])
        assert merged.events() == ["ddos", "ddos#2"]
