"""Property and conformance tests for Prometheus text exposition."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.expo import (
    CONTENT_TYPE,
    ExpositionError,
    format_value,
    parse_text,
    render_text,
    validate,
)
from repro.obs.metrics import MetricsRegistry, exponential_buckets

# Label values must survive the three escaped characters plus anything
# printable; metric/label names follow the Prometheus grammar.
label_value = st.text(
    alphabet=st.sampled_from(list("abcXYZ09 \\\"\n{},=")), max_size=8
)
metric_name = st.from_regex(r"[a-z][a-z0-9_]{0,14}", fullmatch=True)
help_text = st.text(
    alphabet=st.sampled_from(list("help text\\\nwith escapes")), max_size=20
)


@st.composite
def registry_strategy(draw):
    """A randomly populated enabled registry (1-4 families)."""
    registry = MetricsRegistry()
    names = draw(
        st.lists(metric_name, min_size=1, max_size=4, unique=True)
    )
    for name in names:
        kind = draw(st.sampled_from(["counter", "gauge", "histogram"]))
        n_labels = draw(st.integers(0, 2))
        labelnames = tuple(f"l{i}" for i in range(n_labels))
        help_ = draw(help_text)
        if kind == "counter":
            family = registry.counter(name, help_, labelnames)
        elif kind == "gauge":
            family = registry.gauge(name, help_, labelnames)
        else:
            family = registry.histogram(
                name, help_, labelnames,
                buckets=exponential_buckets(0.001, 4.0, draw(st.integers(1, 5))),
            )
        for _ in range(draw(st.integers(0, 3))):
            values = tuple(draw(label_value) for _ in labelnames)
            child = family.labels(*values) if labelnames else family
            if kind == "counter":
                child.inc(draw(st.floats(0, 1e6, allow_nan=False)))
            elif kind == "gauge":
                child.set(
                    draw(st.floats(-1e6, 1e6, allow_nan=False,
                                   allow_infinity=False))
                )
            else:
                for _ in range(draw(st.integers(1, 4))):
                    child.observe(draw(st.floats(0, 10, allow_nan=False)))
    return registry


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(registry_strategy())
    def test_render_parse_validate(self, registry):
        """Rendered text parses back losslessly and passes validation."""
        blob = render_text(registry)
        families = parse_text(blob)
        validate(families)
        snapshots = {f.name: f for f in registry.collect()}
        assert set(families) == set(snapshots)
        for name, entry in families.items():
            snap = snapshots[name]
            assert entry["type"] == snap.type
            assert entry["help"] == snap.help
            if snap.type == "histogram":
                continue  # bucket coherence is validate()'s job
            parsed = {
                tuple(labels[k] for k in snap.labelnames): value
                for _, labels, value in entry["samples"]
            }
            expected = {
                c.labelvalues: pytest.approx(c.value)
                for c in snap.children
            }
            assert parsed == expected

    @settings(max_examples=30, deadline=None)
    @given(registry_strategy())
    def test_rendering_is_deterministic(self, registry):
        assert render_text(registry) == render_text(registry)


class TestRendering:
    def test_empty_registry_renders_empty(self):
        assert render_text(MetricsRegistry()) == b""
        assert render_text(MetricsRegistry(enabled=False)) == b""

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", "h", ("k",)).labels('a\\b"c\nd').inc()
        blob = render_text(registry).decode()
        assert 'k="a\\\\b\\"c\\nd"' in blob
        families = parse_text(blob.encode())
        [(_, labels, value)] = families["c"]["samples"]
        assert labels == {"k": 'a\\b"c\nd'}
        assert value == 1.0

    def test_help_newline_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("g", "line one\nline two").set(1)
        blob = render_text(registry)
        assert b"# HELP g line one\\nline two" in blob
        assert parse_text(blob)["g"]["help"] == "line one\nline two"

    def test_histogram_series_shape(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "help", buckets=(0.5, 2.0))
        hist.observe(1.0)
        lines = render_text(registry).decode().strip().split("\n")
        assert lines == [
            "# HELP h help",
            "# TYPE h histogram",
            'h_bucket{le="0.5"} 0',
            'h_bucket{le="2"} 1',
            'h_bucket{le="+Inf"} 1',
            "h_sum 1",
            "h_count 1",
        ]

    def test_content_type_is_v004(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestFormatValue:
    def test_integral_floats_lose_fraction(self):
        assert format_value(17.0) == "17"
        assert format_value(-3.0) == "-3"

    def test_fractional_values_keep_precision(self):
        assert float(format_value(0.1)) == 0.1
        assert float(format_value(1e-9)) == 1e-9

    def test_special_values(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"


class TestParserStrictness:
    def test_sample_before_type_rejected(self):
        with pytest.raises(ExpositionError):
            parse_text(b"orphan 1\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ExpositionError):
            parse_text(b"# TYPE m summary\nm 1\n")

    def test_bad_escape_rejected(self):
        with pytest.raises(ExpositionError):
            parse_text(b'# TYPE m counter\nm{l="a\\qb"} 1\n')

    def test_unterminated_label_rejected(self):
        with pytest.raises(ExpositionError):
            parse_text(b'# TYPE m counter\nm{l="open 1\n')

    def test_bad_value_rejected(self):
        with pytest.raises(ExpositionError):
            parse_text(b"# TYPE m counter\nm not-a-number\n")


class TestValidate:
    def _histogram_entry(self, samples):
        return {"h": {"type": "histogram", "help": "", "samples": samples}}

    def test_missing_inf_bucket_rejected(self):
        entry = self._histogram_entry(
            [("h_bucket", {"le": "1"}, 1.0), ("h_sum", {}, 1.0),
             ("h_count", {}, 1.0)]
        )
        with pytest.raises(ExpositionError, match=r"\+Inf"):
            validate(entry)

    def test_non_monotone_counts_rejected(self):
        entry = self._histogram_entry(
            [("h_bucket", {"le": "1"}, 5.0),
             ("h_bucket", {"le": "+Inf"}, 3.0),
             ("h_sum", {}, 1.0), ("h_count", {}, 3.0)]
        )
        with pytest.raises(ExpositionError, match="monotone"):
            validate(entry)

    def test_inf_bucket_must_equal_count(self):
        entry = self._histogram_entry(
            [("h_bucket", {"le": "+Inf"}, 3.0),
             ("h_sum", {}, 1.0), ("h_count", {}, 4.0)]
        )
        with pytest.raises(ExpositionError, match="_count"):
            validate(entry)

    def test_missing_sum_rejected(self):
        entry = self._histogram_entry(
            [("h_bucket", {"le": "+Inf"}, 3.0), ("h_count", {}, 3.0)]
        )
        with pytest.raises(ExpositionError, match="_sum"):
            validate(entry)

    def test_negative_counter_rejected(self):
        entry = {"c": {"type": "counter", "help": "",
                       "samples": [("c", {}, -1.0)]}}
        with pytest.raises(ExpositionError):
            validate(entry)

    def test_nan_and_inf_counters_rejected(self):
        for bad in (float("nan"), float("inf")):
            entry = {"c": {"type": "counter", "help": "",
                           "samples": [("c", {}, bad)]}}
            with pytest.raises(ExpositionError):
                validate(entry)

    def test_valid_document_passes(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h").inc(2)
        hist = registry.histogram("lat", "h", ("route",), buckets=(0.1, 1.0))
        hist.labels("/top").observe(0.05)
        hist.labels("/top").observe(5.0)
        validate(parse_text(render_text(registry)))
