"""Tests for differential RTT computation (paper §4.2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atlas import make_traceroute
from repro.core import differential_rtts
from repro.core.diffrtt import LinkObservations


def _tr(hop_replies, prb=1, asn=65001, ts=0):
    return make_traceroute(prb, "src", "dst", ts, hop_replies, from_asn=asn)


class TestDifferentialRtts:
    def test_all_combinations_nine_samples(self):
        """3 RTTs at each hop -> 9 differential samples (paper: 1 to 9)."""
        tr = _tr(
            [
                [("A", 10.0), ("A", 11.0), ("A", 12.0)],
                [("B", 20.0), ("B", 21.0), ("B", 22.0)],
            ]
        )
        obs = differential_rtts([tr])
        samples = obs[("A", "B")].all_samples()
        assert len(samples) == 9
        assert sorted(samples) == [8.0, 9.0, 9.0, 10.0, 10.0, 10.0, 11.0, 11.0, 12.0]

    def test_partial_loss_fewer_samples(self):
        tr = _tr(
            [
                [("A", 10.0), (None, None), ("A", 12.0)],
                [("B", 20.0), ("B", 21.0), (None, None)],
            ]
        )
        samples = differential_rtts([tr])[("A", "B")].all_samples()
        assert len(samples) == 4  # 2 x 2 combinations

    def test_negative_differential_rtt_preserved(self):
        """Negative Δ happens with asymmetric returns (§4.1) — keep them."""
        tr = _tr([[("A", 30.0)], [("B", 22.0)]])
        assert differential_rtts([tr])[("A", "B")].all_samples() == [-8.0]

    def test_unresponsive_hop_breaks_pair(self):
        tr = _tr(
            [
                [("A", 10.0)],
                [(None, None), (None, None), (None, None)],
                [("C", 30.0)],
            ]
        )
        obs = differential_rtts([tr])
        assert ("A", "C") not in obs  # non-consecutive after the gap
        assert obs == {}

    def test_samples_grouped_by_probe(self):
        tr1 = _tr([[("A", 10.0)], [("B", 15.0)]], prb=1, asn=65001)
        tr2 = _tr([[("A", 11.0)], [("B", 14.0)]], prb=2, asn=65002)
        obs = differential_rtts([tr1, tr2])[("A", "B")]
        assert obs.n_probes == 2
        assert obs.samples_by_probe[1] == [5.0]
        assert obs.samples_by_probe[2] == [3.0]
        assert obs.asns() == {65001: 1, 65002: 1}

    def test_same_probe_multiple_traceroutes_accumulate(self):
        tr1 = _tr([[("A", 10.0)], [("B", 15.0)]], prb=1, ts=0)
        tr2 = _tr([[("A", 10.0)], [("B", 16.0)]], prb=1, ts=60)
        obs = differential_rtts([tr1, tr2])[("A", "B")]
        assert obs.n_probes == 1
        assert sorted(obs.samples_by_probe[1]) == [5.0, 6.0]

    def test_multiple_links_per_traceroute(self):
        tr = _tr([[("A", 10.0)], [("B", 15.0)], [("C", 22.0)]])
        obs = differential_rtts([tr])
        assert set(obs) == {("A", "B"), ("B", "C")}
        assert obs[("B", "C")].all_samples() == [7.0]

    def test_same_ip_both_hops_skipped(self):
        """A hop pair reporting the same IP twice is not a link."""
        tr = _tr([[("A", 10.0)], [("A", 11.0)]])
        assert differential_rtts([tr]) == {}

    def test_unknown_asn_recorded_as_none(self):
        tr = make_traceroute(9, "s", "d", 0, [[("A", 1.0)], [("B", 2.0)]])
        obs = differential_rtts([tr])[("A", "B")]
        assert obs.probe_asn[9] is None
        assert obs.asns() == {}

    def test_empty_input(self):
        assert differential_rtts([]) == {}


class TestLinkObservations:
    def test_all_samples_with_probe_filter(self):
        obs = LinkObservations(("A", "B"))
        obs.add(1, 65001, [1.0, 2.0])
        obs.add(2, 65002, [3.0])
        assert sorted(obs.all_samples()) == [1.0, 2.0, 3.0]
        assert obs.all_samples([2]) == [3.0]
        assert obs.all_samples([99]) == []

    def test_counts(self):
        obs = LinkObservations(("A", "B"))
        obs.add(1, 65001, [1.0, 2.0])
        obs.add(2, 65001, [3.0])
        assert obs.n_probes == 2
        assert obs.n_samples == 3
        assert obs.asns() == {65001: 2}


rtt = st.floats(min_value=0.1, max_value=300.0, allow_nan=False)


class TestProperties:
    @settings(max_examples=40)
    @given(
        st.lists(rtt, min_size=1, max_size=3),
        st.lists(rtt, min_size=1, max_size=3),
    )
    def test_sample_count_is_product(self, near, far):
        tr = _tr(
            [
                [("A", value) for value in near],
                [("B", value) for value in far],
            ]
        )
        samples = differential_rtts([tr])[("A", "B")].all_samples()
        assert len(samples) == len(near) * len(far)

    @settings(max_examples=40)
    @given(
        st.lists(rtt, min_size=1, max_size=3),
        st.lists(rtt, min_size=1, max_size=3),
        st.floats(min_value=-50, max_value=50),
    )
    def test_shift_invariance_of_differences(self, near, far, shift):
        """Adding a constant to both hops' RTTs leaves Δ unchanged
        (return-path error common to both cancels — the paper's ε logic)."""
        tr_a = _tr([[("A", v) for v in near], [("B", v) for v in far]])
        tr_b = _tr(
            [
                [("A", v + shift) for v in near],
                [("B", v + shift) for v in far],
            ]
        )
        samples_a = sorted(differential_rtts([tr_a])[("A", "B")].all_samples())
        samples_b = sorted(differential_rtts([tr_b])[("A", "B")].all_samples())
        assert samples_a == pytest.approx(samples_b, abs=1e-9)
