"""Tests for probe-diversity filtering (paper §4.3)."""

import pytest

from repro.core import DiversityFilter
from repro.core.diffrtt import LinkObservations
from repro.stats import normalized_entropy


def _obs(asn_probe_counts):
    """Build LinkObservations with the given {asn: n_probes} layout."""
    obs = LinkObservations(("A", "B"))
    probe_id = 0
    for asn, count in asn_probe_counts.items():
        for _ in range(count):
            obs.add(probe_id, asn, [1.0])
            probe_id += 1
    return obs


class TestCriterion1MinAsns:
    def test_two_ases_rejected(self):
        verdict = DiversityFilter().evaluate(_obs({65001: 5, 65002: 5}))
        assert not verdict.accepted
        assert "2 ASes" in verdict.reason

    def test_three_balanced_ases_accepted(self):
        verdict = DiversityFilter().evaluate(_obs({1: 2, 2: 2, 3: 2}))
        assert verdict.accepted
        assert verdict.n_asns == 3
        assert len(verdict.kept_probes) == 6
        assert verdict.discarded_probes == []

    def test_unknown_asn_probes_do_not_count(self):
        obs = _obs({65001: 2, 65002: 2})
        obs.add(99, None, [1.0])
        verdict = DiversityFilter().evaluate(obs)
        assert not verdict.accepted

    def test_configurable_min_asns(self):
        obs = _obs({1: 1, 2: 1})
        assert DiversityFilter(min_asns=2).evaluate(obs).accepted
        assert not DiversityFilter(min_asns=3).evaluate(obs).accepted


class TestCriterion2Entropy:
    def test_paper_example_rebalanced_not_dropped(self):
        """90 probes in one of 5 ASes: H <= 0.5, probes discarded until
        H > 0.5 — the link itself is kept (paper §4.3)."""
        obs = _obs({1: 90, 2: 3, 3: 3, 4: 2, 5: 2})
        verdict = DiversityFilter(seed=1).evaluate(obs)
        assert verdict.accepted
        assert verdict.entropy > 0.5
        assert len(verdict.discarded_probes) > 0
        # All discarded probes are from the dominant AS.
        assert all(p < 90 for p in verdict.discarded_probes)
        kept_counts = {}
        for probe in verdict.kept_probes:
            asn = obs.probe_asn[probe]
            kept_counts[asn] = kept_counts.get(asn, 0) + 1
        assert normalized_entropy(kept_counts) > 0.5

    def test_balanced_link_not_touched(self):
        obs = _obs({1: 10, 2: 10, 3: 10})
        verdict = DiversityFilter().evaluate(obs)
        assert verdict.accepted
        assert verdict.discarded_probes == []
        assert verdict.entropy == pytest.approx(1.0)

    def test_input_not_mutated(self):
        obs = _obs({1: 50, 2: 2, 3: 2})
        before = {k: list(v) for k, v in obs.samples_by_probe.items()}
        DiversityFilter(seed=2).evaluate(obs)
        assert {k: list(v) for k, v in obs.samples_by_probe.items()} == before

    def test_deterministic_given_seed(self):
        obs = _obs({1: 50, 2: 2, 3: 2})
        a = DiversityFilter(seed=5).evaluate(obs)
        b = DiversityFilter(seed=5).evaluate(obs)
        assert a.kept_probes == b.kept_probes
        assert a.discarded_probes == b.discarded_probes

    def test_entropy_threshold_configurable(self):
        obs = _obs({1: 6, 2: 2, 3: 2})
        strict = DiversityFilter(min_entropy=0.95).evaluate(obs)
        lax = DiversityFilter(min_entropy=0.1).evaluate(obs)
        assert lax.discarded_probes == []
        assert len(strict.discarded_probes) >= 1


class TestValidation:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DiversityFilter(min_asns=0)
        with pytest.raises(ValueError):
            DiversityFilter(min_entropy=1.0)
        with pytest.raises(ValueError):
            DiversityFilter(min_entropy=-0.1)

    def test_empty_observations_rejected(self):
        verdict = DiversityFilter().evaluate(LinkObservations(("A", "B")))
        assert not verdict.accepted
