"""Tests for the serving layer's HTTP API and response cache."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import (
    AlarmStoreWriter,
    CachedResponse,
    ResponseCache,
    StoreQuery,
    make_server,
)
from repro.service.cache import make_etag

from tests.test_service_store import (
    analysis_of,
    build_store,
    make_mapper,
    synthetic_bins,
)


class TestResponseCache:
    def _entry(self, tag: str) -> CachedResponse:
        body = tag.encode()
        return CachedResponse(200, body, make_etag(body, 1))

    def test_hit_miss_counters(self):
        cache = ResponseCache(4)
        key = ("/health/1", (), 0)
        assert cache.get(key) is None
        cache.put(key, self._entry("a"))
        assert cache.get(key).body == b"a"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = ResponseCache(2)
        keys = [(f"/r{i}", (), 0) for i in range(3)]
        for index, key in enumerate(keys):
            cache.put(key, self._entry(str(index)))
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[2]) is not None
        assert cache.stats()["evictions"] == 1

    def test_recently_used_survives(self):
        cache = ResponseCache(2)
        keys = [(f"/r{i}", (), 0) for i in range(3)]
        cache.put(keys[0], self._entry("0"))
        cache.put(keys[1], self._entry("1"))
        cache.get(keys[0])  # refresh key 0
        cache.put(keys[2], self._entry("2"))
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None

    def test_generation_in_key_separates_entries(self):
        cache = ResponseCache(4)
        cache.put(("/r", (), 0), self._entry("old"))
        cache.put(("/r", (), 1), self._entry("new"))
        assert cache.get(("/r", (), 0)).body == b"old"
        assert cache.get(("/r", (), 1)).body == b"new"

    def test_clear(self):
        cache = ResponseCache(4)
        cache.put(("/r", (), 0), self._entry("x"))
        cache.clear()
        assert len(cache) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ResponseCache(0)

    def test_etag_tracks_body_and_generation(self):
        assert make_etag(b"a", 1) == make_etag(b"a", 1)
        assert make_etag(b"a", 1) != make_etag(b"b", 1)
        assert make_etag(b"a", 1) != make_etag(b"a", 2)


@pytest.fixture(scope="module")
def served_store(tmp_path_factory):
    """A store with alarms, its writer, and a live HTTP server."""
    directory = tmp_path_factory.mktemp("http") / "store"
    mapper = make_mapper()
    bins = synthetic_bins(6, seed=13)
    build_store(directory, bins, mapper, chunk=2)
    server = make_server(directory, port=0, window_bins=4)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield {
        "base": f"http://{host}:{port}",
        "server": server,
        "directory": directory,
        "mapper": mapper,
        "bins": bins,
    }
    server.shutdown()
    server.server_close()


def _get(url: str, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), response.read()


class TestRoutes:
    def test_health_matches_engine(self, served_store):
        query = StoreQuery(served_store["directory"], window_bins=4)
        asn = query.monitored_asns()[0]
        status, headers, body = _get(f"{served_store['base']}/health/{asn}")
        assert status == 200
        payload = json.loads(body)
        condition = query.as_condition(asn)
        assert payload["asn"] == asn
        assert payload["delay_alarm_count"] == condition.delay_alarm_count
        assert payload["peak_delay_magnitude"] == (
            condition.peak_delay_magnitude
        )
        assert payload["healthy"] == condition.healthy

    def test_health_accepts_as_prefix(self, served_store):
        status, _, body = _get(f"{served_store['base']}/health/AS65001")
        assert status == 200
        assert json.loads(body)["asn"] == 65001

    def test_unknown_as_is_healthy(self, served_store):
        status, _, body = _get(f"{served_store['base']}/health/99999")
        assert status == 200
        payload = json.loads(body)
        assert payload["healthy"] is True
        assert payload["delay_alarm_count"] == 0

    def test_links_route(self, served_store):
        query = StoreQuery(served_store["directory"], window_bins=4)
        asn = query.monitored_asns()[0]
        status, _, body = _get(f"{served_store['base']}/links/{asn}")
        assert status == 200
        payload = json.loads(body)
        expected = query.links_of(asn)
        assert len(payload) == len(expected)
        if expected:
            assert payload[0]["link"] == list(expected[0].link)
            assert payload[0]["alarm_count"] == expected[0].alarm_count

    def test_events_route(self, served_store):
        status, _, body = _get(
            f"{served_store['base']}/events?kind=delay&threshold=0.5&limit=3"
        )
        assert status == 200
        payload = json.loads(body)
        assert len(payload) <= 3
        query = StoreQuery(served_store["directory"], window_bins=4)
        expected = query.top_events("delay", 0.5, 3)
        assert payload == [
            {
                "asn": e.asn, "timestamp": e.timestamp,
                "magnitude": e.magnitude, "kind": e.kind,
            }
            for e in expected
        ]

    def test_events_route_with_range(self, served_store):
        status, _, body = _get(
            f"{served_store['base']}/events"
            f"?kind=delay&threshold=0.5&limit=50&start=0&end=7200"
        )
        assert status == 200
        assert all(
            0 <= event["timestamp"] < 7200 for event in json.loads(body)
        )

    def test_top_route(self, served_store):
        status, _, body = _get(f"{served_store['base']}/top?kind=delay&k=2")
        assert status == 200
        payload = json.loads(body)
        query = StoreQuery(served_store["directory"], window_bins=4)
        assert payload == [
            {"asn": asn, "magnitude": magnitude}
            for asn, magnitude in query.top_asns("delay", 2)
        ]

    def test_index_route(self, served_store):
        status, _, body = _get(served_store["base"] + "/")
        assert status == 200
        payload = json.loads(body)
        assert payload["store"]["n_segments"] >= 1
        assert "cache" in payload and "routes" in payload

    def test_unknown_route_404(self, served_store):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(served_store["base"] + "/nonsense")
        assert excinfo.value.code == 404

    def test_bad_params_400(self, served_store):
        for url in (
            "/events?kind=bogus",
            "/events?threshold=-1",
            "/events?limit=nope",
            "/top?k=-2",
            "/health/notanumber",
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(served_store["base"] + url)
            assert excinfo.value.code == 400, url


class TestCachingBehaviour:
    def test_repeat_request_hits_cache(self, served_store):
        server = served_store["server"]
        url = f"{served_store['base']}/top?kind=forwarding&k=3"
        _get(url)
        hits_before = server.cache.stats()["hits"]
        _, headers1, body1 = _get(url)
        _, headers2, body2 = _get(url)
        assert body1 == body2
        assert headers1["ETag"] == headers2["ETag"]
        assert server.cache.stats()["hits"] >= hits_before + 2

    def test_if_none_match_revalidates_304(self, served_store):
        url = f"{served_store['base']}/events?kind=delay&threshold=0.5"
        _, headers, _ = _get(url)
        etag = headers["ETag"]
        request = urllib.request.Request(
            url, headers={"If-None-Match": etag}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 304
        assert excinfo.value.read() == b""
        assert excinfo.value.headers["ETag"] == etag

    def test_append_invalidates_cache(self, served_store):
        """A writer publishing a new generation changes the answers."""
        url = served_store["base"] + "/"
        _, _, before = _get(url)
        generation_before = json.loads(before)["store"]["generation"]
        writer = AlarmStoreWriter.open_or_create(
            served_store["directory"], served_store["mapper"], bin_s=3600
        )
        extra = synthetic_bins(8, seed=14)[len(served_store["bins"]):]
        assert writer.append_bins(extra) == len(extra)
        _, _, after = _get(url)
        assert json.loads(after)["store"]["generation"] > generation_before
        # A cached per-AS answer is refreshed too: its ETag embeds the
        # new epoch-qualified generation token.
        asn_url = f"{served_store['base']}/health/65001"
        _, headers, _ = _get(asn_url)
        token = served_store["server"].engine.cache_token
        assert token.startswith(
            f"{json.loads(after)['store']['generation']}."
        )
        assert f"g{token}-" in headers["ETag"]


class TestUnavailableStore:
    """503s must advertise their backoff, not just fail (PR 7)."""

    def test_503_carries_retry_after_header_and_body(self, tmp_path):
        from repro.service.http import RETRY_AFTER_S
        from repro.service.store import MANIFEST_NAME

        directory = tmp_path / "store"
        build_store(directory, synthetic_bins(4, seed=13), make_mapper())
        server = make_server(directory, port=0, window_bins=4)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            base = f"http://{host}:{port}"
            status, _, _ = _get(f"{base}/health/65001")
            assert status == 200
            # Corrupt the manifest: the next refresh() raises
            # StoreError, which the handler renders as an advertised,
            # retryable 503.
            manifest = directory / MANIFEST_NAME
            blob = bytearray(manifest.read_bytes())
            blob[len(blob) // 2] ^= 0x01
            manifest.write_bytes(bytes(blob))
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/health/65001")
            error = excinfo.value
            assert error.code == 503
            assert error.headers["Retry-After"] == str(RETRY_AFTER_S)
            payload = json.loads(error.read())
            assert payload["retry_after"] == RETRY_AFTER_S
            assert "store unavailable" in payload["error"]
            # The connector layer's own parser accepts what we emit.
            from repro.atlas.connectors import parse_retry_after

            assert parse_retry_after(
                error.headers["Retry-After"]
            ) == float(RETRY_AFTER_S)
        finally:
            server.shutdown()
            server.server_close()

    def test_healthy_responses_have_no_retry_after(self, served_store):
        status, headers, _ = _get(f"{served_store['base']}/health/65001")
        assert status == 200
        assert "Retry-After" not in headers
