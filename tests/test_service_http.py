"""Tests for the serving layer's HTTP API and response cache."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import (
    AlarmStoreWriter,
    CachedResponse,
    ResponseCache,
    ServiceState,
    StoreQuery,
    if_none_match_matches,
    make_server,
    read_manifest,
)
from repro.service.cache import make_etag
from repro.service.http import (
    _asn_of,
    _BadRequest,
    _float_param,
    _int_param,
)

from tests.test_service_store import (
    analysis_of,
    build_store,
    make_mapper,
    synthetic_bins,
)


class TestResponseCache:
    def _entry(self, tag: str) -> CachedResponse:
        body = tag.encode()
        return CachedResponse(200, body, make_etag(body, 1))

    def test_hit_miss_counters(self):
        cache = ResponseCache(4)
        key = ("/health/1", (), 0)
        assert cache.get(key) is None
        cache.put(key, self._entry("a"))
        assert cache.get(key).body == b"a"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = ResponseCache(2)
        keys = [(f"/r{i}", (), 0) for i in range(3)]
        for index, key in enumerate(keys):
            cache.put(key, self._entry(str(index)))
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[2]) is not None
        assert cache.stats()["evictions"] == 1

    def test_recently_used_survives(self):
        cache = ResponseCache(2)
        keys = [(f"/r{i}", (), 0) for i in range(3)]
        cache.put(keys[0], self._entry("0"))
        cache.put(keys[1], self._entry("1"))
        cache.get(keys[0])  # refresh key 0
        cache.put(keys[2], self._entry("2"))
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None

    def test_generation_in_key_separates_entries(self):
        cache = ResponseCache(4)
        cache.put(("/r", (), 0), self._entry("old"))
        cache.put(("/r", (), 1), self._entry("new"))
        assert cache.get(("/r", (), 0)).body == b"old"
        assert cache.get(("/r", (), 1)).body == b"new"

    def test_clear(self):
        cache = ResponseCache(4)
        cache.put(("/r", (), 0), self._entry("x"))
        cache.clear()
        assert len(cache) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ResponseCache(0)

    def test_etag_tracks_body_and_generation(self):
        assert make_etag(b"a", 1) == make_etag(b"a", 1)
        assert make_etag(b"a", 1) != make_etag(b"b", 1)
        assert make_etag(b"a", 1) != make_etag(b"a", 2)


@pytest.fixture(scope="module")
def served_store(tmp_path_factory):
    """A store with alarms, its writer, and a live HTTP server."""
    directory = tmp_path_factory.mktemp("http") / "store"
    mapper = make_mapper()
    bins = synthetic_bins(6, seed=13)
    build_store(directory, bins, mapper, chunk=2)
    server = make_server(directory, port=0, window_bins=4)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield {
        "base": f"http://{host}:{port}",
        "server": server,
        "directory": directory,
        "mapper": mapper,
        "bins": bins,
    }
    server.shutdown()
    server.server_close()


def _get(url: str, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), response.read()


class TestRoutes:
    def test_health_matches_engine(self, served_store):
        query = StoreQuery(served_store["directory"], window_bins=4)
        asn = query.monitored_asns()[0]
        status, headers, body = _get(f"{served_store['base']}/health/{asn}")
        assert status == 200
        payload = json.loads(body)
        condition = query.as_condition(asn)
        assert payload["asn"] == asn
        assert payload["delay_alarm_count"] == condition.delay_alarm_count
        assert payload["peak_delay_magnitude"] == (
            condition.peak_delay_magnitude
        )
        assert payload["healthy"] == condition.healthy

    def test_health_accepts_as_prefix(self, served_store):
        status, _, body = _get(f"{served_store['base']}/health/AS65001")
        assert status == 200
        assert json.loads(body)["asn"] == 65001

    def test_unknown_as_is_healthy(self, served_store):
        status, _, body = _get(f"{served_store['base']}/health/99999")
        assert status == 200
        payload = json.loads(body)
        assert payload["healthy"] is True
        assert payload["delay_alarm_count"] == 0

    def test_links_route(self, served_store):
        query = StoreQuery(served_store["directory"], window_bins=4)
        asn = query.monitored_asns()[0]
        status, _, body = _get(f"{served_store['base']}/links/{asn}")
        assert status == 200
        payload = json.loads(body)
        expected = query.links_of(asn)
        assert len(payload) == len(expected)
        if expected:
            assert payload[0]["link"] == list(expected[0].link)
            assert payload[0]["alarm_count"] == expected[0].alarm_count

    def test_events_route(self, served_store):
        status, _, body = _get(
            f"{served_store['base']}/events?kind=delay&threshold=0.5&limit=3"
        )
        assert status == 200
        payload = json.loads(body)
        assert len(payload) <= 3
        query = StoreQuery(served_store["directory"], window_bins=4)
        expected = query.top_events("delay", 0.5, 3)
        assert payload == [
            {
                "asn": e.asn, "timestamp": e.timestamp,
                "magnitude": e.magnitude, "kind": e.kind,
            }
            for e in expected
        ]

    def test_events_route_with_range(self, served_store):
        status, _, body = _get(
            f"{served_store['base']}/events"
            f"?kind=delay&threshold=0.5&limit=50&start=0&end=7200"
        )
        assert status == 200
        assert all(
            0 <= event["timestamp"] < 7200 for event in json.loads(body)
        )

    def test_top_route(self, served_store):
        status, _, body = _get(f"{served_store['base']}/top?kind=delay&k=2")
        assert status == 200
        payload = json.loads(body)
        query = StoreQuery(served_store["directory"], window_bins=4)
        assert payload == [
            {"asn": asn, "magnitude": magnitude}
            for asn, magnitude in query.top_asns("delay", 2)
        ]

    def test_index_route(self, served_store):
        status, _, body = _get(served_store["base"] + "/")
        assert status == 200
        payload = json.loads(body)
        assert payload["store"]["n_segments"] >= 1
        assert "cache" in payload and "routes" in payload

    def test_unknown_route_404(self, served_store):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(served_store["base"] + "/nonsense")
        assert excinfo.value.code == 404

    def test_bad_params_400(self, served_store):
        for url in (
            "/events?kind=bogus",
            "/events?threshold=-1",
            "/events?limit=nope",
            "/top?k=-2",
            "/health/notanumber",
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(served_store["base"] + url)
            assert excinfo.value.code == 400, url


class TestCachingBehaviour:
    def test_repeat_request_hits_cache(self, served_store):
        server = served_store["server"]
        url = f"{served_store['base']}/top?kind=forwarding&k=3"
        _get(url)
        hits_before = server.cache.stats()["hits"]
        _, headers1, body1 = _get(url)
        _, headers2, body2 = _get(url)
        assert body1 == body2
        assert headers1["ETag"] == headers2["ETag"]
        assert server.cache.stats()["hits"] >= hits_before + 2

    def test_if_none_match_revalidates_304(self, served_store):
        url = f"{served_store['base']}/events?kind=delay&threshold=0.5"
        _, headers, _ = _get(url)
        etag = headers["ETag"]
        request = urllib.request.Request(
            url, headers={"If-None-Match": etag}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 304
        assert excinfo.value.read() == b""
        assert excinfo.value.headers["ETag"] == etag

    def test_append_invalidates_cache(self, served_store):
        """A writer publishing a new generation changes the answers."""
        url = served_store["base"] + "/"
        _, _, before = _get(url)
        generation_before = json.loads(before)["store"]["generation"]
        writer = AlarmStoreWriter.open_or_create(
            served_store["directory"], served_store["mapper"], bin_s=3600
        )
        extra = synthetic_bins(8, seed=14)[len(served_store["bins"]):]
        assert writer.append_bins(extra) == len(extra)
        _, _, after = _get(url)
        assert json.loads(after)["store"]["generation"] > generation_before
        # A cached per-AS answer is refreshed too: its ETag embeds the
        # new epoch-qualified generation token.
        asn_url = f"{served_store['base']}/health/65001"
        _, headers, _ = _get(asn_url)
        token = served_store["server"].engine.cache_token
        assert token.startswith(
            f"{json.loads(after)['store']['generation']}."
        )
        assert f"g{token}-" in headers["ETag"]


class TestStrictValidation:
    """The ISSUE 9 validation bugfix: ``int()``/``float()`` leniency.

    Bare ``float()`` accepts ``nan``/``inf`` (NaN even passes a
    ``<= 0`` positivity check) and bare ``int()`` accepts ``1_0``,
    whitespace and ``+`` signs — aliasing equal queries to distinct
    cache keys.  Every spelling below must be rejected with the exact
    message clients will see.
    """

    def test_float_rejections_exact(self):
        for raw in ("nan", "inf", "-inf", "Infinity", "1_0.5", " 1.5",
                    "+1.5", "0x5", "1e", ""):
            with pytest.raises(_BadRequest) as excinfo:
                _float_param({"threshold": raw}, "threshold", 5.0)
            assert str(excinfo.value) == (
                f"parameter 'threshold' must be a number: {raw!r}"
            ), raw

    def test_float_overflow_spelling_rejected_as_non_finite(self):
        # "1e999" passes the grammar but overflows float() to inf.
        with pytest.raises(_BadRequest) as excinfo:
            _float_param({"threshold": "1e999"}, "threshold", 5.0)
        assert str(excinfo.value) == (
            "parameter 'threshold' must be finite: '1e999'"
        )

    def test_float_accepts_plain_spellings(self):
        for raw, value in (("0.5", 0.5), ("-2", -2.0), ("1e3", 1000.0),
                           (".5", 0.5), ("5.", 5.0), ("1.5E-2", 0.015)):
            assert _float_param({"x": raw}, "x", 0.0) == value

    def test_int_rejections_exact(self):
        for raw in ("1_0", " 10", "10 ", "+5", "0x5", "nope", "1.0", ""):
            with pytest.raises(_BadRequest) as excinfo:
                _int_param({"limit": raw}, "limit", 10)
            assert str(excinfo.value) == (
                f"parameter 'limit' must be an integer: {raw!r}"
            ), raw

    def test_int_accepts_plain_spellings(self):
        for raw, value in (("10", 10), ("-3", -3), ("0", 0)):
            assert _int_param({"x": raw}, "x", 99) == value

    def test_asn_rejections_exact(self):
        for raw in ("+5", " 5", "5 ", "5_0", "-1", "AS+5", "4.2", "AS", ""):
            with pytest.raises(_BadRequest) as excinfo:
                _asn_of(raw)
            assert str(excinfo.value) == f"bad ASN: {raw!r}", raw

    def test_asn_accepts_any_prefix_case(self):
        assert _asn_of("65001") == 65001
        assert _asn_of("AS65001") == 65001
        assert _asn_of("as65001") == 65001

    def test_http_400_bodies_are_exact(self, served_store):
        expectations = {
            "/events?threshold=nan":
                "parameter 'threshold' must be a number: 'nan'",
            "/events?threshold=inf":
                "parameter 'threshold' must be a number: 'inf'",
            "/events?threshold=1e999":
                "parameter 'threshold' must be finite: '1e999'",
            "/events?limit=1_0":
                "parameter 'limit' must be an integer: '1_0'",
            "/events?limit=%201":
                "parameter 'limit' must be an integer: ' 1'",
            "/top?k=%2B2":
                "parameter 'k' must be an integer: '+2'",
            "/health/%2B5": "bad ASN: '%2B5'",
            "/health?asns=65001,,65002": "bad ASN: ''",
            "/health": (
                "parameter 'asns' is required (e.g. /health?asns=1,2,3)"
            ),
            "/top?kinds=delay,bogus": (
                "parameter 'kinds' must be 'delay' or 'forwarding': 'bogus'"
            ),
        }
        for url, message in expectations.items():
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(served_store["base"] + url)
            assert excinfo.value.code == 400, url
            assert json.loads(excinfo.value.read())["error"] == message, url

    def test_batch_size_limit(self, served_store):
        url = "/health?asns=" + ",".join(["65001"] * 101)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(served_store["base"] + url)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"] == (
            "parameter 'asns' lists 101 ASNs (limit 100)"
        )


class TestIfNoneMatchRfc:
    """RFC 9110 §13.1.2: lists, ``*`` and weak tags all revalidate."""

    def test_header_parsing_unit(self):
        etag = '"g3.abc-def"'
        assert not if_none_match_matches(None, etag)
        assert if_none_match_matches(etag, etag)
        assert if_none_match_matches(f'"other", {etag}', etag)
        assert if_none_match_matches(f'"other" , {etag} ', etag)
        assert if_none_match_matches("*", etag)
        assert if_none_match_matches(" * ", etag)
        assert if_none_match_matches(f"W/{etag}", etag)
        assert if_none_match_matches(f'"a", W/{etag}, "b"', etag)
        assert not if_none_match_matches('"other"', etag)
        assert not if_none_match_matches('"a", "b"', etag)

    def _expect_304(self, url, header):
        request = urllib.request.Request(
            url, headers={"If-None-Match": header}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 304, header

    def test_list_star_and_weak_forms_over_http(self, served_store):
        url = f"{served_store['base']}/top?kind=delay&k=2"
        _, headers, _ = _get(url)
        etag = headers["ETag"]
        self._expect_304(url, etag)
        self._expect_304(url, f'"stale", {etag}')
        self._expect_304(url, "*")
        self._expect_304(url, f"W/{etag}")
        status, _, _ = _get(url, headers={"If-None-Match": '"stale"'})
        assert status == 200


class _AmbushCache(ResponseCache):
    """A cache whose probe triggers a store append (race injection).

    ``ServiceState.respond`` reads the generation token, probes the
    cache, and computes on a miss.  Arming this cache makes a writer
    publish a new generation *between* the token read and the compute —
    exactly the window of the ISSUE 9 coherence race.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self.ambush = None

    def get(self, key):
        entry = super().get(key)
        if self.ambush is not None:
            ambush, self.ambush = self.ambush, None
            ambush()
        return entry


class TestCoherenceRace:
    """Regression: token and payload under one lock acquisition."""

    def test_append_between_token_and_compute_stays_coherent(self, tmp_path):
        directory = tmp_path / "store"
        mapper = make_mapper()
        bins = synthetic_bins(8, seed=47)
        writer = build_store(directory, bins[:6], mapper, chunk=2)
        cache = _AmbushCache(8)
        state = ServiceState(StoreQuery(directory, window_bins=4), cache)
        token_before = state.token()
        cache.ambush = lambda: writer.append_bins(bins[6:])
        route, params = "/health/65001", {}
        entry = state.respond(route, params)
        token_after = read_manifest(directory).token
        assert token_after != token_before
        # The body was computed at the post-append generation, so its
        # ETag and cache key must both carry the *new* token: a stale
        # ETag over a fresh body (the old bug) would let clients
        # revalidate into never seeing the new generation.
        assert f"g{token_after}-" in entry.etag
        assert cache.get(state.cache_key(route, params, token_before)) is None
        cached = cache.get(state.cache_key(route, params, token_after))
        assert cached is not None and cached.etag == entry.etag
        # And the bytes really are the new generation's answer.
        fresh = ServiceState(
            StoreQuery(directory, window_bins=4), ResponseCache(4)
        )
        fresh_entry = fresh.compute(route, params)
        assert entry.body == fresh_entry.body
        assert entry.etag == fresh_entry.etag

    def test_pinned_engine_never_mixes_generations(self, tmp_path):
        directory = tmp_path / "store"
        mapper = make_mapper()
        bins = synthetic_bins(8, seed=53)
        writer = build_store(directory, bins[:6], mapper, chunk=2)
        engine = StoreQuery(directory, window_bins=4)
        engine.refresh()
        token_before = engine.cache_token
        before = engine.top_asns("delay", 5)
        with engine.pinned():
            writer.append_bins(bins[6:])
            # Mid-request queries stay at the pinned generation even
            # though each public method normally refreshes first.
            assert engine.cache_token == token_before
            assert engine.top_asns("delay", 5) == before
        engine.refresh()
        assert engine.cache_token != token_before


class TestUnavailableStore:
    """503s must advertise their backoff, not just fail (PR 7)."""

    def test_503_carries_retry_after_header_and_body(self, tmp_path):
        from repro.service.http import RETRY_AFTER_S
        from repro.service.store import MANIFEST_NAME

        directory = tmp_path / "store"
        build_store(directory, synthetic_bins(4, seed=13), make_mapper())
        server = make_server(directory, port=0, window_bins=4)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            base = f"http://{host}:{port}"
            status, _, _ = _get(f"{base}/health/65001")
            assert status == 200
            # Corrupt the manifest: the next refresh() raises
            # StoreError, which the handler renders as an advertised,
            # retryable 503.
            manifest = directory / MANIFEST_NAME
            blob = bytearray(manifest.read_bytes())
            blob[len(blob) // 2] ^= 0x01
            manifest.write_bytes(bytes(blob))
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/health/65001")
            error = excinfo.value
            assert error.code == 503
            assert error.headers["Retry-After"] == str(RETRY_AFTER_S)
            payload = json.loads(error.read())
            assert payload["retry_after"] == RETRY_AFTER_S
            assert "store unavailable" in payload["error"]
            # The connector layer's own parser accepts what we emit.
            from repro.atlas.connectors import parse_retry_after

            assert parse_retry_after(
                error.headers["Retry-After"]
            ) == float(RETRY_AFTER_S)
        finally:
            server.shutdown()
            server.server_close()

    def test_healthy_responses_have_no_retry_after(self, served_store):
        status, headers, _ = _get(f"{served_store['base']}/health/65001")
        assert status == 200
        assert "Retry-After" not in headers
