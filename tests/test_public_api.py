"""Tests for the top-level public API (repro.__init__)."""

import pytest

import repro
from repro import quick_campaign
from repro.core import CampaignAnalysis


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        import repro.atlas
        import repro.core
        import repro.net
        import repro.quality
        import repro.reporting
        import repro.service
        import repro.simulation
        import repro.stats

    def test_subpackage_alls_resolve(self):
        import repro.atlas as atlas
        import repro.core as core
        import repro.net as net
        import repro.quality as quality
        import repro.reporting as reporting
        import repro.service as service
        import repro.simulation as simulation
        import repro.stats as stats

        modules = (atlas, core, net, quality, reporting, service, simulation, stats)
        for module in modules:
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestQuickCampaign:
    def test_returns_analysis_topology_mapper(self):
        analysis, topology, mapper = quick_campaign(duration_hours=2, seed=4)
        assert isinstance(analysis, CampaignAnalysis)
        assert len(topology.probes) > 0
        assert mapper.asn_of(topology.probes[0].ip) is not None
        stats = analysis.stats()
        assert stats.bins_processed == 2
        assert stats.traceroutes_processed > 0

    def test_deterministic(self):
        first, _, _ = quick_campaign(duration_hours=1, seed=9)
        second, _, _ = quick_campaign(duration_hours=1, seed=9)
        assert (
            first.stats().traceroutes_processed
            == second.stats().traceroutes_processed
        )
        assert first.stats().links_observed == second.stats().links_observed
