"""Serial-vs-sharded equivalence: the engine's core guarantee.

The sharded engine must be a *drop-in* for the serial reference
pipeline: same alarms, same statistics, same tracked-link series — bit
for bit, for any shard count, any executor, and any workload.  These
tests drive both implementations over synthetic campaigns rich enough to
exercise every code path (diversity rejection *and* entropy rebalancing,
delay alarms in both directions, forwarding churn, tracked links with
gaps) and assert full structural equality.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atlas import (
    TracerouteBatch,
    decode_traceroutes,
    make_traceroute,
    read_bincache,
    write_bincache,
    write_traceroutes,
)
from repro.core import (
    Pipeline,
    PipelineConfig,
    ShardedPipeline,
    create_pipeline,
    differential_rtts,
    extract_bin,
    forwarding_patterns,
)

# -- synthetic campaign generator -------------------------------------------


def _campaign(n_links=12, n_probes=9, n_bins=10, seed=3):
    """A deterministic multi-link campaign with events.

    Includes: a mid-campaign delay shift on some links (delay alarms), a
    next-hop flip on one destination (forwarding alarms), a heavily
    skewed AS distribution on one link (entropy rebalancing), a
    single-AS link (diversity rejection), and a link that vanishes for
    two bins (tracked-link gap points).
    """
    rng = np.random.default_rng(seed)
    traceroutes = []
    for bin_index in range(n_bins):
        timestamp = bin_index * 3600
        for link_index in range(n_links):
            near = f"10.{link_index}.0.1"
            far = f"10.{link_index}.0.2"
            if link_index == 1 and bin_index in (6, 7):
                continue  # tracked-link gap
            shift = 20.0 if bin_index >= 7 and link_index % 3 == 0 else 0.0
            for probe in range(n_probes):
                if link_index == 2:
                    asn = 65001  # single AS: diversity-rejected
                elif link_index == 3:
                    # 7 probes in one AS, one each in two others: skewed
                    # enough to trigger entropy rebalancing.
                    asn = 65001 if probe < 7 else 65002 + (probe % 2)
                else:
                    asn = 65001 + probe % 4
                base = 10.0 + probe
                near_rtts = base + rng.normal(0.0, 0.2, 2)
                far_rtts = base + 6.0 + shift + rng.normal(0.0, 0.2, 2)
                next_hop = far
                if link_index == 4 and bin_index >= 6:
                    next_hop = f"10.{link_index}.9.9"  # forwarding flip
                traceroutes.append(
                    make_traceroute(
                        probe + link_index * 100,
                        f"src{probe}",
                        f"dst{link_index}",
                        timestamp + probe,
                        [
                            [(near, float(value)) for value in near_rtts],
                            [(next_hop, float(value)) for value in far_rtts],
                        ],
                        from_asn=asn,
                    )
                )
    return traceroutes


TRACKED = {
    ("10.0.0.1", "10.0.0.2"),  # alarmed link
    ("10.1.0.1", "10.1.0.2"),  # link with a two-bin gap
    ("10.2.0.1", "10.2.0.2"),  # diversity-rejected link
    ("192.0.2.1", "192.0.2.2"),  # never observed at all
}


def _config(**kwargs):
    return PipelineConfig(track_links=set(TRACKED), **kwargs)


@pytest.fixture(scope="module")
def campaign():
    return _campaign()


@pytest.fixture(scope="module")
def serial_results(campaign):
    pipeline = Pipeline(_config())
    results = pipeline.run(campaign)
    return pipeline, results


# -- the equivalence properties ---------------------------------------------


class TestShardedEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_identical_results_stats_and_tracked(
        self, campaign, serial_results, n_shards
    ):
        serial, results = serial_results
        engine = ShardedPipeline(_config(n_shards=n_shards, executor="serial"))
        engine_results = engine.run(campaign)
        assert engine_results == results
        assert engine.stats() == serial.stats()
        assert engine.tracked == serial.tracked

    def test_campaign_exercises_every_path(self, serial_results):
        """Guard against vacuous equivalence: the synthetic campaign
        must actually produce alarms and rebalancing."""
        serial, results = serial_results
        assert sum(len(r.delay_alarms) for r in results) > 0
        assert sum(len(r.forwarding_alarms) for r in results) > 0
        stats = serial.stats()
        assert stats.links_alarmed > 0
        assert stats.links_analyzed < stats.links_observed  # rejection
        gap_link = ("10.1.0.1", "10.1.0.2")
        observed = [p.observed is None for p in serial.tracked[gap_link]]
        assert any(observed)  # the gap produced hole points

    def test_process_executor_identical(self, campaign, serial_results):
        serial, results = serial_results
        with ShardedPipeline(
            _config(n_shards=2, executor="process", n_jobs=2)
        ) as engine:
            engine_results = engine.run(campaign)
            assert engine_results == results
            assert engine.stats() == serial.stats()
            assert engine.tracked == serial.tracked

    def test_thread_executor_identical(self, campaign, serial_results):
        serial, results = serial_results
        with ShardedPipeline(
            _config(n_shards=3, executor="thread", n_jobs=2)
        ) as engine:
            assert engine.run(campaign) == results
            assert engine.stats() == serial.stats()

    def test_uneven_worker_to_shard_mapping(self, campaign, serial_results):
        """3 shards on 2 process workers: one worker owns two shards."""
        serial, results = serial_results
        with ShardedPipeline(
            _config(n_shards=3, executor="process", n_jobs=2)
        ) as engine:
            assert engine.run(campaign) == results
            assert engine.stats() == serial.stats()

    def test_stats_available_after_close(self, campaign):
        engine = ShardedPipeline(_config(n_shards=2, executor="serial"))
        engine.run(campaign)
        expected = engine.stats()
        engine.close()
        assert engine.stats() == expected
        assert engine.tracked  # served from the final snapshot cache

    def test_closed_engine_rejects_bins(self, campaign):
        engine = ShardedPipeline(_config(n_shards=2, executor="serial"))
        engine.close()
        with pytest.raises(RuntimeError):
            engine.process_bin(0, [])


class TestColumnarEquivalence:
    """The columnar ingestion fast path is bit-identical to objects.

    ``ShardedPipeline`` consuming a :class:`TracerouteBatch` (built from
    objects, decoded from JSONL, or loaded from the bin cache) must
    produce exactly the object path's results — every alarm, statistic
    and tracked point — at every shard count.
    """

    @pytest.fixture(scope="class")
    def batch(self, campaign):
        return TracerouteBatch.from_traceroutes(campaign)

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_batch_input_identical(
        self, campaign, serial_results, batch, n_shards
    ):
        serial, results = serial_results
        engine = ShardedPipeline(_config(n_shards=n_shards, executor="serial"))
        assert engine.run(batch) == results
        assert engine.stats() == serial.stats()
        assert engine.tracked == serial.tracked

    def test_jsonl_and_bincache_input_identical(
        self, campaign, serial_results, tmp_path
    ):
        """disk → decoder → engine and disk → cache → engine both match
        the serial object pipeline exactly."""
        serial, results = serial_results
        jsonl = tmp_path / "campaign.jsonl"
        write_traceroutes(jsonl, campaign)
        decoded = decode_traceroutes(jsonl)
        cache = tmp_path / "campaign.binc"
        write_bincache(cache, decoded)
        for source in (decoded, read_bincache(cache)):
            engine = ShardedPipeline(_config(n_shards=2, executor="serial"))
            assert engine.run(source) == results
            assert engine.stats() == serial.stats()
            assert engine.tracked == serial.tracked

    def test_serial_pipeline_accepts_columnar_input(
        self, serial_results, batch
    ):
        """The reference Pipeline materialises views per bin (fallback
        path) and still produces identical output."""
        serial, results = serial_results
        pipeline = Pipeline(_config())
        assert pipeline.run(batch) == results
        assert pipeline.stats() == serial.stats()

    def test_process_executor_with_columnar_input(
        self, serial_results, batch
    ):
        serial, results = serial_results
        with ShardedPipeline(
            _config(n_shards=2, executor="process", n_jobs=2)
        ) as engine:
            assert engine.run(batch) == results
            assert engine.stats() == serial.stats()


class TestCreatePipeline:
    def test_default_is_serial_reference(self):
        assert isinstance(create_pipeline(PipelineConfig()), Pipeline)
        assert isinstance(create_pipeline(None), Pipeline)

    def test_sharded_when_requested(self):
        engine = create_pipeline(PipelineConfig(n_shards=2, executor="serial"))
        assert isinstance(engine, ShardedPipeline)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(n_shards=0)
        with pytest.raises(ValueError):
            PipelineConfig(executor="gpu")
        with pytest.raises(ValueError):
            PipelineConfig(n_jobs=0)


class TestAnalyzeCampaignDispatch:
    def test_sharded_analyze_campaign_matches_serial(self, campaign):
        from repro.core import analyze_campaign
        from repro.net import AsMapper

        mapper = AsMapper([("0.0.0.0", 0, 64999)])
        serial = analyze_campaign(campaign, mapper)
        sharded = analyze_campaign(
            campaign, mapper, config=PipelineConfig(
                n_shards=4, executor="serial"
            )
        )
        assert sharded.bin_results == serial.bin_results
        assert sharded.stats() == serial.stats()
        assert isinstance(sharded.pipeline, ShardedPipeline)


# -- fused extraction equivalence -------------------------------------------

# "*" is deliberately included: a literal "*" responder string must
# merge with the lost-packet bucket exactly as the object path merges
# them (regression: the id-keyed columnar path once kept them apart).
ip_strategy = st.sampled_from(
    ["10.0.0.1", "10.0.0.2", "10.0.1.1", "10.1.0.1", "10.1.0.2", "*"]
)
rtt_strategy = st.floats(min_value=0.1, max_value=200.0, allow_nan=False)


@st.composite
def traceroute_strategy(draw):
    n_hops = draw(st.integers(min_value=1, max_value=5))
    hop_replies = []
    for _ in range(n_hops):
        n_replies = draw(st.integers(min_value=1, max_value=3))
        replies = []
        for _ in range(n_replies):
            if draw(st.booleans()):
                replies.append((draw(ip_strategy), draw(rtt_strategy)))
            else:
                replies.append((None, None))
        hop_replies.append(replies)
    return make_traceroute(
        prb_id=draw(st.integers(0, 20)),
        src_addr="192.0.2.1",
        dst_addr=draw(ip_strategy),
        timestamp=0,
        hop_replies=hop_replies,
        from_asn=draw(st.sampled_from([65001, 65002, 65003, None])),
    )


class TestExtractBinEquivalence:
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(traceroute_strategy(), max_size=15))
    def test_matches_reference_extractors(self, traceroutes):
        """extract_bin == (differential_rtts, forwarding_patterns),
        including per-probe sample order and AS attribution — for both
        the object input and its columnar twin."""
        reference_obs = differential_rtts(traceroutes)
        reference_pat = forwarding_patterns(traceroutes)
        batch = TracerouteBatch.from_traceroutes(traceroutes)
        for source in (traceroutes, batch, batch.view()):
            observations, patterns = extract_bin(source)
            assert set(observations) == set(reference_obs)
            for link, reference in reference_obs.items():
                fused = observations[link]
                assert fused.all_samples() == reference.all_samples()
                assert fused.samples_by_probe == reference.samples_by_probe
                assert fused.probe_asn == reference.probe_asn
            assert patterns == reference_pat

    def test_literal_star_responder_merges_with_lost_bucket(self):
        """A reply from a literal "*" IP and a lost packet in the same
        far hop land in one UNRESPONSIVE bucket on every input path."""
        traceroute = make_traceroute(
            1, "s", "d", 0,
            [
                [("R", 1.0)],
                [("*", 2.0), (None, None), ("11.0.0.1", 2.5)],
            ],
            from_asn=65001,
        )
        reference = forwarding_patterns([traceroute])
        assert reference[("R", "d")] == {"*": 2.0, "11.0.0.1": 1.0}
        batch = TracerouteBatch.from_traceroutes([traceroute])
        for source in ([traceroute], batch, batch.view()):
            _, patterns = extract_bin(source)
            assert patterns == reference

    def test_gap_ttls_and_uniform_fast_path(self):
        """Mixed uniform/non-uniform hops and a TTL gap in one trace."""
        traceroute = make_traceroute(
            1, "s", "d", 0,
            [
                [("A", 1.0), ("A", 1.2), ("A", 1.1)],  # uniform
                [("B", 2.0), ("C", 2.5), (None, None)],  # mixed
                [("D", 3.0)],
            ],
            from_asn=65001,
        )
        observations, patterns = extract_bin([traceroute])
        assert observations.keys() == differential_rtts([traceroute]).keys()
        assert patterns == forwarding_patterns([traceroute])
