"""Tests for traceroute sanitation (failure injection)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atlas import (
    Hop,
    Reply,
    SanitationReport,
    Traceroute,
    make_traceroute,
    sanitize,
    sanitize_one,
)
from repro.core import Pipeline


def _tr(hop_replies, ts=0):
    return make_traceroute(1, "s", "d", ts, hop_replies, from_asn=65001)


class TestSanitizeOne:
    def test_clean_result_untouched(self):
        tr = _tr([[("A", 1.0)], [("B", 2.0)]])
        sanitized, report = sanitize_one(tr)
        assert sanitized is tr  # same object: nothing to repair
        assert report.kept == 1
        assert report.repaired_rtts == 0

    def test_negative_rtt_becomes_timeout(self):
        tr = _tr([[("A", -3.0), ("A", 1.0)]])
        sanitized, report = sanitize_one(tr)
        assert report.repaired_rtts == 1
        assert sanitized.hops[0].replies[0].is_timeout
        assert sanitized.hops[0].replies[1].rtt_ms == 1.0

    def test_absurd_rtt_becomes_timeout(self):
        tr = _tr([[("A", 50_000.0)]])
        sanitized, report = sanitize_one(tr)
        assert report.repaired_rtts == 1
        assert sanitized.hops[0].is_unresponsive

    def test_zero_rtt_becomes_timeout(self):
        tr = _tr([[("A", 0.0)]])
        sanitized, report = sanitize_one(tr)
        assert report.repaired_rtts == 1

    def test_empty_result_dropped(self):
        tr = _tr([])
        sanitized, report = sanitize_one(tr)
        assert sanitized is None
        assert report.dropped_empty == 1

    def test_duplicate_ttls_dropped(self):
        hops = (
            Hop(ttl=1, replies=(Reply("A", 1.0),)),
            Hop(ttl=1, replies=(Reply("B", 2.0),)),
        )
        tr = Traceroute(1, "s", "d", 0, hops)
        sanitized, report = sanitize_one(tr)
        assert sanitized is None
        assert report.dropped_duplicate_ttl == 1

    def test_unsorted_ttls_reordered(self):
        hops = (
            Hop(ttl=2, replies=(Reply("B", 2.0),)),
            Hop(ttl=1, replies=(Reply("A", 1.0),)),
        )
        tr = Traceroute(1, "s", "d", 0, hops)
        sanitized, report = sanitize_one(tr)
        assert [h.ttl for h in sanitized.hops] == [1, 2]
        assert report.kept == 1

    def test_metadata_preserved(self):
        tr = make_traceroute(
            7, "src", "dst", 99, [[("A", -1.0)]], from_asn=65009, msm_id=12
        )
        sanitized, _ = sanitize_one(tr)
        assert sanitized.prb_id == 7
        assert sanitized.from_asn == 65009
        assert sanitized.msm_id == 12
        assert sanitized.timestamp == 99


class TestSanitizeStream:
    def test_stream_accumulates_report(self):
        corpus = [
            _tr([[("A", 1.0)], [("B", 2.0)]]),
            _tr([[("A", -1.0)]]),
            _tr([]),
        ]
        report = SanitationReport()
        kept = list(sanitize(corpus, report))
        assert len(kept) == 2
        assert report.kept == 2
        assert report.dropped == 1
        assert report.repaired_rtts == 1

    def test_pipeline_survives_sanitized_garbage(self):
        """End-to-end: garbage in, no crash, no bogus negative-RTT links."""
        corpus = [
            _tr([[("A", -5.0)], [("B", 1e9)]], ts=0),
            _tr([[("A", 1.0)], [("B", 2.0)]], ts=0),
            _tr([], ts=0),
        ]
        pipeline = Pipeline()
        result = pipeline.process_bin(0, list(sanitize(corpus)))
        assert result.n_traceroutes == 2
        # The garbage traceroute contributed nothing (all timeouts).
        assert result.n_links_observed == 1

    @settings(max_examples=40)
    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.one_of(st.none(), st.just("10.0.0.1")),
                    st.one_of(
                        st.none(),
                        st.floats(
                            min_value=-1e6,
                            max_value=1e6,
                            allow_nan=False,
                        ),
                    ),
                ),
                min_size=1,
                max_size=3,
            ),
            max_size=5,
        )
    )
    def test_sanitized_output_always_sane(self, hop_replies):
        """Whatever garbage goes in, survivors have positive sane RTTs
        and strictly increasing TTLs."""
        cleaned = [
            (ip, rtt if ip is not None else None)
            for hop in hop_replies
            for (ip, rtt) in hop
        ]
        tr = _tr(
            [
                [(ip, rtt) for ip, rtt in hop]
                for hop in hop_replies
            ]
        )
        sanitized, _ = sanitize_one(tr)
        if sanitized is None:
            return
        ttls = [h.ttl for h in sanitized.hops]
        assert ttls == sorted(ttls)
        for hop in sanitized.hops:
            for rtt in hop.rtts:
                assert 0.0 < rtt <= 10_000.0
