"""Tests for the per-packet delay/loss sampler and loop stripping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import DelaySampler, NoiseParams, combined_loss
from repro.simulation.routing import _strip_loops


class TestNoiseParams:
    def test_defaults_valid(self):
        params = NoiseParams()
        assert 0 < params.outlier_probability < 1

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseParams(outlier_probability=1.5)
        with pytest.raises(ValueError):
            NoiseParams(queue_shape=0)
        with pytest.raises(ValueError):
            NoiseParams(queue_scale_ms=-1)


class TestDelaySampler:
    def test_noise_nonnegative(self):
        sampler = DelaySampler(seed=1)
        noise = sampler.rtt_noise(10_000)
        assert noise.shape == (10_000,)
        assert np.all(noise >= 0)

    def test_noise_has_heavy_tail(self):
        """Outliers must produce samples far above the bulk — the paper's
        whole motivation for median statistics."""
        sampler = DelaySampler(seed=2)
        noise = sampler.rtt_noise(100_000)
        median = np.median(noise)
        assert noise.max() > median + 20 * noise.std() * 0.1
        assert np.mean(noise > median + 10) > 0.001

    def test_median_stable_despite_tail(self):
        sampler = DelaySampler(seed=3)
        medians = [np.median(sampler.rtt_noise(500)) for _ in range(50)]
        assert np.ptp(medians) < 0.5  # sub-millisecond band

    def test_deterministic_given_seed(self):
        a = DelaySampler(seed=7).rtt_noise(100)
        b = DelaySampler(seed=7).rtt_noise(100)
        assert np.array_equal(a, b)

    def test_survives_extremes(self):
        sampler = DelaySampler(seed=1)
        assert sampler.survives(50, 0.0).all()
        assert not sampler.survives(50, 1.0).any()

    def test_survives_rate(self):
        sampler = DelaySampler(seed=5)
        survived = sampler.survives(100_000, 0.3)
        assert 0.68 < survived.mean() < 0.72

    def test_no_outliers_configuration(self):
        params = NoiseParams(outlier_probability=0.0)
        sampler = DelaySampler(params, seed=1)
        noise = sampler.rtt_noise(10_000)
        assert noise.max() < 10.0


class TestCombinedLoss:
    def test_two_halves(self):
        assert combined_loss([0.5, 0.5]) == pytest.approx(0.75)

    def test_empty_is_zero(self):
        assert combined_loss([]) == 0.0

    def test_certain_loss_dominates(self):
        assert combined_loss([0.1, 1.0, 0.0]) == 1.0

    def test_clamps_out_of_range(self):
        assert combined_loss([2.0]) == 1.0
        assert combined_loss([-0.5]) == 0.0

    @settings(max_examples=50)
    @given(st.lists(st.floats(0, 1), max_size=10))
    def test_monotone_and_bounded(self, losses):
        total = combined_loss(losses)
        assert 0.0 <= total <= 1.0
        if losses:
            assert total >= max(min(1.0, max(losses)), 0.0) - 1e-12


class TestStripLoops:
    def test_no_loop_unchanged(self):
        assert _strip_loops(["a", "b", "c"]) == ["a", "b", "c"]

    def test_simple_loop_collapsed(self):
        assert _strip_loops(["a", "b", "c", "b", "d"]) == ["a", "b", "d"]

    def test_return_to_start(self):
        assert _strip_loops(["a", "b", "a", "c"]) == ["a", "c"]

    def test_nested_loops(self):
        assert _strip_loops(["a", "b", "c", "b", "c", "d"]) == [
            "a", "b", "c", "d",
        ]

    def test_empty_and_single(self):
        assert _strip_loops([]) == []
        assert _strip_loops(["a"]) == ["a"]

    @settings(max_examples=50)
    @given(st.lists(st.sampled_from("abcdef"), max_size=20))
    def test_result_has_no_duplicates(self, path):
        result = _strip_loops(list(path))
        assert len(result) == len(set(result))
        if path:
            assert result[0] == path[0]
            assert result[-1] == path[-1]
