"""Quality metrics are engine-invariant.

The engine guarantees bit-identical alarms across shard counts,
executors and checkpoint/resume splits; since :class:`QualityReport`
is a pure function of those alarms and the (fixed) ground truth, the
scores must be *exactly* equal too.  This pins the quality bench's
meaning: a score cannot depend on how the pipeline was deployed.
"""

import pytest

from repro.atlas import TimeBinner
from repro.core import (
    Pipeline,
    PipelineConfig,
    ShardedPipeline,
    load_snapshot,
    save_snapshot,
)
from repro.quality import MatchConfig, score_bin_results
from repro.simulation import (
    AtlasPlatform,
    CampaignConfig,
    CompositeScenario,
    DdosScenario,
    IxpOutageScenario,
    build_topology,
)

WINDOW = (6 * 3600, 9 * 3600)
DURATION_S = 12 * 3600


@pytest.fixture(scope="module")
def workload():
    """(scenario, campaign) rich enough to raise both alarm kinds."""
    topo = build_topology(seed=21)
    kroot = topo.services["K-root"]
    scenario = CompositeScenario(
        [
            DdosScenario(
                topo,
                "K-root",
                [kroot.instances[0].node],
                [WINDOW],
                seed=3,
            ),
            IxpOutageScenario(topo, ixp_asn=1200, window=WINDOW),
        ]
    )
    platform = AtlasPlatform(topo, scenario=scenario, seed=2)
    config = CampaignConfig(
        start=0,
        duration_s=DURATION_S,
        anchor_names=[a.name for a in topo.anchors[:2]],
    )
    return scenario, list(platform.run_campaign(config))


@pytest.fixture(scope="module")
def campaign_bins(workload):
    _, campaign = workload
    binner = TimeBinner(bin_s=3600, dense=True)
    return [(start, list(payload)) for start, payload in binner.bins(campaign)]


def _score(scenario, results):
    return score_bin_results(
        scenario.ground_truth(),
        results,
        config=MatchConfig(bin_s=3600, tolerance_bins=1),
        scenario=scenario.name,
    )


@pytest.fixture(scope="module")
def reference(workload):
    scenario, campaign = workload
    results = Pipeline(PipelineConfig()).run(campaign)
    return _score(scenario, results)


def test_reference_is_not_vacuous(reference):
    """Guard: the workload must actually produce labels and alarms."""
    assert reference.n_units > 0
    assert reference.n_alarms > 0
    assert reference.recall > 0.0


@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_shard_count_invariance(workload, reference, n_shards):
    scenario, campaign = workload
    engine = ShardedPipeline(
        PipelineConfig(n_shards=n_shards, executor="serial")
    )
    assert _score(scenario, engine.run(campaign)) == reference


def test_process_executor_invariance(workload, reference):
    scenario, campaign = workload
    with ShardedPipeline(
        PipelineConfig(n_shards=2, executor="process", n_jobs=2)
    ) as engine:
        assert _score(scenario, engine.run(campaign)) == reference


@pytest.mark.parametrize("split", [2, 7])
def test_checkpoint_resume_invariance(
    workload, campaign_bins, reference, split, tmp_path
):
    """Checkpoint after *split* bins, resume in a fresh engine: the
    quality report of the stitched run equals the uninterrupted one."""
    scenario, campaign = workload
    engine = ShardedPipeline(PipelineConfig(n_shards=2, executor="serial"))
    first = [
        engine.process_bin(start, payload)
        for start, payload in campaign_bins[:split]
    ]
    path = tmp_path / "state.ckpt"
    save_snapshot(path, engine.snapshot(results=first))
    resumed = ShardedPipeline(PipelineConfig(n_shards=2, executor="serial"))
    results = resumed.run(campaign, resume_from=load_snapshot(path))
    assert _score(scenario, results) == reference
