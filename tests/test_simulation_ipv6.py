"""Tests for dual-stack simulation and IPv6 campaign analysis."""

import pytest

from repro.core import analyze_campaign
from repro.net import AsMapper, is_valid_ipv6
from repro.simulation import (
    AtlasPlatform,
    CampaignConfig,
    DdosScenario,
    TargetSpec,
    TopologyParams,
    build_topology,
)


@pytest.fixture(scope="module")
def topo():
    return build_topology(seed=13)


@pytest.fixture(scope="module")
def platform(topo):
    return AtlasPlatform(topo, seed=3)


class TestDualStackTopology:
    def test_every_edge_has_both_ingress_families(self, topo):
        for u, v, data in topo.graph.edges(data=True):
            if topo.graph.nodes[v].get("virtual"):
                continue
            assert data["ingress_ip"] is not None
            assert data["ingress_ip6"] is not None
            assert is_valid_ipv6(data["ingress_ip6"])

    def test_probes_and_anchors_dual_stack(self, topo):
        for probe in topo.probes:
            assert is_valid_ipv6(probe.ip6)
        for anchor in topo.anchors:
            assert is_valid_ipv6(anchor.ip6)

    def test_services_have_v6_addresses(self, topo):
        assert topo.services["K-root"].service_ip6 == "2001:7fd::1"
        assert topo.services["F-root"].service_ip6 == "2001:500:2f::f"

    def test_prefix_table_dual_stack(self, topo):
        mapper = AsMapper(topo.prefix_table())
        probe = topo.probes[0]
        assert mapper.asn_of(probe.ip) == probe.asn
        assert mapper.asn_of(probe.ip6) == probe.asn
        assert mapper.asn_of("2001:7fd::1") == 25152

    def test_unique_v6_interfaces(self, topo):
        service_ips = {s.service_ip6 for s in topo.services.values()}
        seen = set()
        for _, _, data in topo.graph.edges(data=True):
            ip6 = data.get("ingress_ip6")
            if ip6 is None or ip6 in service_ips:
                continue
            assert ip6 not in seen, f"duplicate v6 interface {ip6}"
            seen.add(ip6)


class TestV6Traceroutes:
    def test_v6_traceroute_shape(self, topo, platform):
        target = TargetSpec.for_service(topo.services["K-root"], af=6)
        tr = platform.engine.run(topo.probes[0], target, 0)
        assert tr.af == 6
        assert tr.src_addr == topo.probes[0].ip6
        assert tr.dst_addr == "2001:7fd::1"
        assert tr.hops[-1].primary_ip == "2001:7fd::1"
        for hop in tr.hops:
            for ip in hop.responding_ips:
                assert is_valid_ipv6(ip)

    def test_same_route_both_families(self, topo, platform):
        """Dual-stack congruence: v4 and v6 use the same router path."""
        anchor = topo.anchors[0]
        probe = topo.probes[1]
        plan4 = platform.engine._plan_for(
            probe, TargetSpec.for_anchor(anchor, af=4), None
        )
        plan6 = platform.engine._plan_for(
            probe, TargetSpec.for_anchor(anchor, af=6), None
        )
        assert [h.node for h in plan4.hops] == [h.node for h in plan6.hops]

    def test_af_validation(self, topo):
        with pytest.raises(ValueError):
            TargetSpec.for_anchor(topo.anchors[0], af=5)
        with pytest.raises(ValueError):
            CampaignConfig(duration_s=3600, address_family=7)

    def test_json_roundtrip_preserves_af(self, topo, platform):
        from repro.atlas import Traceroute

        target = TargetSpec.for_anchor(topo.anchors[0], af=6)
        tr = platform.engine.run(topo.probes[0], target, 0)
        assert Traceroute.from_json(tr.to_json()).af == 6


class TestV6Campaign:
    def test_v6_campaign_analyzable(self, topo, platform):
        config = CampaignConfig(
            duration_s=4 * 3600,
            address_family=6,
            include_anchoring=False,
        )
        analysis = analyze_campaign(
            platform.run_campaign(config), platform.as_mapper()
        )
        stats = analysis.stats()
        assert stats.traceroutes_processed > 0
        assert stats.links_observed > 0
        # v6 links are (v6, v6) IP pairs.
        some_link = next(iter(analysis.pipeline._links_seen))
        assert is_valid_ipv6(some_link[0])

    def test_v6_event_detection(self, topo):
        """The detection methods are family-agnostic: a DDoS seen over
        IPv6 raises the same alarms."""
        kroot = topo.services["K-root"]
        scenario = DdosScenario(
            topo,
            "K-root",
            [i.node for i in kroot.instances[:2]],
            windows=[(8 * 3600, 10 * 3600)],
            seed=3,
        )
        platform = AtlasPlatform(topo, scenario=scenario, seed=3)
        config = CampaignConfig(
            duration_s=12 * 3600, address_family=6, include_anchoring=False
        )
        analysis = analyze_campaign(
            platform.run_campaign(config), platform.as_mapper()
        )
        hours = {a.timestamp // 3600 for a in analysis.delay_alarms}
        assert hours & {8, 9}
        v6_kroot = [
            a for a in analysis.delay_alarms if a.involves("2001:7fd::1")
        ]
        assert v6_kroot, "no alarm names the K-root v6 address"
