"""Tests for delay-change detection (paper §4.2.2-§4.2.4)."""

import numpy as np
import pytest

from repro.core import DelayChangeDetector, deviation_score
from repro.stats import WilsonInterval


def _samples(rng, centre, n=60, spread=0.3):
    return list(rng.normal(centre, spread, size=n))


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestDeviationScore:
    def test_overlap_is_zero(self):
        observed = WilsonInterval(5.2, 5.0, 5.4, 100)
        reference = WilsonInterval(5.3, 5.1, 5.5, 100)
        assert deviation_score(observed, reference) == 0.0

    def test_increase_positive(self):
        """Eq. 6 first branch: observed above the reference."""
        observed = WilsonInterval(8.0, 7.5, 8.5, 100)
        reference = WilsonInterval(5.0, 4.8, 5.2, 100)
        expected = (7.5 - 5.2) / (5.2 - 5.0)
        assert deviation_score(observed, reference) == pytest.approx(expected)

    def test_decrease_also_positive(self):
        """Eq. 6 second branch: both branches yield positive deviations."""
        observed = WilsonInterval(2.0, 1.8, 2.2, 100)
        reference = WilsonInterval(5.0, 4.8, 5.2, 100)
        expected = (4.8 - 2.2) / (5.0 - 4.8)
        assert deviation_score(observed, reference) == pytest.approx(expected)

    def test_zero_width_reference_guarded(self):
        observed = WilsonInterval(8.0, 8.0, 8.0, 10)
        reference = WilsonInterval(5.0, 5.0, 5.0, 10)
        score = deviation_score(observed, reference)
        assert np.isfinite(score)
        assert score > 0

    def test_zero_width_reference_uses_epsilon_denominator(self):
        """A degenerate (zero-width) reference divides by _EPSILON_MS
        exactly — huge but finite scores, in both shift directions."""
        from repro.core.delaydetector import _EPSILON_MS

        reference = WilsonInterval(5.0, 5.0, 5.0, 10)
        increase = WilsonInterval(8.0, 7.0, 9.0, 10)
        decrease = WilsonInterval(2.0, 1.0, 3.0, 10)
        assert deviation_score(increase, reference) == (7.0 - 5.0) / _EPSILON_MS
        assert deviation_score(decrease, reference) == (5.0 - 3.0) / _EPSILON_MS

    def test_batch_matches_scalar_including_zero_width(self):
        """deviation_score_batch == deviation_score elementwise, bit for
        bit, across all three branches and the ε guard."""
        from repro.core.delaydetector import deviation_score_batch

        cases = [
            (WilsonInterval(5.2, 5.0, 5.4, 9), WilsonInterval(5.3, 5.1, 5.5, 9)),
            (WilsonInterval(8.0, 7.5, 8.5, 9), WilsonInterval(5.0, 4.8, 5.2, 9)),
            (WilsonInterval(2.0, 1.8, 2.2, 9), WilsonInterval(5.0, 4.8, 5.2, 9)),
            (WilsonInterval(8.0, 8.0, 8.0, 9), WilsonInterval(5.0, 5.0, 5.0, 9)),
            (WilsonInterval(1.0, 0.5, 1.5, 9), WilsonInterval(5.0, 5.0, 5.0, 9)),
        ]
        batch = deviation_score_batch(
            np.array([obs.median for obs, _ in cases]),
            np.array([obs.lower for obs, _ in cases]),
            np.array([obs.upper for obs, _ in cases]),
            np.array([ref.median for _, ref in cases]),
            np.array([ref.lower for _, ref in cases]),
            np.array([ref.upper for _, ref in cases]),
        )
        for index, (observed, reference) in enumerate(cases):
            assert batch[index] == deviation_score(observed, reference)

    def test_larger_gap_larger_deviation(self):
        reference = WilsonInterval(5.0, 4.8, 5.2, 100)
        near = WilsonInterval(6.0, 5.8, 6.2, 100)
        far = WilsonInterval(9.0, 8.8, 9.2, 100)
        assert deviation_score(far, reference) > deviation_score(near, reference)


class TestWarmupAndReference:
    def test_no_alarm_during_warmup(self, rng):
        detector = DelayChangeDetector(alpha=0.1)
        link = ("A", "B")
        for t in range(3):
            alarm = detector.observe(t, link, _samples(rng, 5.0))
            assert alarm is None
        assert detector.reference_of(link) is not None

    def test_reference_seeded_with_median_of_first_three(self, rng):
        detector = DelayChangeDetector(alpha=0.1)
        link = ("A", "B")
        detector.observe(0, link, [5.0] * 30)
        detector.observe(1, link, [9.0] * 30)
        detector.observe(2, link, [6.0] * 30)
        reference = detector.reference_of(link)
        assert reference.median == pytest.approx(6.0)  # median(5, 9, 6)

    def test_empty_samples_ignored(self):
        detector = DelayChangeDetector()
        assert detector.observe(0, ("A", "B"), []) is None
        assert detector.n_links == 0

    def test_states_tracked_per_link(self, rng):
        detector = DelayChangeDetector()
        detector.observe(0, ("A", "B"), _samples(rng, 5.0))
        detector.observe(0, ("C", "D"), _samples(rng, 9.0))
        assert detector.n_links == 2
        assert detector.state_of(("A", "B")) is not None
        assert detector.state_of(("X", "Y")) is None


class TestDetection:
    def _warm(self, detector, link, rng, centre=5.0, bins=6):
        for t in range(bins):
            detector.observe(t, link, _samples(rng, centre))

    def test_stable_link_never_alarms(self, rng):
        detector = DelayChangeDetector()
        link = ("A", "B")
        alarms = []
        for t in range(48):
            alarm = detector.observe(t, link, _samples(rng, 5.0))
            if alarm:
                alarms.append(alarm)
        assert alarms == []

    def test_large_shift_raises_alarm(self, rng):
        detector = DelayChangeDetector()
        link = ("A", "B")
        self._warm(detector, link, rng)
        alarm = detector.observe(10, link, _samples(rng, 15.0))
        assert alarm is not None
        assert alarm.direction == 1
        assert alarm.deviation > 0
        assert alarm.link == link
        assert alarm.median_shift_ms == pytest.approx(10.0, abs=0.5)

    def test_delay_decrease_detected_with_direction(self, rng):
        detector = DelayChangeDetector()
        link = ("A", "B")
        self._warm(detector, link, rng, centre=20.0)
        alarm = detector.observe(10, link, _samples(rng, 10.0))
        assert alarm is not None
        assert alarm.direction == -1
        assert alarm.deviation > 0

    def test_sub_millisecond_shift_not_reported(self, rng):
        """§4.2.3: statistically significant but < 1 ms -> discarded."""
        detector = DelayChangeDetector()
        link = ("A", "B")
        for t in range(12):
            detector.observe(t, link, _samples(rng, 5.0, n=400, spread=0.05))
        alarm = detector.observe(12, link, _samples(rng, 5.6, n=400, spread=0.05))
        assert alarm is None

    def test_min_shift_configurable(self, rng):
        detector = DelayChangeDetector(min_shift_ms=0.0)
        link = ("A", "B")
        for t in range(12):
            detector.observe(t, link, _samples(rng, 5.0, n=400, spread=0.05))
        alarm = detector.observe(12, link, _samples(rng, 5.6, n=400, spread=0.05))
        assert alarm is not None

    def test_noisy_bin_widens_ci_no_alarm(self, rng):
        """A noisier-but-centred bin must not alarm (Fig. 2, June 1st)."""
        detector = DelayChangeDetector()
        link = ("A", "B")
        self._warm(detector, link, rng)
        alarm = detector.observe(10, link, _samples(rng, 5.0, spread=3.0))
        assert alarm is None

    def test_alarm_counts_per_link(self, rng):
        detector = DelayChangeDetector()
        link = ("A", "B")
        self._warm(detector, link, rng)
        detector.observe(10, link, _samples(rng, 15.0))
        assert detector.state_of(link).alarms_raised == 1


class TestWinsorizedUpdates:
    def test_no_post_event_tail_with_winsorize(self, rng):
        """After a large 2-bin event the reference must not stay
        contaminated (the motivation for winsorized updates)."""
        detector = DelayChangeDetector(alpha=0.05, winsorize=True)
        link = ("A", "B")
        for t in range(8):
            detector.observe(t, link, _samples(rng, 5.0, n=200, spread=0.1))
        for t in range(8, 10):  # big event
            alarm = detector.observe(t, link, _samples(rng, 65.0, n=200, spread=0.1))
            assert alarm is not None
        post = []
        for t in range(10, 30):
            alarm = detector.observe(t, link, _samples(rng, 5.0, n=200, spread=0.1))
            if alarm:
                post.append(alarm)
        assert post == []

    def test_paper_literal_update_contaminates(self, rng):
        """Without winsorization the same workload leaves a tail — this is
        the ablation the DESIGN.md documents."""
        detector = DelayChangeDetector(alpha=0.05, winsorize=False)
        link = ("A", "B")
        for t in range(8):
            detector.observe(t, link, _samples(rng, 5.0, n=200, spread=0.1))
        for t in range(8, 10):
            detector.observe(t, link, _samples(rng, 65.0, n=200, spread=0.1))
        post = []
        for t in range(10, 30):
            alarm = detector.observe(t, link, _samples(rng, 5.0, n=200, spread=0.1))
            if alarm:
                post.append(alarm)
        assert len(post) > 0

    def test_winsorize_tracks_legitimate_drift(self, rng):
        """A persistent level change must still be absorbed eventually:
        winsorization slows adaptation but must not freeze it."""
        detector = DelayChangeDetector(alpha=0.3, winsorize=True)
        link = ("A", "B")
        for t in range(6):
            detector.observe(t, link, _samples(rng, 5.0, n=100, spread=0.2))
        before = detector.reference_of(link).median
        for t in range(6, 120):
            detector.observe(t, link, _samples(rng, 9.0, n=100, spread=0.2))
        after = detector.reference_of(link).median
        assert after > before + 1.0


class TestValidation:
    def test_rejects_negative_min_shift(self):
        with pytest.raises(ValueError):
            DelayChangeDetector(min_shift_ms=-1.0)
