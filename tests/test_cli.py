"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestGenerateAnalyze:
    @pytest.fixture(scope="class")
    def campaign_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "campaign.jsonl"
        code = main(
            [
                "generate",
                "--hours", "2",
                "--seed", "3",
                "--probes", "12",
                "--no-anchoring",
                "--out", str(path),
            ]
        )
        assert code == 0
        return path

    def test_generate_writes_jsonl(self, campaign_path):
        lines = campaign_path.read_text().strip().splitlines()
        assert len(lines) > 0
        record = json.loads(lines[0])
        assert "prb_id" in record and "result" in record

    def test_analyze_table_output(self, campaign_path, capsys):
        code = main(
            ["analyze", str(campaign_path), "--seed", "3", "--probes", "12"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "links analyzed" in out
        assert "delay alarms" in out

    def test_analyze_json_output(self, campaign_path, capsys):
        code = main(
            [
                "analyze", str(campaign_path),
                "--seed", "3", "--probes", "12", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "stats" in payload
        assert payload["stats"]["traceroutes_processed"] > 0

    def test_analyze_with_alpha_override(self, campaign_path, capsys):
        code = main(
            [
                "analyze", str(campaign_path),
                "--seed", "3", "--probes", "12", "--alpha", "0.05",
            ]
        )
        assert code == 0

    def test_analyze_bin_cache_matches_plain_ingestion(
        self, campaign_path, capsys
    ):
        """--bin-cache builds the cache on first use, hits it on the
        second, and the JSON report is identical to plain ingestion."""
        from pathlib import Path

        base = ["analyze", str(campaign_path), "--seed", "3",
                "--probes", "12", "--json"]
        assert main(base) == 0
        plain = capsys.readouterr().out

        assert main(base + ["--bin-cache"]) == 0
        first = capsys.readouterr().out
        cache = Path(str(campaign_path) + ".binc")
        assert cache.exists()
        assert main(base + ["--bin-cache"]) == 0
        second = capsys.readouterr().out
        assert first == second == plain

    def test_analyze_bin_cache_custom_path_and_status_line(
        self, campaign_path, tmp_path, capsys
    ):
        cache = tmp_path / "custom.binc"
        argv = [
            "analyze", str(campaign_path), "--seed", "3", "--probes", "12",
            "--bin-cache", str(cache),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"bin cache rebuilt: {cache}" in out
        assert cache.exists()
        assert main(argv) == 0
        assert f"bin cache hit: {cache}" in capsys.readouterr().out


class TestReplay:
    def test_replay_outage_detects_event(self, capsys):
        code = main(["replay", "outage", "--hours", "24", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "replaying 'outage'" in out
        assert "AS1200" in out

    def test_unknown_case_rejected(self):
        with pytest.raises(SystemExit):
            main(["replay", "nonsense"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
