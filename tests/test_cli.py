"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestGenerateAnalyze:
    @pytest.fixture(scope="class")
    def campaign_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "campaign.jsonl"
        code = main(
            [
                "generate",
                "--hours", "2",
                "--seed", "3",
                "--probes", "12",
                "--no-anchoring",
                "--out", str(path),
            ]
        )
        assert code == 0
        return path

    def test_generate_writes_jsonl(self, campaign_path):
        lines = campaign_path.read_text().strip().splitlines()
        assert len(lines) > 0
        record = json.loads(lines[0])
        assert "prb_id" in record and "result" in record

    def test_generate_scenario_writes_labels(self, tmp_path):
        from repro.quality import GroundTruth

        out = tmp_path / "campaign.jsonl"
        labels = tmp_path / "truth.json"
        code = main(
            [
                "generate",
                "--hours", "6",
                "--seed", "3",
                "--probes", "12",
                "--no-anchoring",
                "--scenario", "ddos",
                "--labels", str(labels),
                "--out", str(out),
            ]
        )
        assert code == 0
        truth = GroundTruth.from_json(labels.read_text())
        assert truth.delay
        assert truth.events() == ["ddos:K-root"]

    def test_generate_labels_require_scenario(self, tmp_path):
        code = main(
            [
                "generate",
                "--hours", "2",
                "--labels", str(tmp_path / "truth.json"),
                "--out", str(tmp_path / "campaign.jsonl"),
            ]
        )
        assert code == 2

    def test_analyze_table_output(self, campaign_path, capsys):
        code = main(
            ["analyze", str(campaign_path), "--seed", "3", "--probes", "12"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "links analyzed" in out
        assert "delay alarms" in out

    def test_analyze_json_output(self, campaign_path, capsys):
        code = main(
            [
                "analyze", str(campaign_path),
                "--seed", "3", "--probes", "12", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "stats" in payload
        assert payload["stats"]["traceroutes_processed"] > 0

    def test_analyze_with_alpha_override(self, campaign_path, capsys):
        code = main(
            [
                "analyze", str(campaign_path),
                "--seed", "3", "--probes", "12", "--alpha", "0.05",
            ]
        )
        assert code == 0

    def test_analyze_bin_cache_matches_plain_ingestion(
        self, campaign_path, capsys
    ):
        """--bin-cache builds the cache on first use, hits it on the
        second, and the JSON report is identical to plain ingestion."""
        from pathlib import Path

        base = ["analyze", str(campaign_path), "--seed", "3",
                "--probes", "12", "--json"]
        assert main(base) == 0
        plain = capsys.readouterr().out

        assert main(base + ["--bin-cache"]) == 0
        first = capsys.readouterr().out
        cache = Path(str(campaign_path) + ".binc")
        assert cache.exists()
        assert main(base + ["--bin-cache"]) == 0
        second = capsys.readouterr().out
        assert first == second == plain

    def test_analyze_bin_cache_custom_path_and_status_line(
        self, campaign_path, tmp_path, capsys
    ):
        cache = tmp_path / "custom.binc"
        argv = [
            "analyze", str(campaign_path), "--seed", "3", "--probes", "12",
            "--bin-cache", str(cache),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"bin cache rebuilt: {cache}" in out
        assert cache.exists()
        assert main(argv) == 0
        assert f"bin cache hit: {cache}" in capsys.readouterr().out


class TestAnalyzeCheckpoint:
    @pytest.fixture(scope="class")
    def campaign_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-ckpt") / "campaign.jsonl"
        assert main(
            [
                "generate", "--hours", "2", "--seed", "3", "--probes", "12",
                "--no-anchoring", "--out", str(path),
            ]
        ) == 0
        return path

    def test_checkpointed_analyze_matches_and_resumes(
        self, campaign_path, tmp_path, capsys
    ):
        """--checkpoint writes a resumable snapshot; the rerun resumes
        from it and prints the identical JSON report."""
        base = ["analyze", str(campaign_path), "--seed", "3",
                "--probes", "12", "--json"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        ckpt = tmp_path / "state.ckpt"
        argv = base + ["--checkpoint", str(ckpt), "--checkpoint-every", "1"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert ckpt.exists()
        assert main(argv) == 0  # resumed run: every bin already covered
        second = capsys.readouterr().out
        assert first == second == plain

    def test_checkpoint_every_requires_checkpoint(self, campaign_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "analyze", str(campaign_path), "--seed", "3",
                    "--probes", "12", "--checkpoint-every", "2",
                ]
            )


class TestMonitor:
    @pytest.fixture(scope="class")
    def feed_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-monitor") / "feed.jsonl"
        assert main(
            [
                "generate", "--hours", "3", "--seed", "3", "--probes", "12",
                "--no-anchoring", "--out", str(path),
            ]
        ) == 0
        return path

    def test_monitor_emits_closed_bins(self, feed_path, capsys):
        assert main(["monitor", str(feed_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("bin ") == 3
        assert "monitor done: 3 bins" in out

    def test_monitor_json_mode(self, feed_path, capsys):
        import json

        assert main(["monitor", str(feed_path), "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [record["bin"] for record in records] == [0, 3600, 7200]
        assert all("delay_alarms" in record for record in records)
        assert sum(record["n_traceroutes"] for record in records) > 0

    def test_monitor_checkpoint_and_resume(
        self, feed_path, tmp_path, capsys
    ):
        ckpt = tmp_path / "mon.ckpt"
        argv = ["monitor", str(feed_path), "--checkpoint", str(ckpt)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "monitor done: 3 bins" in first
        assert ckpt.exists()
        # Rerun over the same feed: everything is replay, nothing is
        # processed twice.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "resumed from checkpoint: 3 bins" in second
        assert "monitor done: 0 bins" in second
        assert "replayed results skipped" in second

    def test_monitor_checkpoint_resume_after_feed_grows(
        self, feed_path, tmp_path, capsys
    ):
        """New lines appended after the checkpoint are processed; the
        old prefix is dropped as replay."""
        import shutil

        feed = tmp_path / "grow.jsonl"
        lines = feed_path.read_text().strip().splitlines()
        # First two hours only.
        import json as _json

        first_part = [
            line for line in lines
            if _json.loads(line)["timestamp"] < 2 * 3600
        ]
        feed.write_text("\n".join(first_part) + "\n")
        ckpt = tmp_path / "mon.ckpt"
        argv = ["monitor", str(feed), "--checkpoint", str(ckpt)]
        assert main(argv) == 0
        capsys.readouterr()
        shutil.copy(feed_path, feed)  # the feed grew to three hours
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint" in out
        # Bins 0 (only bin closed before drain in run 1) .. more bins now.
        assert "monitor done:" in out

    def test_monitor_skips_undecodable_lines(self, feed_path, tmp_path,
                                             capsys):
        feed = tmp_path / "dirty.jsonl"
        feed.write_text(
            "not json\n" + feed_path.read_text() + "{\"half\": true}\n"
        )
        assert main(["monitor", str(feed)]) == 0
        out = capsys.readouterr().out
        assert "2 undecodable lines skipped" in out

    def test_monitor_max_bins_stops_early(self, feed_path, capsys):
        assert main(["monitor", str(feed_path), "--max-bins", "1"]) == 0
        out = capsys.readouterr().out
        assert "monitor done: 1 bins" in out

    def test_monitor_corrupt_checkpoint_starts_fresh(
        self, feed_path, tmp_path, capsys
    ):
        ckpt = tmp_path / "mon.ckpt"
        ckpt.write_bytes(b"garbage that is not a checkpoint")
        assert main(
            ["monitor", str(feed_path), "--checkpoint", str(ckpt)]
        ) == 0
        captured = capsys.readouterr()
        assert "checkpoint ignored" in captured.err
        assert "monitor done: 3 bins" in captured.out

    def test_monitor_checkpoint_of_other_feed_ignored(
        self, feed_path, tmp_path, capsys
    ):
        """A checkpoint taken on one feed must not resume on another."""
        other = tmp_path / "other.jsonl"
        assert main(
            [
                "generate", "--hours", "2", "--seed", "9", "--probes", "12",
                "--no-anchoring", "--out", str(other),
            ]
        ) == 0
        ckpt = tmp_path / "mon.ckpt"
        assert main(
            ["monitor", str(other), "--checkpoint", str(ckpt)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["monitor", str(feed_path), "--checkpoint", str(ckpt)]
        ) == 0
        captured = capsys.readouterr()
        assert "different feed" in captured.err
        assert "monitor done: 3 bins" in captured.out

    def test_monitor_sharded_engine(self, feed_path, capsys):
        assert main(
            ["monitor", str(feed_path), "--shards", "2", "--jobs", "1"]
        ) == 0
        assert "monitor done: 3 bins" in capsys.readouterr().out


class TestAlarmStore:
    @pytest.fixture(scope="class")
    def campaign_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-store") / "campaign.jsonl"
        assert main(
            [
                "generate", "--hours", "3", "--seed", "3", "--probes", "12",
                "--no-anchoring", "--out", str(path),
            ]
        ) == 0
        return path

    def test_analyze_store_export(self, campaign_path, tmp_path, capsys):
        from repro.service import StoreQuery

        store = tmp_path / "alarms.store"
        assert main(
            [
                "analyze", str(campaign_path), "--seed", "3",
                "--probes", "12", "--store", str(store),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert f"alarm store updated: {store}" in out
        query = StoreQuery(store)
        assert query.store.manifest.n_bins == 3
        # Re-running recreates the store deterministically.
        assert main(
            [
                "analyze", str(campaign_path), "--seed", "3",
                "--probes", "12", "--store", str(store),
            ]
        ) == 0
        assert StoreQuery(store).store.manifest.n_bins == 3

    def test_monitor_store_appends_and_skips_replay(
        self, campaign_path, tmp_path, capsys
    ):
        from repro.service import StoreQuery

        store = tmp_path / "monitor.store"
        argv = [
            "monitor", str(campaign_path), "--seed", "3", "--probes", "12",
            "--store", str(store),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"alarm store: {store}" in out
        generation = StoreQuery(store).generation
        assert generation >= 1
        # A rerun replays the same feed; the store must not grow.
        assert main(argv) == 0
        assert StoreQuery(store).generation == generation
        assert StoreQuery(store).store.manifest.n_bins == 3

    def test_monitor_store_matches_analyze_store(
        self, campaign_path, tmp_path, capsys
    ):
        from repro.service import StoreQuery

        analyzed = tmp_path / "a.store"
        monitored = tmp_path / "m.store"
        assert main(
            [
                "analyze", str(campaign_path), "--seed", "3",
                "--probes", "12", "--store", str(analyzed),
            ]
        ) == 0
        assert main(
            [
                "monitor", str(campaign_path), "--seed", "3",
                "--probes", "12", "--store", str(monitored),
            ]
        ) == 0
        capsys.readouterr()
        one, two = StoreQuery(analyzed), StoreQuery(monitored)
        assert one.monitored_asns() == two.monitored_asns()
        for asn in one.monitored_asns():
            assert one.as_condition(asn) == two.as_condition(asn)

    def test_serve_missing_store_fails_cleanly(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope.store")]) == 1
        assert "repro: error:" in capsys.readouterr().err


class TestReplay:
    def test_replay_outage_detects_event(self, capsys):
        code = main(["replay", "outage", "--hours", "24", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "replaying 'outage'" in out
        assert "AS1200" in out

    def test_unknown_case_rejected(self):
        with pytest.raises(SystemExit):
            main(["replay", "nonsense"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
