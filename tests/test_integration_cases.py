"""Integration tests: the three case studies end-to-end at test scale.

Each test generates a campaign on the synthetic Internet with one of the
paper's scenarios injected and asserts the qualitative signature of the
corresponding section: delay alarms and magnitude peaks for the DDoS
(§7.1), simultaneous delay + forwarding anomalies with rerouting for the
route leak (§7.2), and forwarding-only detection for the IXP outage
(§7.3).
"""

import numpy as np
import pytest

from repro.core import analyze_campaign
from repro.simulation import (
    AtlasPlatform,
    CampaignConfig,
    DdosScenario,
    IxpOutageScenario,
    RouteLeakScenario,
    TopologyParams,
    build_topology,
)

#: Smaller-than-default campaign so the whole module stays fast.
PARAMS = TopologyParams.case_study()
DURATION_H = 30
EVENT = (24 * 3600, 26 * 3600)  # two-hour event near the end
WINDOW_BINS = 20  # sliding window for the magnitude (short campaign)


@pytest.fixture(scope="module")
def topo():
    return build_topology(PARAMS, seed=5)


def _analyze(topo, scenario, include_anchoring=True):
    platform = AtlasPlatform(topo, scenario=scenario, seed=7)
    config = CampaignConfig(
        duration_s=DURATION_H * 3600, include_anchoring=include_anchoring
    )
    return analyze_campaign(
        platform.run_campaign(config), platform.as_mapper()
    )


@pytest.fixture(scope="module")
def ddos_analysis(topo):
    kroot = topo.services["K-root"]
    attacked = [kroot.instances[0].node, kroot.instances[1].node]
    scenario = DdosScenario(topo, "K-root", attacked, windows=[EVENT], seed=3)
    return _analyze(topo, scenario)


@pytest.fixture(scope="module")
def leak_analysis(topo):
    waypoint = topo.routers_of_as(4788)[0]
    entry = topo.routers_of_as(3549)[0]
    scenario = RouteLeakScenario(
        topo,
        leak_waypoint=waypoint,
        leak_entry=entry,
        leaked_targets={a.name for a in topo.anchors},
        window=EVENT,
        seed=3,
    )
    return _analyze(topo, scenario)


@pytest.fixture(scope="module")
def outage_analysis(topo):
    scenario = IxpOutageScenario(topo, ixp_asn=1200, window=EVENT)
    return _analyze(topo, scenario)


class TestDdosCase:
    def test_delay_alarms_inside_attack_window(self, ddos_analysis):
        hours = {a.timestamp // 3600 for a in ddos_analysis.delay_alarms}
        event_hours = {EVENT[0] // 3600, EVENT[0] // 3600 + 1}
        assert hours & event_hours
        # No alarm storm outside the attack (positives allowed but rare).
        outside = hours - event_hours
        assert len(outside) <= 2

    def test_kroot_as_magnitude_peaks_at_attack(self, ddos_analysis):
        magnitudes = ddos_analysis.aggregator.delay_magnitudes(
            window_bins=WINDOW_BINS
        )
        assert 25152 in magnitudes
        series = magnitudes[25152]
        peak_hour = int(np.argmax(series))
        assert peak_hour in (EVENT[0] // 3600, EVENT[0] // 3600 + 1)
        assert series[peak_hour] > 5

    def test_some_kroot_links_alarmed(self, ddos_analysis):
        kroot_alarms = [
            a
            for a in ddos_analysis.delay_alarms
            if a.involves("193.0.14.129")
        ]
        assert kroot_alarms
        assert all(a.direction == 1 for a in kroot_alarms)

    def test_stats_accumulated(self, ddos_analysis):
        stats = ddos_analysis.stats()
        assert stats.links_analyzed >= 20
        assert stats.forwarding_models > 50
        assert 0 < stats.fraction_links_alarmed < 1


class TestRouteLeakCase:
    def test_both_methods_fire(self, leak_analysis):
        """§7.2: rerouting + congestion = delay AND forwarding alarms."""
        event_hours = {EVENT[0] // 3600, EVENT[0] // 3600 + 1}
        delay_hours = {a.timestamp // 3600 for a in leak_analysis.delay_alarms}
        fwd_hours = {
            a.timestamp // 3600 for a in leak_analysis.forwarding_alarms
        }
        assert delay_hours & event_hours
        assert fwd_hours & event_hours

    def test_level3_delay_magnitude_positive_peak(self, leak_analysis):
        magnitudes = leak_analysis.aggregator.delay_magnitudes(
            window_bins=WINDOW_BINS
        )
        peaked = [
            asn
            for asn in (3549, 3356)
            if asn in magnitudes
            and np.argmax(magnitudes[asn]) in (24, 25)
            and magnitudes[asn].max() > 5
        ]
        assert peaked, f"no Level3 AS peaked: {sorted(magnitudes)}"

    def test_level3_forwarding_magnitude_negative(self, leak_analysis):
        """Fig. 10: routers vanish -> negative forwarding magnitude."""
        magnitudes = leak_analysis.aggregator.forwarding_magnitudes(
            window_bins=WINDOW_BINS
        )
        level3 = [m for asn, m in magnitudes.items() if asn in (3549, 3356)]
        assert level3
        assert min(float(series.min()) for series in level3) < -1

    def test_rerouting_and_level3_devaluation(self, leak_analysis):
        """Rerouting surfaces new next hops somewhere upstream, while
        Level(3) next hops are devalued (the Fig. 10 signature)."""
        event_hours = {EVENT[0] // 3600, EVENT[0] // 3600 + 1}
        mapper = leak_analysis.aggregator.mapper
        new_hop_asns = set()
        devalued_asns = set()
        for alarm in leak_analysis.forwarding_alarms:
            if alarm.timestamp // 3600 not in event_hours:
                continue
            for hop in alarm.new_hops:
                if hop != "*":
                    asn = mapper.asn_of(hop)
                    if asn is not None:
                        new_hop_asns.add(asn)
            for hop in alarm.devalued_hops:
                if hop != "*":
                    asn = mapper.asn_of(hop)
                    if asn is not None:
                        devalued_asns.add(asn)
        assert new_hop_asns, "rerouting produced no new next hops"
        assert devalued_asns & {3549, 3356}, (
            f"no Level3 hop devalued: {sorted(devalued_asns)}"
        )


class TestIxpOutageCase:
    def test_forwarding_detects_outage(self, outage_analysis):
        event_hours = {EVENT[0] // 3600, EVENT[0] // 3600 + 1}
        fwd_hours = {
            a.timestamp // 3600 for a in outage_analysis.forwarding_alarms
        }
        assert fwd_hours & event_hours

    def test_amsix_forwarding_magnitude_negative_peak(self, outage_analysis):
        magnitudes = outage_analysis.aggregator.forwarding_magnitudes(
            window_bins=WINDOW_BINS
        )
        assert 1200 in magnitudes, f"AMS-IX missing: {sorted(magnitudes)}"
        series = magnitudes[1200]
        trough = int(np.argmin(series))
        assert trough in (24, 25)
        assert series[trough] < -1

    def test_loss_not_reroute_signature(self, outage_analysis):
        """§7.3: unresponsive bucket grows — packets dropped, not moved."""
        event_alarms = [
            a
            for a in outage_analysis.forwarding_alarms
            if a.timestamp // 3600 in (24, 25)
        ]
        assert event_alarms
        suspected = [a for a in event_alarms if a.packet_loss_suspected]
        assert len(suspected) / len(event_alarms) > 0.5

    def test_delay_method_mostly_silent(self, outage_analysis):
        """The outage produces no RTT samples: the delay method cannot
        see it (the motivation for having both methods)."""
        event_delay_alarms = [
            a
            for a in outage_analysis.delay_alarms
            if a.timestamp // 3600 in (24, 25)
        ]
        event_fwd_alarms = [
            a
            for a in outage_analysis.forwarding_alarms
            if a.timestamp // 3600 in (24, 25)
        ]
        assert len(event_fwd_alarms) > len(event_delay_alarms)
