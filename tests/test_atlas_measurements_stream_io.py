"""Tests for measurement specs, time binning, streaming and JSONL IO."""

import pytest

from repro.atlas import (
    ANCHORING,
    BUILTIN,
    MeasurementKind,
    MeasurementSpec,
    TimeBinner,
    TracerouteDecodeError,
    TracerouteStream,
    bin_start,
    count_traceroutes,
    make_traceroute,
    minimum_usable_bin_s,
    read_traceroutes,
    shortest_detectable_event_s,
    write_traceroutes,
)


class TestMeasurementSpecs:
    def test_builtin_rate_matches_paper(self):
        assert BUILTIN.interval_s == 1800
        assert BUILTIN.rate_per_hour == 2.0

    def test_anchoring_rate_matches_paper(self):
        assert ANCHORING.interval_s == 900
        assert ANCHORING.rate_per_hour == 4.0

    def test_schedule(self):
        times = list(BUILTIN.schedule(0, 7200))
        assert times == [0, 1800, 3600, 5400]

    def test_schedule_with_offset(self):
        times = list(BUILTIN.schedule(0, 3600, offset=600))
        assert times == [600, 2400]

    def test_schedule_validates(self):
        with pytest.raises(ValueError):
            list(BUILTIN.schedule(100, 0))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MeasurementSpec(MeasurementKind.BUILTIN, interval_s=0)
        with pytest.raises(ValueError):
            MeasurementSpec(MeasurementKind.BUILTIN, interval_s=60, packets_per_hop=0)

    def test_expected_packets_appendix_b(self):
        """3 probes on builtin for one hour: 3*2*3 = 18 packets."""
        assert BUILTIN.expected_packets_per_bin(3, 3600) == 18.0

    def test_minimum_usable_bin(self):
        """Appendix B: builtin Tmin = 0.5h, anchoring Tmin = 0.25h."""
        assert minimum_usable_bin_s(BUILTIN) == pytest.approx(1800.0)
        assert minimum_usable_bin_s(ANCHORING) == pytest.approx(900.0)

    def test_shortest_detectable_event_eq11(self):
        """Paper: builtin, n=3, T=1h -> 33 min; anchoring at Tmin -> 9 min."""
        builtin_s = shortest_detectable_event_s(BUILTIN, n_probes=3, bin_s=3600)
        assert builtin_s / 60 == pytest.approx(33.33, abs=0.1)
        anchoring_s = shortest_detectable_event_s(ANCHORING, n_probes=3, bin_s=900)
        assert anchoring_s / 60 == pytest.approx(9.17, abs=0.2)

    def test_shortest_detectable_event_validates(self):
        with pytest.raises(ValueError):
            shortest_detectable_event_s(BUILTIN, n_probes=0, bin_s=3600)


def _tr(ts, prb=1):
    return make_traceroute(prb, "10.0.0.1", "10.9.9.9", ts, [[("10.0.0.2", 1.0)]])


class TestBinning:
    def test_bin_start(self):
        assert bin_start(3725, 3600) == 3600
        assert bin_start(0, 3600) == 0
        with pytest.raises(ValueError):
            bin_start(0, 0)

    def test_binner_groups_and_sorts(self):
        binner = TimeBinner(bin_s=3600)
        bins = list(binner.bins([_tr(7300), _tr(100), _tr(200)]))
        assert [start for start, _ in bins] == [0, 3600, 7200]
        assert len(bins[0][1]) == 2
        assert bins[1][1] == []  # dense: empty middle bin kept
        assert len(bins[2][1]) == 1

    def test_binner_sparse_mode(self):
        binner = TimeBinner(bin_s=3600, dense=False)
        bins = list(binner.bins([_tr(7300), _tr(100)]))
        assert [start for start, _ in bins] == [0, 7200]

    def test_binner_empty_input(self):
        assert list(TimeBinner().bins([])) == []

    def test_binner_validation(self):
        with pytest.raises(ValueError):
            TimeBinner(bin_s=0)


class TestTracerouteStream:
    def test_bins_close_in_order(self):
        stream = TracerouteStream(bin_s=3600, lateness_bins=1)
        assert stream.push(_tr(100)) == []
        assert stream.push(_tr(3700)) == []  # previous bin still in lateness
        closed = stream.push(_tr(7300))
        assert [start for start, _ in closed] == [0]
        remaining = stream.drain()
        assert [start for start, _ in remaining] == [3600, 7200]

    def test_late_results_tolerated_within_window(self):
        stream = TracerouteStream(bin_s=3600, lateness_bins=1)
        stream.push(_tr(3700))
        stream.push(_tr(100))  # late but within tolerance
        closed = stream.drain()
        assert [start for start, _ in closed] == [0, 3600]
        assert stream.dropped_late == 0

    def test_very_late_results_dropped(self):
        stream = TracerouteStream(bin_s=3600, lateness_bins=0)
        stream.push(_tr(100))
        stream.push(_tr(3700))  # closes bin 0
        stream.push(_tr(200))  # bin 0 already closed -> dropped
        assert stream.dropped_late == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TracerouteStream(bin_s=0)
        with pytest.raises(ValueError):
            TracerouteStream(lateness_bins=-1)


class TestJsonlIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "results.jsonl"
        originals = [_tr(100, prb=1), _tr(200, prb=2)]
        assert write_traceroutes(path, originals) == 2
        restored = list(read_traceroutes(path))
        assert restored == originals

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "results.jsonl.gz"
        originals = [_tr(100)]
        write_traceroutes(path, originals)
        assert list(read_traceroutes(path)) == originals

    def test_corrupt_line_strict(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"prb_id": 1}\n')
        with pytest.raises(TracerouteDecodeError):
            list(read_traceroutes(path))

    def test_corrupt_line_lenient(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        write_traceroutes(path, [_tr(100)])
        with open(path, "a") as handle:
            handle.write("this is not json\n")
        results = list(read_traceroutes(path, strict=False))
        assert len(results) == 1

    def test_count(self, tmp_path):
        path = tmp_path / "count.jsonl"
        write_traceroutes(path, [_tr(i * 100) for i in range(5)])
        assert count_traceroutes(path) == 5

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        write_traceroutes(path, [_tr(100)])
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(list(read_traceroutes(path))) == 1
