"""Tests for measurement specs, time binning, streaming and JSONL IO."""

import gzip

import pytest

from repro.atlas import (
    ANCHORING,
    BUILTIN,
    DecodeWarning,
    FeedTailer,
    MeasurementKind,
    MeasurementSpec,
    TimeBinner,
    TracerouteDecodeError,
    TracerouteStream,
    bin_start,
    count_traceroutes,
    make_traceroute,
    minimum_usable_bin_s,
    read_traceroutes,
    shortest_detectable_event_s,
    write_traceroutes,
)


class TestMeasurementSpecs:
    def test_builtin_rate_matches_paper(self):
        assert BUILTIN.interval_s == 1800
        assert BUILTIN.rate_per_hour == 2.0

    def test_anchoring_rate_matches_paper(self):
        assert ANCHORING.interval_s == 900
        assert ANCHORING.rate_per_hour == 4.0

    def test_schedule(self):
        times = list(BUILTIN.schedule(0, 7200))
        assert times == [0, 1800, 3600, 5400]

    def test_schedule_with_offset(self):
        times = list(BUILTIN.schedule(0, 3600, offset=600))
        assert times == [600, 2400]

    def test_schedule_validates(self):
        with pytest.raises(ValueError):
            list(BUILTIN.schedule(100, 0))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MeasurementSpec(MeasurementKind.BUILTIN, interval_s=0)
        with pytest.raises(ValueError):
            MeasurementSpec(MeasurementKind.BUILTIN, interval_s=60, packets_per_hop=0)

    def test_expected_packets_appendix_b(self):
        """3 probes on builtin for one hour: 3*2*3 = 18 packets."""
        assert BUILTIN.expected_packets_per_bin(3, 3600) == 18.0

    def test_minimum_usable_bin(self):
        """Appendix B: builtin Tmin = 0.5h, anchoring Tmin = 0.25h."""
        assert minimum_usable_bin_s(BUILTIN) == pytest.approx(1800.0)
        assert minimum_usable_bin_s(ANCHORING) == pytest.approx(900.0)

    def test_shortest_detectable_event_eq11(self):
        """Paper: builtin, n=3, T=1h -> 33 min; anchoring at Tmin -> 9 min."""
        builtin_s = shortest_detectable_event_s(BUILTIN, n_probes=3, bin_s=3600)
        assert builtin_s / 60 == pytest.approx(33.33, abs=0.1)
        anchoring_s = shortest_detectable_event_s(ANCHORING, n_probes=3, bin_s=900)
        assert anchoring_s / 60 == pytest.approx(9.17, abs=0.2)

    def test_shortest_detectable_event_validates(self):
        with pytest.raises(ValueError):
            shortest_detectable_event_s(BUILTIN, n_probes=0, bin_s=3600)


def _tr(ts, prb=1):
    return make_traceroute(prb, "10.0.0.1", "10.9.9.9", ts, [[("10.0.0.2", 1.0)]])


class TestBinning:
    def test_bin_start(self):
        assert bin_start(3725, 3600) == 3600
        assert bin_start(0, 3600) == 0
        with pytest.raises(ValueError):
            bin_start(0, 0)

    def test_binner_groups_and_sorts(self):
        binner = TimeBinner(bin_s=3600)
        bins = list(binner.bins([_tr(7300), _tr(100), _tr(200)]))
        assert [start for start, _ in bins] == [0, 3600, 7200]
        assert len(bins[0][1]) == 2
        assert bins[1][1] == []  # dense: empty middle bin kept
        assert len(bins[2][1]) == 1

    def test_binner_sparse_mode(self):
        binner = TimeBinner(bin_s=3600, dense=False)
        bins = list(binner.bins([_tr(7300), _tr(100)]))
        assert [start for start, _ in bins] == [0, 7200]

    def test_binner_empty_input(self):
        assert list(TimeBinner().bins([])) == []

    def test_binner_validation(self):
        with pytest.raises(ValueError):
            TimeBinner(bin_s=0)

    def test_dense_mode_fills_large_gap(self):
        """A long quiet stretch yields one empty bin per missing hour —
        the uniform clock the sliding-window magnitude metric needs."""
        gap_bins = 500
        binner = TimeBinner(bin_s=3600, dense=True)
        bins = list(binner.bins([_tr(100), _tr(gap_bins * 3600 + 50)]))
        assert len(bins) == gap_bins + 1
        assert [start for start, _ in bins] == [
            i * 3600 for i in range(gap_bins + 1)
        ]
        assert len(bins[0][1]) == 1 and len(bins[-1][1]) == 1
        assert all(payload == [] for _, payload in bins[1:-1])

    def test_dense_mode_multiple_gaps(self):
        binner = TimeBinner(bin_s=3600, dense=True)
        bins = list(binner.bins([_tr(0), _tr(3 * 3600), _tr(7 * 3600)]))
        populated = [start for start, payload in bins if payload]
        empty = [start for start, payload in bins if not payload]
        assert populated == [0, 3 * 3600, 7 * 3600]
        assert empty == [h * 3600 for h in (1, 2, 4, 5, 6)]

    def test_dense_mode_negative_timestamps(self):
        """Bin alignment floors correctly below zero (pre-epoch data)."""
        binner = TimeBinner(bin_s=3600, dense=True)
        bins = list(binner.bins([_tr(-3601), _tr(100)]))
        assert [start for start, _ in bins] == [-7200, -3600, 0]
        assert len(bins[0][1]) == 1
        assert bins[1][1] == []


class TestTracerouteStream:
    def test_bins_close_in_order(self):
        stream = TracerouteStream(bin_s=3600, lateness_bins=1)
        assert stream.push(_tr(100)) == []
        assert stream.push(_tr(3700)) == []  # previous bin still in lateness
        closed = stream.push(_tr(7300))
        assert [start for start, _ in closed] == [0]
        remaining = stream.drain()
        assert [start for start, _ in remaining] == [3600, 7200]

    def test_late_results_tolerated_within_window(self):
        stream = TracerouteStream(bin_s=3600, lateness_bins=1)
        stream.push(_tr(3700))
        stream.push(_tr(100))  # late but within tolerance
        closed = stream.drain()
        assert [start for start, _ in closed] == [0, 3600]
        assert stream.dropped_late == 0

    def test_very_late_results_dropped(self):
        stream = TracerouteStream(bin_s=3600, lateness_bins=0)
        stream.push(_tr(100))
        stream.push(_tr(3700))  # closes bin 0
        stream.push(_tr(200))  # bin 0 already closed -> dropped
        assert stream.dropped_late == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TracerouteStream(bin_s=0)
        with pytest.raises(ValueError):
            TracerouteStream(lateness_bins=-1)

    def test_forward_jump_closes_several_bins_at_once(self):
        """A result far in the future closes every bin behind the
        lateness horizon in one push, oldest first."""
        stream = TracerouteStream(bin_s=3600, lateness_bins=1)
        stream.push(_tr(100))
        stream.push(_tr(3700))
        closed = stream.push(_tr(10 * 3600 + 5))
        assert [start for start, _ in closed] == [0, 3600]
        assert stream.dropped_late == 0

    def test_out_of_order_within_lateness_buffers_into_right_bin(self):
        """Results arriving shuffled inside the tolerance window land in
        their own bins, not the bin that was open on arrival."""
        stream = TracerouteStream(bin_s=3600, lateness_bins=2)
        for ts in (7300, 100, 3700, 200, 7400):
            assert stream.push(_tr(ts)) == []
        closed = stream.drain()
        assert [start for start, _ in closed] == [0, 3600, 7200]
        sizes = {start: len(members) for start, members in closed}
        assert sizes == {0: 2, 3600: 1, 7200: 2}

    def test_drop_applies_only_below_watermark(self):
        """After a bin closes, stragglers for it are dropped but results
        for still-open bins keep buffering."""
        stream = TracerouteStream(bin_s=3600, lateness_bins=0)
        stream.push(_tr(100))
        stream.push(_tr(3700))  # closes bin 0
        assert stream.push(_tr(50)) == []  # bin 0: dropped
        assert stream.dropped_late == 1
        assert stream.push(_tr(3800)) == []  # bin 3600 still open: kept
        closed = stream.drain()
        assert [start for start, _ in closed] == [3600]
        assert len(closed[0][1]) == 2

    def test_drain_advances_watermark(self):
        """Everything at or before the last drained bin is late after a
        drain, even if no push ever closed a bin."""
        stream = TracerouteStream(bin_s=3600, lateness_bins=5)
        stream.push(_tr(100))
        stream.push(_tr(3700))
        assert [start for start, _ in stream.drain()] == [0, 3600]
        stream.push(_tr(200))  # behind the drained watermark
        assert stream.dropped_late == 1
        assert stream.push(_tr(3900)) == []
        assert stream.dropped_late == 2  # bin 3600 was drained too


class TestDenseTracerouteStream:
    """The live path's dense clock and resume semantics."""

    def test_dense_fills_gap_between_closed_bins(self):
        """A multi-bin silence emits empty bins, exactly like the
        batch binner's dense mode — the per-bin reference clock the
        incremental engine depends on stays uniform."""
        stream = TracerouteStream(bin_s=3600, lateness_bins=0, dense=True)
        stream.push(_tr(100))
        closed = stream.push(_tr(5 * 3600 + 10))  # closes bin 0, gap 1-4
        assert [start for start, _ in closed] == [0]
        closed = stream.drain()
        assert [start for start, _ in closed] == [
            3600, 7200, 10800, 14400, 18000,
        ]
        assert [len(members) for _, members in closed] == [0, 0, 0, 0, 1]

    def test_dense_gap_spanning_push_and_drain(self):
        """Gap bins are emitted exactly once even when the closing spans
        several pushes."""
        stream = TracerouteStream(bin_s=3600, lateness_bins=1, dense=True)
        stream.push(_tr(100))
        closed = stream.push(_tr(3 * 3600 + 5))
        assert [start for start, _ in closed] == [0]
        closed = stream.push(_tr(6 * 3600 + 5))
        assert [start for start, _ in closed] == [3600, 7200, 10800]
        assert [len(members) for _, members in closed] == [0, 0, 1]
        assert [start for start, _ in stream.drain()] == [14400, 18000, 21600]

    def test_dense_without_gaps_matches_sparse(self):
        stream = TracerouteStream(bin_s=3600, lateness_bins=0, dense=True)
        out = []
        for ts in (100, 3700, 7300):
            out += stream.push(_tr(ts))
        out += stream.drain()
        assert [start for start, _ in out] == [0, 3600, 7200]
        assert all(members for _, members in out)

    def test_start_after_drops_replayed_not_late(self):
        """Re-reading a feed after a checkpoint: everything at or before
        start_after is replay, everything newly late still counts as
        late."""
        stream = TracerouteStream(
            bin_s=3600, lateness_bins=0, start_after=7200
        )
        assert stream.push(_tr(100)) == []
        assert stream.push(_tr(7300)) == []
        assert stream.dropped_replayed == 2
        assert stream.dropped_late == 0
        assert stream.push(_tr(10900)) == []  # bin 10800 opens
        closed = stream.push(_tr(14500))  # closes bin 10800
        assert [start for start, _ in closed] == [10800]
        assert stream.push(_tr(10950)) == []  # genuinely late now
        assert stream.dropped_late == 1
        assert stream.dropped_replayed == 2

    def test_start_after_with_dense_fills_from_checkpoint(self):
        """A resumed dense stream emits the empty bins between the
        checkpointed bin and the first new data."""
        stream = TracerouteStream(
            bin_s=3600, lateness_bins=0, dense=True, start_after=3600
        )
        stream.push(_tr(4 * 3600 + 10))
        closed = stream.drain()
        assert [start for start, _ in closed] == [7200, 10800, 14400]
        assert [len(members) for _, members in closed] == [0, 0, 1]

    def test_start_after_must_be_aligned(self):
        with pytest.raises(ValueError):
            TracerouteStream(bin_s=3600, start_after=100)
        TracerouteStream(bin_s=3600, start_after=-3600)  # aligned: fine


class TestJsonlIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "results.jsonl"
        originals = [_tr(100, prb=1), _tr(200, prb=2)]
        assert write_traceroutes(path, originals) == 2
        restored = list(read_traceroutes(path))
        assert restored == originals

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "results.jsonl.gz"
        originals = [_tr(100)]
        write_traceroutes(path, originals)
        assert list(read_traceroutes(path)) == originals

    def test_corrupt_line_strict(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"prb_id": 1}\n')
        with pytest.raises(TracerouteDecodeError) as excinfo:
            list(read_traceroutes(path))
        assert excinfo.value.line_number == 1

    def test_strict_reports_offending_line_number(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        write_traceroutes(path, [_tr(100), _tr(200)])
        with open(path, "a") as handle:
            handle.write("this is not json\n")
        with pytest.raises(TracerouteDecodeError) as excinfo:
            list(read_traceroutes(path))
        assert excinfo.value.line_number == 3

    def test_corrupt_line_lenient_warns_with_count(self, tmp_path):
        """Lenient reads skip bad lines but say how many were lost."""
        path = tmp_path / "mixed.jsonl"
        write_traceroutes(path, [_tr(100)])
        with open(path, "a") as handle:
            handle.write("this is not json\n")
            handle.write('{"prb_id": 2}\n')
        with pytest.warns(DecodeWarning) as captured:
            results = list(read_traceroutes(path, strict=False))
        assert len(results) == 1
        assert len(captured) == 1
        assert captured[0].message.skipped == 2
        assert "skipped 2" in str(captured[0].message)

    def test_lenient_clean_file_does_not_warn(self, tmp_path):
        import warnings

        path = tmp_path / "clean.jsonl"
        write_traceroutes(path, [_tr(100)])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(list(read_traceroutes(path, strict=False))) == 1

    def test_gzip_corrupt_line_strict(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        originals = [_tr(100)]
        write_traceroutes(path, originals)
        with gzip.open(path, "at", encoding="utf-8") as handle:
            handle.write("broken\n")
        with pytest.raises(TracerouteDecodeError) as excinfo:
            list(read_traceroutes(path))
        assert excinfo.value.line_number == 2

    def test_gzip_corrupt_line_lenient_roundtrip(self, tmp_path):
        """The .gz path honours both strict modes and round-trips the
        decodable lines."""
        path = tmp_path / "mixed.jsonl.gz"
        originals = [_tr(100), _tr(3700)]
        write_traceroutes(path, originals)
        with gzip.open(path, "at", encoding="utf-8") as handle:
            handle.write("broken\n")
        with pytest.warns(DecodeWarning) as captured:
            assert list(read_traceroutes(path, strict=False)) == originals
        assert captured[0].message.skipped == 1

    def test_count(self, tmp_path):
        path = tmp_path / "count.jsonl"
        write_traceroutes(path, [_tr(i * 100) for i in range(5)])
        assert count_traceroutes(path) == 5

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        write_traceroutes(path, [_tr(100)])
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(list(read_traceroutes(path))) == 1


class TestFeedTailer:
    """Regression tests for follow-mode truncation/rotation handling.

    The pre-PR-7 follow loop kept its read offset when the feed shrank
    (logrotate ``copytruncate``) or was replaced (rename + recreate),
    stalling forever past EOF.  The tailer must detect both, reopen,
    count the reopen, and keep yielding.
    """

    def drive(self, tailer, script):
        """Run tailer.lines() with *script* steps between idle polls.

        *script* maps poll number → callable; the tailer's injected
        sleep runs the step due at each idle poll.  Returns the lines
        yielded until the iterator finishes (idle_timeout).
        """
        polls = {"n": 0}

        def fake_sleep(_seconds):
            step = script.get(polls["n"])
            polls["n"] += 1
            if step is not None:
                step()

        tailer._sleep = fake_sleep
        return list(tailer.lines())

    def test_plain_read_without_follow(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text("a\nb\n")
        tailer = FeedTailer(str(path))
        assert list(tailer.lines()) == ["a\n", "b\n"]
        assert tailer.reopens == 0

    def test_unterminated_final_line_yielded_at_eof(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text("a\ntail-without-newline")
        assert list(FeedTailer(str(path)).lines()) == [
            "a\n", "tail-without-newline"
        ]

    def test_follow_picks_up_appends(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text("a\n")
        tailer = FeedTailer(
            str(path), follow=True, poll=0.1, idle_timeout=0.3
        )
        lines = self.drive(tailer, {
            0: lambda: path.open("a").write("b\n"),
        })
        assert lines == ["a\n", "b\n"]
        assert tailer.reopens == 0

    def test_truncation_reopens_from_top(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text("a\nb\n")
        tailer = FeedTailer(
            str(path), follow=True, poll=0.1, idle_timeout=0.3
        )
        lines = self.drive(tailer, {
            0: lambda: path.write_text("c\n"),  # copytruncate-style
        })
        assert lines == ["a\n", "b\n", "c\n"]
        assert tailer.reopens == 1

    def test_rotation_reopens_new_file(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text("a\n")

        def rotate():
            path.rename(tmp_path / "feed.jsonl.1")
            # The replacement is longer than the old file, so only the
            # inode change can reveal the rotation.
            path.write_text("brand\nnew\nfeed\n")

        tailer = FeedTailer(
            str(path), follow=True, poll=0.1, idle_timeout=0.3
        )
        lines = self.drive(tailer, {0: rotate})
        assert lines == ["a\n", "brand\n", "new\n", "feed\n"]
        assert tailer.reopens == 1

    def test_partial_line_dropped_on_truncation(self, tmp_path):
        # The bytes that would have completed the partial line vanished
        # with the old content; keeping the fragment would glue two
        # unrelated records together.
        path = tmp_path / "feed.jsonl"
        path.write_text("a\npart")
        tailer = FeedTailer(
            str(path), follow=True, poll=0.1, idle_timeout=0.3
        )
        lines = self.drive(tailer, {
            0: lambda: path.write_text("b\n"),
        })
        assert lines == ["a\n", "b\n"]
        assert tailer.reopens == 1

    def test_mid_rotation_gap_is_idle_not_fatal(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text("a\n")

        def vanish():
            path.unlink()  # rotation in progress, new file not yet there

        def reappear():
            path.write_text("b\n")

        tailer = FeedTailer(
            str(path), follow=True, poll=0.1, idle_timeout=0.5
        )
        lines = self.drive(tailer, {0: vanish, 1: reappear})
        assert lines == ["a\n", "b\n"]
        assert tailer.reopens == 1

    def test_rejects_bad_poll(self, tmp_path):
        with pytest.raises(ValueError):
            FeedTailer(str(tmp_path / "f"), poll=0.0)
