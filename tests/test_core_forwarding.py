"""Tests for the packet-forwarding model and anomaly detection (paper §5)."""

import pytest

from repro.atlas import make_traceroute
from repro.core import (
    UNRESPONSIVE,
    ForwardingAnomalyDetector,
    forwarding_patterns,
    responsibility_scores,
)


class TestPatternExtraction:
    def test_counts_per_reply_packet(self):
        tr = make_traceroute(
            1,
            "s",
            "dst",
            0,
            [
                [("R", 1.0), ("R", 1.1), ("R", 1.2)],
                [("A", 2.0), ("A", 2.1), ("B", 2.2)],
            ],
        )
        patterns = forwarding_patterns([tr])
        assert patterns[("R", "dst")] == {"A": 2.0, "B": 1.0}

    def test_lost_replies_become_unresponsive_bucket(self):
        tr = make_traceroute(
            1,
            "s",
            "dst",
            0,
            [[("R", 1.0)], [("A", 2.0), (None, None), (None, None)]],
        )
        patterns = forwarding_patterns([tr])
        assert patterns[("R", "dst")] == {"A": 1.0, UNRESPONSIVE: 2.0}

    def test_separate_models_per_destination(self):
        """§5.1: a different model per traceroute target."""
        tr1 = make_traceroute(1, "s", "dst1", 0, [[("R", 1.0)], [("A", 2.0)]])
        tr2 = make_traceroute(1, "s", "dst2", 0, [[("R", 1.0)], [("B", 2.0)]])
        patterns = forwarding_patterns([tr1, tr2])
        assert patterns[("R", "dst1")] == {"A": 1.0}
        assert patterns[("R", "dst2")] == {"B": 1.0}

    def test_unresponsive_router_has_no_model(self):
        tr = make_traceroute(
            1, "s", "dst", 0, [[(None, None)], [("A", 2.0)]]
        )
        assert ("A", "dst") not in forwarding_patterns([tr])
        assert all(key[0] != None for key in forwarding_patterns([tr]))

    def test_patterns_aggregate_across_probes(self):
        trs = [
            make_traceroute(p, "s", "dst", 0, [[("R", 1.0)], [("A", 2.0)]])
            for p in range(5)
        ]
        assert forwarding_patterns(trs)[("R", "dst")] == {"A": 5.0}


class TestResponsibility:
    def test_paper_figure4_worked_example(self):
        """§5.2.2 worked example: F̄=[A:10,B:100,Z:5], F=[A:12,B:2,C:60,Z:30].

        The paper quotes ρ = -0.6 and r ≈ (0, -0.28, 0.25, 0.07) for
        (A, B, C, Z); exact values depend on rounding, so we assert the
        semantics: ρ below τ, B most devalued, C the new main hop, A
        unchanged, Z slightly up.
        """
        reference = {"A": 10.0, "B": 100.0, "Z": 5.0}
        pattern = {"A": 12.0, "B": 2.0, "C": 60.0, "Z": 30.0}
        from repro.stats import pearson_correlation

        rho = pearson_correlation(pattern, reference)
        assert rho == pytest.approx(-0.6, abs=0.15)
        scores = responsibility_scores(pattern, reference, rho)
        assert scores["A"] == pytest.approx(0.0, abs=0.05)
        assert scores["B"] == pytest.approx(-0.3, abs=0.1)
        assert scores["C"] == pytest.approx(0.25, abs=0.1)
        assert 0.0 < scores["Z"] < 0.15
        assert scores["B"] == min(scores.values())
        assert scores["C"] == max(scores.values())

    def test_scores_bounded(self):
        scores = responsibility_scores({"A": 100.0}, {"B": 100.0}, -1.0)
        for value in scores.values():
            assert -1.0 <= value <= 1.0

    def test_identical_patterns_zero_scores(self):
        pattern = {"A": 5.0, "B": 7.0}
        scores = responsibility_scores(pattern, dict(pattern), 1.0)
        assert all(v == 0.0 for v in scores.values())

    def test_sign_semantics(self):
        """New hop -> positive; vanished hop -> negative (with ρ < 0)."""
        reference = {"A": 100.0}
        pattern = {"B": 100.0}
        scores = responsibility_scores(pattern, reference, -1.0)
        assert scores["B"] > 0
        assert scores["A"] < 0


class TestDetector:
    def _feed_stable(self, detector, key, bins=5, t0=0):
        for i in range(bins):
            detector.observe(
                t0 + i, key, {"A": 10.0, "B": 100.0, UNRESPONSIVE: 5.0}
            )

    def test_no_alarm_on_stable_pattern(self):
        detector = ForwardingAnomalyDetector(alpha=0.1)
        key = ("R", "dst")
        for t in range(20):
            alarm = detector.observe(t, key, {"A": 10.0, "B": 100.0})
            assert alarm is None

    def test_no_alarm_during_warmup(self):
        detector = ForwardingAnomalyDetector(warmup_bins=3, alpha=0.1)
        key = ("R", "dst")
        # Radically different patterns during warmup: still silent.
        assert detector.observe(0, key, {"A": 100.0}) is None
        assert detector.observe(1, key, {"B": 100.0}) is None

    def test_paper_anomaly_detected(self):
        detector = ForwardingAnomalyDetector(alpha=0.01)
        key = ("R", "dst")
        self._feed_stable(detector, key)
        alarm = detector.observe(
            10, key, {"A": 12.0, "B": 2.0, "C": 60.0, UNRESPONSIVE: 30.0}
        )
        assert alarm is not None
        assert alarm.correlation < -0.25
        assert alarm.router_ip == "R"
        assert alarm.destination == "dst"
        assert alarm.new_hops.get("C", 0) > 0
        assert alarm.devalued_hops.get("B", 0) < 0
        assert alarm.packet_loss_suspected  # Z grew

    def test_proportional_scaling_is_not_anomalous(self):
        """Fewer traceroutes in a bin scales counts but keeps shape."""
        detector = ForwardingAnomalyDetector(alpha=0.1)
        key = ("R", "dst")
        self._feed_stable(detector, key)
        alarm = detector.observe(
            10, key, {"A": 5.0, "B": 50.0, UNRESPONSIVE: 2.5}
        )
        assert alarm is None

    def test_total_loss_detected(self):
        """All packets to the unresponsive bucket — the §7.3 signature."""
        detector = ForwardingAnomalyDetector(alpha=0.01)
        key = ("R", "dst")
        self._feed_stable(detector, key)
        alarm = detector.observe(10, key, {UNRESPONSIVE: 115.0})
        assert alarm is not None
        assert alarm.packet_loss_suspected
        assert alarm.devalued_hops.get("B", 0) < 0

    def test_reference_updates_with_eq8(self):
        detector = ForwardingAnomalyDetector(alpha=0.5, warmup_bins=1)
        key = ("R", "dst")
        detector.observe(0, key, {"A": 10.0})
        detector.observe(1, key, {"A": 20.0})
        assert detector.reference_of(key) == {"A": 15.0}

    def test_observe_bin_processes_all_models(self):
        detector = ForwardingAnomalyDetector(alpha=0.01)
        patterns = {
            ("R1", "d"): {"A": 10.0, "B": 100.0},
            ("R2", "d"): {"C": 50.0},
        }
        for t in range(5):
            assert detector.observe_bin(t, patterns) == []
        anomalous = {
            ("R1", "d"): {"A": 100.0, "B": 2.0},
            ("R2", "d"): {"C": 50.0},
        }
        alarms = detector.observe_bin(5, anomalous)
        assert len(alarms) == 1
        assert alarms[0].router_ip == "R1"

    def test_statistics(self):
        detector = ForwardingAnomalyDetector()
        detector.observe(0, ("R1", "d1"), {"A": 1.0, "B": 1.0})
        detector.observe(0, ("R1", "d2"), {"A": 1.0})
        detector.observe(0, ("R2", "d1"), {"C": 1.0})
        assert detector.n_models == 3
        assert detector.n_routers == 2
        assert detector.mean_next_hops() == pytest.approx(4 / 3)

    def test_empty_pattern_ignored(self):
        detector = ForwardingAnomalyDetector()
        assert detector.observe(0, ("R", "d"), {}) is None
        assert detector.n_models == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ForwardingAnomalyDetector(tau=0.5)
        with pytest.raises(ValueError):
            ForwardingAnomalyDetector(tau=-1.5)
        with pytest.raises(ValueError):
            ForwardingAnomalyDetector(warmup_bins=0)

    def test_tau_threshold_respected(self):
        """Weak anti-correlation above τ must not alarm."""
        strict = ForwardingAnomalyDetector(tau=-0.9, alpha=0.01)
        key = ("R", "dst")
        self._feed_stable(strict, key)
        alarm = strict.observe(
            10, key, {"A": 12.0, "B": 2.0, "C": 60.0, UNRESPONSIVE: 30.0}
        )
        assert alarm is None  # ρ ≈ -0.6 is above τ = -0.9
