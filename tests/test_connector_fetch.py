"""End-to-end connector tests: fetch → JSONL → stream → pipeline.

The acceptance bar for the connector layer, proven entirely offline:

* a fetched measurement is **byte-identical** to the same campaign
  written locally by :func:`repro.atlas.io.write_traceroutes`, and runs
  through ``TracerouteStream`` → ``ShardedPipeline`` to bit-identical
  results;
* a fetch interrupted at *any* page boundary — or mid-page, leaving a
  partial tail — resumes exactly-once: no duplicated and no skipped
  traceroutes;
* bursts of 429/5xx/drops are absorbed within the retry budget, and a
  corrupt cursor restarts the window instead of trusting it;
* the probe-metadata connector filters, maps and degrades to its stale
  cache exactly as documented;
* the ``fetch`` subcommand and ``monitor --atlas`` drive all of the
  above from the command line against recorded fixtures.
"""

import json

import pytest

from repro.atlas import (
    TracerouteStream,
    make_traceroute,
    read_traceroutes,
    write_traceroutes,
)
from repro.atlas.connectors import (
    CircuitBreaker,
    CursorError,
    Fault,
    FaultSchedule,
    FaultTolerantClient,
    ProbeInfo,
    RetryPolicy,
    ScriptedTransport,
    asn_probe_map,
    fetch_probes,
    fetch_results,
    load_cursor,
    load_fixture,
    paged_results_fixture,
    parse_probe_dump,
    prefix_entries,
    probe_dump_fixture,
    refresh_mapper,
    results_url,
    usable_probes,
    write_fixture,
)
from repro.cli import main
from repro.core import PipelineConfig, ShardedPipeline
from repro.net.asmap import AsMapper

BASE_URL = "https://atlas.example/api/v2"
MSM = 5051


def campaign(n=120, n_probes=6):
    """A small deterministic multi-probe campaign."""
    traceroutes = []
    for index in range(n):
        probe = index % n_probes
        traceroutes.append(
            make_traceroute(
                1000 + probe,
                f"192.0.2.{probe + 1}",
                "198.51.100.7",
                3600 * (index // n_probes) + probe,
                [
                    [("10.0.0.1", 1.5 + probe), ("10.0.0.1", 1.6 + probe)],
                    [("10.0.0.2", 7.5 + probe), ("10.0.0.2", 7.7 + probe)],
                ],
                from_asn=65000 + probe % 3,
                msm_id=MSM,
            )
        )
    return traceroutes


def make_client(pages, faults=None, breaker=None, max_attempts=6):
    """A no-sleep client over a scripted transport."""
    return FaultTolerantClient(
        transport=ScriptedTransport(pages, faults=faults),
        policy=RetryPolicy(max_attempts=max_attempts, seed=2),
        breaker=breaker,
        sleep=lambda _s: None,
    )


@pytest.fixture()
def pages():
    return paged_results_fixture(campaign(), MSM, page_size=25,
                                 base_url=BASE_URL)


@pytest.fixture()
def reference(tmp_path):
    """The campaign written by the local-file path, for bit-identity."""
    path = tmp_path / "reference.jsonl"
    write_traceroutes(path, campaign())
    return path


class TestFetchResults:
    def test_output_byte_identical_to_write_traceroutes(
        self, tmp_path, pages, reference
    ):
        out = tmp_path / "fetched.jsonl"
        report = fetch_results(
            make_client(pages), MSM, out, base_url=BASE_URL, page_size=25
        )
        assert report.completed and report.pages == 5
        assert report.records == 120 and report.skipped == 0
        assert out.read_bytes() == reference.read_bytes()

    def test_bare_list_envelope(self, tmp_path, reference):
        url = results_url(MSM, page_size=25, base_url=BASE_URL)
        body = json.dumps(
            [tr.to_json() for tr in campaign()], sort_keys=True
        ).encode("utf-8")
        out = tmp_path / "fetched.jsonl"
        report = fetch_results(
            make_client({url: body}), MSM, out,
            base_url=BASE_URL, page_size=25,
        )
        assert report.completed and report.pages == 1
        assert out.read_bytes() == reference.read_bytes()

    def test_unrecognized_envelope_raises(self, tmp_path):
        url = results_url(MSM, page_size=25, base_url=BASE_URL)
        client = make_client({url: b'{"weird": true}'})
        with pytest.raises(ValueError, match="envelope"):
            fetch_results(client, MSM, tmp_path / "out.jsonl",
                          base_url=BASE_URL, page_size=25)

    def test_bad_items_skipped_unless_strict(self, tmp_path):
        good = campaign(n=2)
        items = [good[0].to_json(), {"nonsense": 1}, good[1].to_json()]
        url = results_url(MSM, page_size=25, base_url=BASE_URL)
        body = json.dumps({"results": items, "next": None}).encode()
        out = tmp_path / "out.jsonl"
        report = fetch_results(
            make_client({url: body}), MSM, out,
            base_url=BASE_URL, page_size=25,
        )
        assert report.records == 2 and report.skipped == 1
        assert len(list(read_traceroutes(out))) == 2
        with pytest.raises(KeyError):
            fetch_results(
                make_client({url: body}), MSM, tmp_path / "strict.jsonl",
                base_url=BASE_URL, page_size=25, strict=True,
            )


class TestExactlyOnceResume:
    @pytest.mark.parametrize("boundary", [1, 2, 3, 4])
    def test_interrupt_at_every_page_boundary(
        self, tmp_path, pages, reference, boundary
    ):
        # Stop after `boundary` of the 5 pages (a simulated crash right
        # at a commit point), then re-run: the resumed fetch must
        # produce exactly the reference bytes — nothing doubled,
        # nothing lost.
        out = tmp_path / "fetched.jsonl"
        cursor = tmp_path / "fetch.cursor"
        first = fetch_results(
            make_client(pages), MSM, out, cursor_path=cursor,
            base_url=BASE_URL, page_size=25, max_pages=boundary,
        )
        assert first.pages == boundary and not first.completed
        second = fetch_results(
            make_client(pages), MSM, out, cursor_path=cursor,
            base_url=BASE_URL, page_size=25,
        )
        assert second.resumed and second.completed
        assert second.pages == 5 - boundary
        assert first.records + second.records == 120
        assert out.read_bytes() == reference.read_bytes()

    def test_partial_page_tail_is_erased_on_resume(
        self, tmp_path, pages, reference
    ):
        # Crash *between* the page append and the cursor write: the
        # output holds a partial page beyond the cursor's commit point.
        # Resume must truncate it away before refetching — otherwise
        # those records would be duplicated.
        out = tmp_path / "fetched.jsonl"
        cursor = tmp_path / "fetch.cursor"
        fetch_results(
            make_client(pages), MSM, out, cursor_path=cursor,
            base_url=BASE_URL, page_size=25, max_pages=2,
        )
        with open(out, "ab") as handle:
            handle.write(b'{"partial": ')  # torn write, no newline
        report = fetch_results(
            make_client(pages), MSM, out, cursor_path=cursor,
            base_url=BASE_URL, page_size=25,
        )
        assert report.resumed and report.completed
        assert out.read_bytes() == reference.read_bytes()

    def test_corrupt_cursor_restarts_window_cleanly(
        self, tmp_path, pages, reference
    ):
        out = tmp_path / "fetched.jsonl"
        cursor = tmp_path / "fetch.cursor"
        fetch_results(
            make_client(pages), MSM, out, cursor_path=cursor,
            base_url=BASE_URL, page_size=25, max_pages=3,
        )
        raw = bytearray(cursor.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        cursor.write_bytes(bytes(raw))
        with pytest.raises(CursorError):
            load_cursor(cursor)
        report = fetch_results(
            make_client(pages), MSM, out, cursor_path=cursor,
            base_url=BASE_URL, page_size=25,
        )
        assert report.restarted and not report.resumed
        assert report.completed and report.pages == 5
        assert out.read_bytes() == reference.read_bytes()

    def test_foreign_cursor_restarts_window(self, tmp_path, pages, reference):
        # A cursor saved for a different window (other page size) must
        # not resume this one.
        out = tmp_path / "fetched.jsonl"
        cursor = tmp_path / "fetch.cursor"
        other = paged_results_fixture(
            campaign(), MSM, page_size=60, base_url=BASE_URL
        )
        fetch_results(
            make_client(other), MSM, tmp_path / "other.jsonl",
            cursor_path=cursor, base_url=BASE_URL, page_size=60, max_pages=1,
        )
        report = fetch_results(
            make_client(pages), MSM, out, cursor_path=cursor,
            base_url=BASE_URL, page_size=25,
        )
        assert report.restarted and report.completed
        assert out.read_bytes() == reference.read_bytes()

    def test_completed_cursor_short_circuits(self, tmp_path, pages):
        out = tmp_path / "fetched.jsonl"
        cursor = tmp_path / "fetch.cursor"
        fetch_results(
            make_client(pages), MSM, out, cursor_path=cursor,
            base_url=BASE_URL, page_size=25,
        )
        client = make_client(pages)
        report = fetch_results(
            client, MSM, out, cursor_path=cursor,
            base_url=BASE_URL, page_size=25,
        )
        assert report.already_complete and report.completed
        assert client.stats.requests == 0  # not a single network call


class TestFaultAbsorption:
    def test_seeded_burst_absorbed_and_output_identical(
        self, tmp_path, pages, reference
    ):
        # A 35% injected-fault rate (drops, 429s with Retry-After,
        # flapping 5xx, truncated bodies) across the whole pagination:
        # the client must absorb every burst within its retry budget
        # and still produce byte-identical output.
        faults = FaultSchedule.seeded(9, 0.35)
        client = make_client(pages, faults=faults, max_attempts=8)
        out = tmp_path / "fetched.jsonl"
        report = fetch_results(
            client, MSM, out, base_url=BASE_URL, page_size=25
        )
        assert report.completed
        assert out.read_bytes() == reference.read_bytes()
        assert client.stats.retries > 0  # the schedule really fired

    def test_fault_transcript_is_reproducible(self, tmp_path, pages):
        transcripts = []
        for _ in range(2):
            faults = FaultSchedule.seeded(9, 0.35)
            transport = ScriptedTransport(pages, faults=faults)
            client = FaultTolerantClient(
                transport=transport,
                policy=RetryPolicy(max_attempts=8, seed=2),
                sleep=lambda _s: None,
            )
            fetch_results(
                client, MSM, tmp_path / "out.jsonl",
                base_url=BASE_URL, page_size=25,
            )
            transcripts.append(transport.calls)
            (tmp_path / "out.jsonl").unlink()
        assert transcripts[0] == transcripts[1]

    def test_resume_after_breaker_opens_mid_fetch(
        self, tmp_path, pages, reference
    ):
        # Page 3's URL is permanently dropping; the breaker opens and
        # the fetch dies with its cursor at the last good page.  A
        # later run against a healthy API resumes exactly-once.
        from repro.atlas.connectors import (
            CircuitOpenError,
            RetryBudgetExceeded,
        )

        faults = FaultSchedule(
            {i: Fault(kind="drop") for i in range(2, 50)}
        )
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=60.0)
        client = make_client(pages, faults=faults, breaker=breaker,
                             max_attempts=4)
        out = tmp_path / "fetched.jsonl"
        cursor = tmp_path / "fetch.cursor"
        with pytest.raises((RetryBudgetExceeded, CircuitOpenError)):
            fetch_results(
                client, MSM, out, cursor_path=cursor,
                base_url=BASE_URL, page_size=25,
            )
        assert breaker.state == "open"
        saved = load_cursor(cursor)
        assert 0 < saved.pages_fetched < 5 and not saved.completed
        report = fetch_results(
            make_client(pages), MSM, out, cursor_path=cursor,
            base_url=BASE_URL, page_size=25,
        )
        assert report.resumed and report.completed
        assert out.read_bytes() == reference.read_bytes()


class TestPipelineIdentity:
    def test_fetched_feed_runs_bit_identical_to_local(
        self, tmp_path, pages, reference
    ):
        # The whole point of normalization: a fetched campaign streamed
        # through TracerouteStream into the sharded engine yields
        # results indistinguishable from local-file ingestion.
        out = tmp_path / "fetched.jsonl"
        fetch_results(
            make_client(pages), MSM, out, base_url=BASE_URL, page_size=25
        )

        def run(path):
            engine = ShardedPipeline(
                PipelineConfig(n_shards=2, executor="serial")
            )
            stream = TracerouteStream(bin_s=3600)
            results = []
            for traceroute in read_traceroutes(path):
                for start, payload in stream.push(traceroute):
                    results.append(engine.process_bin(start, payload))
            for start, payload in stream.drain():
                results.append(engine.process_bin(start, payload))
            return results, engine.stats()

        fetched_results, fetched_stats = run(out)
        local_results, local_stats = run(reference)
        assert fetched_results == local_results
        assert fetched_stats == local_stats


RAW_PROBES = [
    {"id": 1, "status_id": 1, "is_public": True, "asn_v4": 65001,
     "prefix_v4": "10.1.0.0/16", "address_v4": "10.1.2.3"},
    {"id": 2, "status_id": 1, "is_public": True, "asn_v4": 65001,
     "prefix_v4": "10.1.0.0/16", "address_v4": "10.1.9.9"},
    {"id": 3, "status_id": 1, "is_public": True, "asn_v4": 65002,
     "prefix_v4": "10.2.0.0/16"},
    {"id": 4, "status_id": 2, "is_public": True, "asn_v4": 65003},
    {"id": 5, "status_id": 1, "is_public": False, "asn_v4": 65004},
    {"id": 6, "status_id": 1, "is_public": True, "asn_v4": None},
    {"id": 7, "status_id": 1, "is_public": True, "asn_v6": 65005,
     "prefix_v6": "2001:db8::/32"},
    "not-a-dict",
]


class TestProbes:
    def test_filtering_matches_atlas_idiom(self):
        probes = usable_probes(parse_probe_dump(probe_dump_fixture(
            RAW_PROBES)), af=4)
        assert [p.id for p in probes] == [1, 2, 3]
        assert all(p.af == 4 for p in probes)
        v6 = usable_probes([p for p in RAW_PROBES if isinstance(p, dict)],
                           af=6)
        assert [p.id for p in v6] == [7]
        with pytest.raises(ValueError):
            usable_probes([], af=5)

    def test_bz2_and_plain_bodies_decode_identically(self):
        plain = parse_probe_dump(probe_dump_fixture(RAW_PROBES))
        packed = parse_probe_dump(
            probe_dump_fixture(RAW_PROBES, compress=True)
        )
        assert plain == packed
        with pytest.raises(ValueError, match="probe dump"):
            parse_probe_dump(b'"just a string"')

    def test_asn_map_and_prefix_entries_deterministic(self):
        probes = usable_probes([p for p in RAW_PROBES if isinstance(p, dict)])
        assert asn_probe_map(probes) == {65001: [1, 2], 65002: [3]}
        assert prefix_entries(probes) == [
            ("10.1.0.0", 16, 65001),
            ("10.2.0.0", 16, 65002),
        ]

    def test_refresh_mapper_loads_live_prefixes(self):
        mapper = AsMapper()
        mapper.load([("10.9.0.0", 16, 64999)])
        probes = usable_probes([p for p in RAW_PROBES if isinstance(p, dict)])
        assert refresh_mapper(mapper, probes) == 2
        assert mapper.asn_of("10.1.44.5") == 65001
        assert mapper.asn_of("10.9.1.1") == 64999  # seed entries survive
        assert refresh_mapper(mapper, []) == 0

    def test_fetch_probes_happy_path_writes_cache(self, tmp_path):
        url = "https://ftp.example/meta-latest"
        pages = {url: probe_dump_fixture(RAW_PROBES, compress=True)}
        cache = tmp_path / "probes.cache.json"
        probe_set = fetch_probes(
            make_client(pages), url=url, cache_path=cache
        )
        assert not probe_set.stale
        assert probe_set.total_in_dump == len(RAW_PROBES)
        assert [p.id for p in probe_set.probes] == [1, 2, 3]
        assert cache.exists()

    def test_stale_but_serving_when_api_down(self, tmp_path):
        url = "https://ftp.example/meta-latest"
        pages = {url: probe_dump_fixture(RAW_PROBES)}
        cache = tmp_path / "probes.cache.json"
        fetch_probes(make_client(pages), url=url, cache_path=cache)
        # Now the API is down hard: every request drops.
        faults = FaultSchedule({i: Fault(kind="drop") for i in range(50)})
        down = make_client(pages, faults=faults, max_attempts=3)
        probe_set = fetch_probes(down, url=url, cache_path=cache)
        assert probe_set.stale
        assert [p.id for p in probe_set.probes] == [1, 2, 3]
        assert probe_set.probes[0] == ProbeInfo(
            id=1, asn=65001, af=4, prefix="10.1.0.0/16", address="10.1.2.3"
        )

    def test_no_cache_means_the_error_propagates(self, tmp_path):
        from repro.atlas.connectors import RetryBudgetExceeded

        url = "https://ftp.example/meta-latest"
        faults = FaultSchedule({i: Fault(kind="drop") for i in range(50)})
        down = make_client({url: b"{}"}, faults=faults, max_attempts=3)
        with pytest.raises(RetryBudgetExceeded):
            fetch_probes(down, url=url, cache_path=tmp_path / "missing.json")
        with pytest.raises(RetryBudgetExceeded):
            fetch_probes(down, url=url)


class TestFixtureFiles:
    def test_fixture_round_trip_text_and_binary(self, tmp_path, pages):
        mixed = dict(pages)
        mixed["https://ftp.example/meta-latest"] = probe_dump_fixture(
            RAW_PROBES, compress=True
        )
        path = tmp_path / "fixture.json"
        assert write_fixture(path, mixed) == len(mixed)
        assert load_fixture(path) == mixed
        # The file itself is reviewable JSON with base64 for binary.
        data = json.loads(path.read_text())
        assert "base64" in data["https://ftp.example/meta-latest"]


class TestCliFetch:
    def fixture_path(self, tmp_path, fetch_page_size=None):
        pages = paged_results_fixture(
            campaign(), MSM, page_size=25, base_url=BASE_URL,
            fetch_page_size=fetch_page_size,
        )
        path = tmp_path / "fixture.json"
        write_fixture(path, pages)
        return path

    def test_fetch_results_from_fixture(self, tmp_path, reference, capsys):
        fixture = self.fixture_path(tmp_path)
        out = tmp_path / "feed.jsonl"
        code = main([
            "fetch", "results", "--msm", str(MSM), "--out", str(out),
            "--base-url", BASE_URL, "--page-size", "25",
            "--fixture", str(fixture),
        ])
        assert code == 0
        assert out.read_bytes() == reference.read_bytes()
        printed = capsys.readouterr().out
        assert f"fetched msm {MSM}: 5 pages, 120 traceroutes" in printed

    def test_fetch_results_with_faults_and_cursor(
        self, tmp_path, reference, capsys
    ):
        fixture = self.fixture_path(tmp_path)
        out = tmp_path / "feed.jsonl"
        cursor = tmp_path / "feed.cursor"
        common = [
            "fetch", "results", "--msm", str(MSM), "--out", str(out),
            "--base-url", BASE_URL, "--page-size", "25",
            "--fixture", str(fixture), "--cursor", str(cursor),
            "--fault-seed", "4", "--fault-rate", "0.3",
        ]
        assert main(common + ["--max-pages", "2"]) == 0
        assert "paused (resumable)" in capsys.readouterr().out
        assert main(common) == 0
        printed = capsys.readouterr().out
        assert "[complete] (resumed)" in printed
        assert out.read_bytes() == reference.read_bytes()

    def test_fetch_results_requires_msm(self, tmp_path, capsys):
        code = main([
            "fetch", "results", "--out", str(tmp_path / "feed.jsonl"),
        ])
        assert code == 2
        assert "requires --msm" in capsys.readouterr().err

    def test_fetch_probes_from_fixture(self, tmp_path, capsys):
        url = "https://ftp.example/meta-latest"
        fixture = tmp_path / "fixture.json"
        write_fixture(
            fixture, {url: probe_dump_fixture(RAW_PROBES, compress=True)}
        )
        out = tmp_path / "probes.json"
        code = main([
            "fetch", "probes", "--out", str(out),
            "--base-url", url, "--fixture", str(fixture),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["usable_probes"] == 3
        assert payload["asn_probe_map"] == {"65001": [1, 2], "65002": [3]}
        assert payload["prefix_entries"] == [
            ["10.1.0.0", 16, 65001], ["10.2.0.0", 16, 65002],
        ]
        assert payload["stale"] is False
        assert "3 usable probes across 2 ASNs" in capsys.readouterr().out


class TestCliMonitorAtlas:
    def test_monitor_atlas_prefetches_then_analyzes(self, tmp_path, capsys):
        # monitor --atlas uses the default page size (500), so the
        # fixture advertises that while chunking at 25.
        pages = paged_results_fixture(
            campaign(), MSM, page_size=25, base_url=BASE_URL,
            fetch_page_size=500,
        )
        fixture = tmp_path / "fixture.json"
        write_fixture(fixture, pages)
        feed = tmp_path / "feed.jsonl"
        code = main([
            "monitor", str(feed), "--atlas", "--atlas-msm", str(MSM),
            "--base-url", BASE_URL, "--fixture", str(fixture),
            "--atlas-cursor", str(tmp_path / "feed.cursor"),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert f"atlas fetch: msm {MSM}, 5 pages, 120 traceroutes" in printed
        assert "monitor done:" in printed

    def test_monitor_atlas_requires_msm(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["monitor", str(tmp_path / "feed.jsonl"), "--atlas"])
        assert "requires --atlas-msm" in capsys.readouterr().err
