"""Tests for traceroute-native alias resolution (paper §7 future work)."""

import pytest

from repro.atlas import make_traceroute
from repro.core.alias import (
    AliasResolution,
    evaluate_resolution,
    resolve_aliases,
)
from repro.simulation import AtlasPlatform, CampaignConfig, build_topology


def _tr(hops, prb=1, dst="dst", ts=0):
    return make_traceroute(
        prb, "src", dst, ts, [[(ip, 1.0 * (i + 1))] for i, ip in enumerate(hops)]
    )


class TestResolveAliasesUnit:
    def test_two_interfaces_same_successors_merged(self):
        """R is entered via R1 (from A) and R2 (from B); both forward to
        N1 and N2 — R1/R2 must merge."""
        corpus = [
            _tr(["A", "R1", "N1"], prb=1),
            _tr(["A", "R1", "N2"], prb=1, dst="d2"),
            _tr(["B", "R2", "N1"], prb=2),
            _tr(["B", "R2", "N2"], prb=2, dst="d2"),
        ]
        resolution = resolve_aliases(corpus)
        assert resolution.are_aliases("R1", "R2")
        assert resolution.router_of("R1") == frozenset({"R1", "R2"})

    def test_co_occurring_ips_never_merged(self):
        """IPs on one traceroute are distinct routers by definition."""
        corpus = [
            _tr(["X", "Y", "N1"], prb=1),
            _tr(["X", "Y", "N2"], prb=1, dst="d2"),
            # X and Y share successors {Y->N1/N2 vs X->Y}; craft shared:
            _tr(["Z", "X", "N1"], prb=2),
            _tr(["Z", "X", "N2"], prb=2, dst="d2"),
            _tr(["W", "Y", "N1"], prb=3),
            _tr(["W", "Y", "N2"], prb=3, dst="d2"),
        ]
        resolution = resolve_aliases(corpus)
        # X and Y share successors {N1, N2} but co-occur -> not aliases.
        assert not resolution.are_aliases("X", "Y")

    def test_insufficient_common_successors_not_merged(self):
        corpus = [
            _tr(["A", "R1", "N1"], prb=1),
            _tr(["B", "R2", "N1"], prb=2),
        ]
        resolution = resolve_aliases(corpus, min_common_successors=2)
        assert not resolution.are_aliases("R1", "R2")

    def test_low_jaccard_not_merged(self):
        corpus = [
            _tr(["A", "R1", "N1"], prb=1),
            _tr(["A", "R1", "N2"], prb=1, dst="d2"),
            _tr(["A", "R1", "N3"], prb=1, dst="d3"),
            _tr(["A", "R1", "N4"], prb=1, dst="d4"),
            _tr(["B", "R2", "N1"], prb=2),
            _tr(["B", "R2", "N2"], prb=2, dst="d2"),
            _tr(["B", "R2", "N5"], prb=2, dst="d5"),
            _tr(["B", "R2", "N6"], prb=2, dst="d6"),
        ]
        strict = resolve_aliases(corpus, min_jaccard=0.9)
        lax = resolve_aliases(corpus, min_jaccard=0.3)
        assert not strict.are_aliases("R1", "R2")
        assert lax.are_aliases("R1", "R2")

    def test_singleton_router_of(self):
        resolution = resolve_aliases([])
        assert resolution.router_of("1.2.3.4") == frozenset({"1.2.3.4"})
        assert resolution.n_routers == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            resolve_aliases([], min_common_successors=0)
        with pytest.raises(ValueError):
            resolve_aliases([], min_jaccard=0.0)
        with pytest.raises(ValueError):
            resolve_aliases([], min_jaccard=1.5)


class TestEvaluate:
    def test_perfect_resolution(self):
        resolution = AliasResolution(
            alias_sets=(frozenset({"a1", "a2"}),)
        )
        truth = {"a1": "A", "a2": "A", "b1": "B"}
        scores = evaluate_resolution(resolution, truth)
        assert scores["precision"] == 1.0
        assert scores["recall"] == 1.0

    def test_wrong_merge_hurts_precision(self):
        resolution = AliasResolution(
            alias_sets=(frozenset({"a1", "b1"}),)
        )
        truth = {"a1": "A", "a2": "A", "b1": "B"}
        scores = evaluate_resolution(resolution, truth)
        assert scores["precision"] == 0.0
        assert scores["recall"] == 0.0

    def test_empty_resolution(self):
        scores = evaluate_resolution(
            AliasResolution(alias_sets=()), {"a1": "A", "a2": "A"}
        )
        assert scores["precision"] == 1.0  # vacuous
        assert scores["recall"] == 0.0


class TestOnSimulatedCampaign:
    def test_precision_against_ground_truth(self):
        """Alias inference on a real campaign: merged pairs must be
        overwhelmingly true aliases (precision-oriented operating point,
        like MIDAR)."""
        topology = build_topology(seed=3)
        platform = AtlasPlatform(topology, seed=4)
        config = CampaignConfig(duration_s=6 * 3600)
        corpus = list(platform.run_campaign(config))
        resolution = resolve_aliases(
            corpus, min_common_successors=2, min_jaccard=0.6
        )
        truth = topology.interface_map(af=4)
        scores = evaluate_resolution(resolution, truth)
        assert scores["pairs_true"] > 0
        if scores["pairs_inferred"] > 0:
            assert scores["precision"] >= 0.8, scores
        # The method should find at least some aliases on a topology
        # where core routers are entered from several neighbours.
        assert resolution.n_routers >= 0  # smoke: no crash, sane output
