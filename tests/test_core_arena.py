"""Scalar-vs-arena equivalence: the detection kernels' core guarantee.

The structure-of-arrays arenas (``repro.core.arena``) must reproduce the
scalar detectors bit for bit: same alarms in the same order, same
smoothed references, same counters — for any bin sequence, with
winsorizing on or off, across shard-style partitions and past the
initial array capacity.  The hypothesis properties here drive both
implementations over random campaigns and assert full structural
equality; the unit tests cover the interner and the arena-specific
edges (growth, warm-up, empty bins).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DelayArena,
    DelayChangeDetector,
    ForwardingAnomalyDetector,
    ForwardingArena,
    LinkInterner,
)
from repro.stats.wilson import WilsonInterval

LINKS = [(f"10.0.{index}.1", f"10.0.{index}.2") for index in range(6)]

MODEL_KEYS = [
    ("192.0.2.1", "198.51.100.1"),
    ("192.0.2.1", "198.51.100.2"),
    ("192.0.2.2", "198.51.100.1"),
    ("192.0.2.3", "198.51.100.3"),
]

HOPS = ["203.0.113.1", "203.0.113.2", "203.0.113.3", "*"]


@st.composite
def interval_strategy(draw):
    """A valid observed interval: lower <= median <= upper, small n."""
    values = sorted(
        draw(
            st.lists(
                st.floats(
                    min_value=-20.0,
                    max_value=60.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=3,
                max_size=3,
            )
        )
    )
    n = draw(st.integers(min_value=1, max_value=50))
    return WilsonInterval(
        median=values[1], lower=values[0], upper=values[2], n=n
    )


@st.composite
def delay_campaign_strategy(draw):
    """A random sequence of bins: per bin, some links with intervals."""
    n_bins = draw(st.integers(min_value=1, max_value=12))
    bins = []
    for _ in range(n_bins):
        links = draw(
            st.lists(
                st.sampled_from(LINKS), unique=True, min_size=0, max_size=5
            )
        )
        bins.append(
            [
                (
                    link,
                    draw(interval_strategy()),
                    draw(st.integers(1, 9)),
                    draw(st.integers(1, 4)),
                )
                for link in sorted(links)
            ]
        )
    return bins


def _run_scalar_delay(bins, **kwargs):
    detector = DelayChangeDetector(**kwargs)
    alarms = []
    for timestamp, rows in enumerate(bins):
        for link, observed, n_probes, n_asns in rows:
            alarm = detector.observe_interval(
                timestamp * 3600,
                link,
                observed,
                n_probes=n_probes,
                n_asns=n_asns,
            )
            if alarm is not None:
                alarms.append(alarm)
    return alarms, detector


def _run_arena_delay(bins, **kwargs):
    arena = DelayArena(**kwargs)
    alarms = []
    for timestamp, rows in enumerate(bins):
        links = [row[0] for row in rows]
        alarms.extend(
            arena.observe_bin(
                timestamp * 3600,
                links,
                np.array([row[1].median for row in rows]),
                np.array([row[1].lower for row in rows]),
                np.array([row[1].upper for row in rows]),
                np.array([row[1].n for row in rows], dtype=np.int64),
                [row[2] for row in rows],
                [row[3] for row in rows],
            )
        )
    return alarms, arena


class TestDelayArenaEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(
        bins=delay_campaign_strategy(),
        winsorize=st.booleans(),
        min_shift_ms=st.sampled_from([0.0, 1.0, 5.0]),
        alpha=st.sampled_from([0.01, 0.5, 0.9]),
    )
    def test_identical_alarms_and_state(
        self, bins, winsorize, min_shift_ms, alpha
    ):
        """Arena == scalar on random campaigns, winsorize on and off."""
        scalar_alarms, detector = _run_scalar_delay(
            bins, alpha=alpha, min_shift_ms=min_shift_ms, winsorize=winsorize
        )
        arena_alarms, arena = _run_arena_delay(
            bins, alpha=alpha, min_shift_ms=min_shift_ms, winsorize=winsorize
        )
        assert arena_alarms == scalar_alarms
        assert set(arena.links()) == set(detector._states)
        for link, state in detector._states.items():
            assert arena.reference_of(link) == state.reference, link
            assert arena.bins_seen_of(link) == state.bins_seen, link
            assert arena.alarms_raised_of(link) == state.alarms_raised, link
        assert arena.alarmed_links() == {
            link
            for link, state in detector._states.items()
            if state.alarms_raised > 0
        }

    def test_alarm_fields_match_scalar_exactly(self):
        """A deterministic shift produces the same alarm, field by field."""
        bins = [
            [(LINKS[0], WilsonInterval(10.0, 9.5, 10.5, 20), 5, 3)]
            for _ in range(4)
        ]
        bins.append([(LINKS[0], WilsonInterval(30.0, 29.5, 30.5, 20), 5, 3)])
        scalar_alarms, _ = _run_scalar_delay(bins)
        arena_alarms, _ = _run_arena_delay(bins)
        assert len(scalar_alarms) == 1
        assert arena_alarms == scalar_alarms
        alarm = arena_alarms[0]
        assert alarm.direction == 1
        assert alarm.deviation > 0
        assert alarm.n_probes == 5 and alarm.n_asns == 3

    def test_growth_past_initial_capacity(self):
        """Interning more links than the initial capacity keeps state."""
        arena = DelayArena(alpha=0.5)
        n_links = 2100  # > 2x the initial 1024 capacity
        links = [(f"10.{i // 250}.{i % 250}.1", "10.255.255.2") for i in range(n_links)]
        interval = WilsonInterval(5.0, 4.0, 6.0, 10)
        ones = np.ones(n_links)
        for _ in range(3):
            arena.observe_bin(
                0,
                links,
                5.0 * ones,
                4.0 * ones,
                6.0 * ones,
                np.full(n_links, 10, dtype=np.int64),
                [1] * n_links,
                [1] * n_links,
            )
        assert arena.n_links == n_links
        assert arena.reference_of(links[-1]) == WilsonInterval(
            5.0, 4.0, 6.0, 3
        )
        assert arena.reference_of(links[0]) == arena.reference_of(links[-1])

    def test_empty_bin_is_a_no_op(self):
        arena = DelayArena()
        assert arena.observe_bin(0, [], np.empty(0), np.empty(0), np.empty(0), np.empty(0, dtype=np.int64), [], []) == []
        assert arena.n_links == 0

    def test_max_probes_tracks_per_link_maximum(self):
        bins = [
            [(LINKS[0], WilsonInterval(10.0, 9.0, 11.0, 5), probes, 2)]
            for probes in (3, 7, 5)
        ]
        _, arena = _run_arena_delay(bins)
        assert arena.max_probes_map() == {LINKS[0]: 7}

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayArena(alpha=0.0)
        with pytest.raises(ValueError):
            DelayArena(min_shift_ms=-1.0)
        with pytest.raises(ValueError):
            DelayArena(seed_bins=0)


@st.composite
def pattern_strategy(draw):
    """A sparse next-hop pattern; may include zero-valued entries."""
    hops = draw(
        st.lists(st.sampled_from(HOPS), unique=True, min_size=0, max_size=4)
    )
    return {
        hop: draw(
            st.floats(min_value=0.0, max_value=30.0, allow_nan=False)
        )
        for hop in hops
    }


@st.composite
def forwarding_campaign_strategy(draw):
    """A random sequence of bins: per bin, some models with patterns."""
    n_bins = draw(st.integers(min_value=1, max_value=10))
    bins = []
    for _ in range(n_bins):
        keys = draw(
            st.lists(
                st.sampled_from(MODEL_KEYS),
                unique=True,
                min_size=0,
                max_size=4,
            )
        )
        bins.append({key: draw(pattern_strategy()) for key in keys})
    return bins


class TestForwardingArenaEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(
        bins=forwarding_campaign_strategy(),
        tau=st.sampled_from([0.0, -0.25]),
        alpha=st.sampled_from([0.01, 0.5]),
        warmup_bins=st.sampled_from([1, 3]),
    )
    def test_identical_alarms_and_state(self, bins, tau, alpha, warmup_bins):
        """Arena == scalar forwarding detection on random campaigns."""
        detector = ForwardingAnomalyDetector(
            tau=tau, alpha=alpha, warmup_bins=warmup_bins
        )
        arena = ForwardingArena(
            tau=tau, alpha=alpha, warmup_bins=warmup_bins
        )
        scalar_alarms = []
        arena_alarms = []
        for timestamp, patterns in enumerate(bins):
            scalar_alarms.extend(
                detector.observe_bin(timestamp * 3600, patterns)
            )
            arena_alarms.extend(
                arena.observe_bin(timestamp * 3600, patterns)
            )
        assert arena_alarms == scalar_alarms
        assert arena.n_models == detector.n_models
        assert arena.n_routers == detector.n_routers
        assert arena.next_hops_total() == detector.next_hops_total()
        for key, state in detector._states.items():
            assert arena.reference_of(key) == state.reference, key
            assert arena.bins_seen_of(key) == state.bins_seen, key
            assert arena.alarms_raised_of(key) == state.alarms_raised, key

    def test_flip_raises_identical_alarm(self):
        """A clean next-hop flip alarms identically on both paths."""
        key = MODEL_KEYS[0]
        bins = [{key: {"A": 10.0}} for _ in range(3)]
        bins.append({key: {"B": 10.0}})
        detector = ForwardingAnomalyDetector()
        arena = ForwardingArena()
        scalar_alarms = []
        arena_alarms = []
        for timestamp, patterns in enumerate(bins):
            scalar_alarms.extend(detector.observe_bin(timestamp, patterns))
            arena_alarms.extend(arena.observe_bin(timestamp, patterns))
        assert len(scalar_alarms) == 1
        assert arena_alarms == scalar_alarms
        assert arena_alarms[0].responsibilities["B"] > 0
        assert arena_alarms[0].responsibilities["A"] < 0

    def test_empty_patterns_create_no_state(self):
        arena = ForwardingArena()
        assert arena.observe_bin(0, {MODEL_KEYS[0]: {}}) == []
        assert arena.n_models == 0

    def test_negative_counts_rejected(self):
        arena = ForwardingArena()
        with pytest.raises(ValueError):
            arena.observe_bin(0, {MODEL_KEYS[0]: {"A": -1.0}})

    def test_pruning_matches_scalar(self):
        """Weights decaying below prune_below vanish on both paths."""
        key = MODEL_KEYS[0]
        detector = ForwardingAnomalyDetector(alpha=0.5)
        arena = ForwardingArena(alpha=0.5)
        bins = [{key: {"A": 1e-5, "B": 5.0}}] + [
            {key: {"B": 5.0}} for _ in range(4)
        ]
        for timestamp, patterns in enumerate(bins):
            detector.observe_bin(timestamp, patterns)
            arena.observe_bin(timestamp, patterns)
        assert arena.reference_of(key) == detector.reference_of(key)
        assert "A" not in arena.reference_of(key)

    def test_validation(self):
        with pytest.raises(ValueError):
            ForwardingArena(tau=0.5)
        with pytest.raises(ValueError):
            ForwardingArena(alpha=1.5)
        with pytest.raises(ValueError):
            ForwardingArena(warmup_bins=0)
        with pytest.raises(ValueError):
            ForwardingArena(prune_below=-1.0)


class TestLinkInterner:
    def test_dense_first_seen_ids(self):
        interner = LinkInterner()
        assert interner.intern(("a", "b")) == 0
        assert interner.intern(("c", "d")) == 1
        assert interner.intern(("a", "b")) == 0
        assert len(interner) == 2
        assert interner.keys == [("a", "b"), ("c", "d")]

    def test_lookup_and_get(self):
        interner = LinkInterner()
        ident = interner.intern(("a", "b"))
        assert interner.lookup(ident) == ("a", "b")
        assert interner.get(("a", "b")) == ident
        assert interner.get(("x", "y")) is None
        assert ("a", "b") in interner
        assert ("x", "y") not in interner
