"""Tests for the event scenarios (DDoS, route leak, IXP outage)."""

import numpy as np
import pytest

from repro.simulation import (
    CompositeScenario,
    DdosScenario,
    IxpOutageScenario,
    RouteLeakScenario,
    Scenario,
    TargetSpec,
    TracerouteEngine,
    build_topology,
)


@pytest.fixture(scope="module")
def topo():
    return build_topology(seed=21)


WINDOW = (10 * 3600, 12 * 3600)


@pytest.fixture(scope="module")
def ddos(topo):
    kroot = topo.services["K-root"]
    attacked = [kroot.instances[0].node, kroot.instances[2].node]
    return DdosScenario(
        topo, "K-root", attacked, windows=[WINDOW], seed=3
    )


class TestNeutralScenario:
    def test_neutral_never_active(self):
        scenario = Scenario()
        assert not scenario.active(0)
        assert scenario.extra_delay_ms("a", "b", 0) == 0.0
        assert scenario.extra_loss("a", "b", 0) == 0.0
        assert scenario.waypoint(0, "x", 0) is None
        assert scenario.windows() == []


class TestDdosScenario:
    def test_active_only_in_window(self, ddos):
        assert not ddos.active(WINDOW[0] - 1)
        assert ddos.active(WINDOW[0])
        assert ddos.active(WINDOW[1] - 1)
        assert not ddos.active(WINDOW[1])

    def test_perturbs_last_hop_edges(self, topo, ddos):
        kroot = topo.services["K-root"]
        attacked = ddos.attacked_instances[0]
        upstream_edges = [
            (u, v)
            for u, v in topo.service_last_hop_edges("K-root")
            if v == attacked
        ]
        assert upstream_edges
        u, v = upstream_edges[0]
        assert ddos.extra_delay_ms(u, v, WINDOW[0]) > 0
        assert ddos.extra_loss(u, v, WINDOW[0]) > 0

    def test_does_not_perturb_unattacked_instance(self, topo, ddos):
        kroot = topo.services["K-root"]
        attacked = set(ddos.attacked_instances)
        spared = [i.node for i in kroot.instances if i.node not in attacked]
        assert spared
        for node in spared:
            for u, v in topo.service_last_hop_edges("K-root"):
                if v == node:
                    assert ddos.extra_delay_ms(u, v, WINDOW[0]) == 0.0

    def test_inactive_outside_window(self, ddos):
        for u, v in list(ddos.perturbed_edges)[:3]:
            assert ddos.extra_delay_ms(u, v, 0) == 0.0
            assert ddos.extra_loss(u, v, 0) == 0.0

    def test_rejects_unknown_instance(self, topo):
        with pytest.raises(ValueError):
            DdosScenario(topo, "K-root", ["nonsense"], windows=[WINDOW])

    def test_delay_shift_in_requested_range(self, topo):
        kroot = topo.services["K-root"]
        scenario = DdosScenario(
            topo,
            "K-root",
            [kroot.instances[0].node],
            windows=[WINDOW],
            min_shift_ms=5.0,
            max_shift_ms=6.0,
        )
        shifts = [
            scenario.extra_delay_ms(u, v, WINDOW[0])
            for u, v in scenario.perturbed_edges
        ]
        assert all(5.0 <= s <= 6.0 for s in shifts)

    def test_traceroute_rtt_rises_during_attack(self, topo, ddos):
        """End-to-end check: RTT to an attacked instance shifts upward."""
        engine = TracerouteEngine(topo, scenario=ddos, seed=9)
        kroot = topo.services["K-root"]
        target = TargetSpec.for_service(kroot)
        attacked = set(ddos.attacked_instances)
        probe_hit = None
        for probe in topo.probes:
            if engine.routing.instance_for(probe.router, kroot) in attacked:
                probe_hit = probe
                break
        assert probe_hit is not None, "no probe routed to an attacked instance"

        def last_hop_median(t):
            tr = engine.run(probe_hit, target, t)
            rtts = tr.hops[-1].rtts
            return np.median(rtts) if rtts else None

        quiet = [last_hop_median(3600 + i * 600) for i in range(6)]
        busy = [last_hop_median(WINDOW[0] + i * 600) for i in range(6)]
        quiet = [q for q in quiet if q is not None]
        busy = [b for b in busy if b is not None]
        assert np.median(busy) > np.median(quiet) + 5.0


class TestRouteLeakScenario:
    @pytest.fixture(scope="class")
    def leak(self, topo):
        waypoint = topo.routers_of_as(4788)[0]
        level3_edges = topo.edges_of_as(3549)[:10]
        return RouteLeakScenario(
            topo,
            leak_waypoint=waypoint,
            leaked_targets={a.name for a in topo.anchors[:3]},
            congested_edges=level3_edges,
            window=WINDOW,
            seed=5,
        )

    def test_waypoint_only_for_leaked_targets_in_window(self, topo, leak):
        target = topo.anchors[0].name
        assert leak.waypoint(0, target, WINDOW[0]) is not None
        assert leak.waypoint(0, target, 0) is None
        assert leak.waypoint(0, "not-leaked", WINDOW[0]) is None

    def test_congestion_in_window(self, leak):
        edge = next(iter(leak.perturbed_edges))
        assert leak.extra_delay_ms(*edge, WINDOW[0]) >= 80.0
        assert leak.extra_loss(*edge, WINDOW[0]) > 0.0
        assert leak.extra_delay_ms(*edge, 0) == 0.0

    def test_rejects_unknown_waypoint(self, topo):
        with pytest.raises(ValueError):
            RouteLeakScenario(
                topo,
                leak_waypoint="missing",
                leaked_targets=set(),
                congested_edges=[],
                window=WINDOW,
            )

    def test_paths_change_during_leak(self, topo, leak):
        engine = TracerouteEngine(topo, scenario=leak, seed=2)
        anchor = topo.anchors[0]
        target = TargetSpec.for_anchor(anchor)
        waypoint_asn = 4788
        mapper_nodes = set(topo.routers_of_as(waypoint_asn))
        changed = 0
        for probe in topo.probes[:10]:
            normal = engine._plan_for(probe, target, None)
            leaked_plan = engine._plan_for(probe, target, leak.leak_waypoint)
            normal_nodes = [h.node for h in normal.hops]
            leaked_nodes = [h.node for h in leaked_plan.hops]
            if set(leaked_nodes) & mapper_nodes and not (
                set(normal_nodes) & mapper_nodes
            ):
                changed += 1
        assert changed > 0


class TestIxpOutageScenario:
    @pytest.fixture(scope="class")
    def outage(self, topo):
        return IxpOutageScenario(topo, ixp_asn=1200, window=WINDOW)

    def test_full_loss_on_lan_edges(self, topo, outage):
        for u, v in topo.ixp_lan_edges(1200)[:5]:
            assert outage.extra_loss(u, v, WINDOW[0]) == 1.0
            assert outage.extra_loss(u, v, 0) == 0.0
            assert outage.extra_delay_ms(u, v, WINDOW[0]) == 0.0

    def test_rejects_unknown_ixp(self, topo):
        with pytest.raises(ValueError):
            IxpOutageScenario(topo, ixp_asn=99999, window=WINDOW)

    def test_hops_behind_lan_time_out(self, topo, outage):
        engine = TracerouteEngine(topo, scenario=outage, seed=4)
        lan_edges = set(topo.ixp_lan_edges(1200))
        # Find a (probe, target) whose path crosses the AMS-IX LAN.
        for probe in topo.probes:
            for service in topo.services.values():
                target = TargetSpec.for_service(service)
                plan = engine._plan_for(probe, target, None)
                crossing = None
                for index, hop_plan in enumerate(plan.hops):
                    if set(hop_plan.forward_edges) & lan_edges:
                        crossing = index
                        break
                if crossing is None:
                    continue
                during = engine.run(probe, target, WINDOW[0] + 300)
                before = engine.run(probe, target, WINDOW[0] - 7200)
                assert during.hops[crossing].is_unresponsive
                assert not before.hops[crossing].is_unresponsive
                return
        pytest.skip("no path crosses the AMS-IX LAN for this seed")


class TestCompositeScenario:
    def test_delays_add_and_losses_combine(self, topo, ddos):
        outage = IxpOutageScenario(topo, ixp_asn=1200, window=WINDOW)
        combo = CompositeScenario([ddos, outage])
        assert combo.active(WINDOW[0])
        assert not combo.active(0)
        edge = next(iter(ddos.perturbed_edges))
        assert combo.extra_delay_ms(*edge, WINDOW[0]) == pytest.approx(
            ddos.extra_delay_ms(*edge, WINDOW[0])
        )
        lan_edge = topo.ixp_lan_edges(1200)[0]
        assert combo.extra_loss(*lan_edge, WINDOW[0]) == 1.0

    def test_windows_merged(self, topo, ddos):
        outage = IxpOutageScenario(topo, ixp_asn=1200, window=(0, 3600))
        combo = CompositeScenario([ddos, outage])
        assert (0, 3600) in combo.windows()
        assert WINDOW in combo.windows()

    def test_empty_composite_is_neutral(self):
        combo = CompositeScenario([])
        assert combo.name == "neutral"
        assert not combo.active(0)


class TestCatchmentShiftScenario:
    def test_shifted_probes_reach_other_instance(self, topo):
        from repro.simulation import CatchmentShiftScenario, RoutingEngine

        scenario = CatchmentShiftScenario.largest_shift(
            topo, "K-root", WINDOW
        )
        routing = RoutingEngine(topo)
        service = topo.services["K-root"]
        probe = next(iter(scenario.shifted_probes))
        src = next(
            p.router for p in topo.probes if p.probe_id == probe
        )
        normal = routing.forward_path_to_service(src, service)
        via = scenario.waypoint(probe, "K-root", WINDOW[0])
        assert via is not None
        shifted = routing.forward_path_via_to_service(src, via, service)
        assert shifted[-1] != normal[-1]  # lands on another instance
        # Outside the window (or for other targets) nothing moves.
        assert scenario.waypoint(probe, "K-root", 0) is None
        assert scenario.waypoint(probe, "other", WINDOW[0]) is None

    def test_rejects_same_instance(self, topo):
        from repro.simulation import CatchmentShiftScenario

        service = topo.services["K-root"]
        node = service.instances[0].node
        with pytest.raises(ValueError):
            CatchmentShiftScenario(topo, "K-root", node, node, WINDOW)


class TestBgpHijackScenario:
    def test_subprefix_captures_everyone(self, topo):
        from repro.simulation import BgpHijackScenario

        hijacker = topo.routers_of_as(174)[0]
        target = topo.anchors[0].name
        scenario = BgpHijackScenario(
            topo, hijacker, [target], WINDOW, mode="subprefix"
        )
        for probe in topo.probes:
            assert (
                scenario.waypoint(probe.probe_id, target, WINDOW[0])
                == (hijacker,)
            )
            assert scenario.waypoint(probe.probe_id, target, 0) is None

    def test_exact_mode_honours_distance(self, topo):
        from repro.simulation import BgpHijackScenario

        hijacker = topo.routers_of_as(174)[0]
        target = topo.anchors[0].name
        scenario = BgpHijackScenario(
            topo, hijacker, [target], WINDOW, mode="exact"
        )
        captured = scenario.captured[target]
        for probe in topo.probes:
            expected = (hijacker,) if probe.probe_id in captured else None
            assert (
                scenario.waypoint(probe.probe_id, target, WINDOW[0])
                == expected
            )

    def test_rejects_bad_mode_and_targets(self, topo):
        from repro.simulation import BgpHijackScenario

        hijacker = topo.routers_of_as(174)[0]
        with pytest.raises(ValueError):
            BgpHijackScenario(
                topo, hijacker, [topo.anchors[0].name], WINDOW, mode="nope"
            )
        with pytest.raises(ValueError):
            BgpHijackScenario(topo, hijacker, ["missing"], WINDOW)
        with pytest.raises(ValueError):
            BgpHijackScenario(topo, hijacker, [], WINDOW)


class TestProbeChurnScenario:
    def test_campaign_skips_jobs_while_down(self, topo):
        from repro.simulation import (
            AtlasPlatform,
            CampaignConfig,
            ProbeChurnScenario,
        )

        scenario = ProbeChurnScenario(
            topo, windows=[WINDOW], fraction=0.5, seed=1
        )
        platform = AtlasPlatform(topo, scenario=scenario, seed=2)
        config = CampaignConfig(
            duration_s=13 * 3600,
            probe_ids=sorted(scenario.churned_probes)[:5],
            include_anchoring=False,
        )
        produced = sum(1 for _ in platform.run_campaign(config))
        assert produced < platform.campaign_size(config)

    def test_flaps_only_inside_window(self, topo):
        from repro.simulation import ProbeChurnScenario

        scenario = ProbeChurnScenario(
            topo, windows=[WINDOW], fraction=0.5, period_s=1800, seed=1
        )
        probe = sorted(scenario.churned_probes)[0]
        assert scenario.probe_active(probe, 0)
        assert scenario.probe_active(probe, WINDOW[1] + 10)
        in_window = [
            scenario.probe_active(probe, t)
            for t in range(WINDOW[0], WINDOW[1], 60)
        ]
        assert not all(in_window)  # goes down at some point
        assert any(in_window)  # but not for the whole window

    def test_data_plane_untouched(self, topo):
        from repro.simulation import ProbeChurnScenario

        scenario = ProbeChurnScenario(topo, windows=[WINDOW], seed=1)
        assert not scenario.active(WINDOW[0])
        assert scenario.extra_delay_ms("a", "b", WINDOW[0]) == 0.0
        assert scenario.extra_loss("a", "b", WINDOW[0]) == 0.0

    def test_validates_parameters(self, topo):
        from repro.simulation import ProbeChurnScenario

        with pytest.raises(ValueError):
            ProbeChurnScenario(topo, windows=[WINDOW], fraction=0.0)
        with pytest.raises(ValueError):
            ProbeChurnScenario(topo, windows=[WINDOW], period_s=0)
        with pytest.raises(ValueError):
            ProbeChurnScenario(
                topo, windows=[WINDOW], period_s=600, down_time_s=601
            )


class TestDiurnalCongestionScenario:
    def test_ramp_shape(self, topo):
        from repro.simulation import DiurnalCongestionScenario

        scenario = DiurnalCongestionScenario(
            topo, windows=[WINDOW], asn=174, seed=2
        )
        edge = sorted(scenario.perturbed_edges)[0]
        start, end = WINDOW
        mid = (start + end) // 2
        quarter = start + (end - start) // 4
        assert scenario.extra_delay_ms(*edge, start) == 0.0
        assert scenario.extra_delay_ms(*edge, mid) == pytest.approx(
            scenario.peak_shift_ms(edge)
        )
        assert (
            0.0
            < scenario.extra_delay_ms(*edge, quarter)
            < scenario.extra_delay_ms(*edge, mid)
        )
        assert scenario.extra_delay_ms(*edge, end + 1) == 0.0

    def test_unperturbed_edges_untouched(self, topo):
        from repro.simulation import DiurnalCongestionScenario

        scenario = DiurnalCongestionScenario(
            topo, windows=[WINDOW], asn=174, seed=2
        )
        mid = (WINDOW[0] + WINDOW[1]) // 2
        assert scenario.extra_delay_ms("nope", "nada", mid) == 0.0
        assert scenario.extra_loss("nope", "nada", mid) == 0.0
