"""Unit and property tests for the longest-prefix-match trie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import MAX_IPV4, PrefixTrie, int_to_ip, ip_in_prefix, prefix_netmask


@pytest.fixture
def trie():
    t = PrefixTrie()
    t.insert("193.0.0.0", 16, 25152)
    t.insert("193.0.14.0", 24, 197000)
    t.insert("10.0.0.0", 8, 64512)
    return t


class TestInsertLookup:
    def test_longest_match_wins(self, trie):
        assert trie.lookup("193.0.14.129") == (("193.0.14.0", 24), 197000)

    def test_shorter_match_as_fallback(self, trie):
        assert trie.lookup("193.0.99.1") == (("193.0.0.0", 16), 25152)

    def test_no_match(self, trie):
        assert trie.lookup("8.8.8.8") is None

    def test_lookup_value(self, trie):
        assert trie.lookup_value("10.1.2.3") == 64512
        assert trie.lookup_value("8.8.8.8") is None

    def test_default_route_matches_everything(self):
        t = PrefixTrie()
        t.insert("0.0.0.0", 0, 1)
        assert t.lookup("8.8.8.8") == (("0.0.0.0", 0), 1)

    def test_host_route(self):
        t = PrefixTrie()
        t.insert("1.2.3.4", 32, 7)
        assert t.lookup_value("1.2.3.4") == 7
        assert t.lookup_value("1.2.3.5") is None

    def test_reinsert_replaces_payload(self, trie):
        trie.insert("193.0.0.0", 16, 99)
        assert trie.lookup_value("193.0.99.1") == 99
        assert len(trie) == 3

    def test_host_bits_are_masked_on_insert(self):
        t = PrefixTrie()
        t.insert("10.1.2.99", 24, 5)
        assert t.lookup_value("10.1.2.1") == 5
        assert ("10.1.2.0", 24) in t

    def test_len_counts_unique_prefixes(self, trie):
        assert len(trie) == 3

    def test_contains(self, trie):
        assert ("193.0.14.0", 24) in trie
        assert ("193.0.15.0", 24) not in trie

    def test_rejects_bad_length(self):
        t = PrefixTrie()
        with pytest.raises(ValueError):
            t.insert("1.2.3.4", 33, 1)

    def test_items_roundtrip(self, trie):
        entries = dict(trie.items())
        assert entries == {
            ("193.0.0.0", 16): 25152,
            ("193.0.14.0", 24): 197000,
            ("10.0.0.0", 8): 64512,
        }


prefix_strategy = st.tuples(
    st.integers(min_value=0, max_value=MAX_IPV4),
    st.integers(min_value=1, max_value=32),
)


class TestProperties:
    @settings(max_examples=50)
    @given(st.lists(prefix_strategy, min_size=1, max_size=30), st.integers(0, MAX_IPV4))
    def test_matches_reference_linear_scan(self, prefixes, query):
        """The trie must agree with an O(n) reference implementation."""
        trie = PrefixTrie()
        table = {}
        for index, (network_int, length) in enumerate(prefixes):
            network = int_to_ip(network_int & prefix_netmask(length))
            trie.insert(network, length, index)
            table[(network, length)] = index  # later insert wins

        ip = int_to_ip(query)
        best = None
        for (network, length), payload in table.items():
            if ip_in_prefix(ip, network, length):
                if best is None or length > best[0][1]:
                    best = ((network, length), payload)
        assert trie.lookup(ip) == best

    @settings(max_examples=50)
    @given(st.lists(prefix_strategy, min_size=1, max_size=50))
    def test_every_inserted_prefix_is_found(self, prefixes):
        trie = PrefixTrie()
        canonical = set()
        for network_int, length in prefixes:
            network = int_to_ip(network_int & prefix_netmask(length))
            trie.insert(network, length, "x")
            canonical.add((network, length))
        assert len(trie) == len(canonical)
        for network, length in canonical:
            assert (network, length) in trie
            # An address inside the prefix must match at least that length.
            match = trie.lookup(network)
            assert match is not None
            assert match[0][1] >= 0
