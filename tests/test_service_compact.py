"""Compaction and retention tests: bit-identical answers across rewrites.

The compactor's contract is exact: merging segments (in any schedule)
must leave every :class:`StoreQuery` answer bit-identical to the
uncompacted store, coarsening must preserve everything the severity
journal feeds, and the generation-token cutover must keep live
readers, writers and response caches coherent.  A hypothesis property
drives random campaigns × random segment chunkings × random compaction
schedules through the full equivalence check.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reporting.ihr import InternetHealthReport
from repro.service.compact import (
    CompactionPolicy,
    CompactionReport,
    compact_store,
)
from repro.service.query import StoreQuery
from repro.service.store import (
    AlarmStoreWriter,
    StoreError,
    read_manifest,
)
from tests.test_service_store import (
    BIN_S,
    IPS,
    analysis_of,
    assert_equivalent,
    build_store,
    make_mapper,
    synthetic_bins,
)


def assert_same_answers(left: StoreQuery, right: StoreQuery, bins) -> None:
    """Every query answer of *left* must equal *right*'s, bit for bit."""
    assert left.monitored_asns() == right.monitored_asns()
    for asn in left.monitored_asns() + [99999]:
        assert left.as_condition(asn) == right.as_condition(asn)
        assert left.links_of(asn) == right.links_of(asn)
        for kind in ("delay", "forwarding"):
            left_ts, left_vals = left.magnitude_series(asn, kind)
            right_ts, right_vals = right.magnitude_series(asn, kind)
            assert left_ts == right_ts
            assert np.array_equal(left_vals, right_vals)
    for kind in ("delay", "forwarding"):
        assert left.top_asns(kind, 10) == right.top_asns(kind, 10)
        assert left.top_events(kind, 0.5, 50) == right.top_events(
            kind, 0.5, 50
        )
    for result in bins:
        assert left.alarms_at(result.timestamp) == right.alarms_at(
            result.timestamp
        )
    for ip in IPS[:3]:
        assert left.alarms_involving(ip) == right.alarms_involving(ip)


class TestMergeEquivalence:
    def test_merge_matches_ihr_bit_for_bit(self, tmp_path):
        mapper = make_mapper()
        bins = synthetic_bins(12, seed=21)
        build_store(tmp_path / "store", bins, mapper, chunk=1)
        before = read_manifest(tmp_path / "store")
        report = InternetHealthReport(analysis_of(bins, mapper))
        live = StoreQuery(tmp_path / "store")
        assert_equivalent(report, live, bins)

        result = compact_store(
            tmp_path / "store", CompactionPolicy(max_segments=3)
        )
        assert isinstance(result, CompactionReport)
        assert result.changed and result.merged == 10
        after = read_manifest(tmp_path / "store")
        assert len(after.segments) == 3
        assert after.generation == before.generation + 1
        assert after.store_id == before.store_id
        assert (after.start, after.end, after.bin_s) == (
            before.start, before.end, before.bin_s
        )
        # A fresh engine and the live engine (post-refresh cutover)
        # both still answer bit-identically to the in-memory IHR.
        assert_equivalent(report, StoreQuery(tmp_path / "store"), bins)
        assert live.refresh()
        assert_equivalent(report, live, bins)

    def test_replaced_segment_files_are_removed(self, tmp_path):
        bins = synthetic_bins(10, seed=3)
        build_store(tmp_path / "store", bins, make_mapper(), chunk=1)
        names_before = {
            p.name for p in (tmp_path / "store").glob("seg-*.seg")
        }
        compact_store(tmp_path / "store", CompactionPolicy(max_segments=2))
        names_after = {
            p.name for p in (tmp_path / "store").glob("seg-*.seg")
        }
        manifest = read_manifest(tmp_path / "store")
        assert names_after == {m.name for m in manifest.segments}
        assert len(names_after & names_before) <= 1  # only the newest kept

    def test_noop_pass_publishes_nothing(self, tmp_path):
        bins = synthetic_bins(6, seed=5)
        build_store(tmp_path / "store", bins, make_mapper(), chunk=3)
        before = read_manifest(tmp_path / "store")
        result = compact_store(
            tmp_path / "store", CompactionPolicy(max_segments=8)
        )
        assert not result.changed
        assert result.bytes_after == result.bytes_before
        after = read_manifest(tmp_path / "store")
        assert after.token == before.token

    def test_dry_run_writes_nothing(self, tmp_path):
        bins = synthetic_bins(10, seed=9)
        build_store(tmp_path / "store", bins, make_mapper(), chunk=1)
        before = read_manifest(tmp_path / "store")
        result = compact_store(
            tmp_path / "store",
            CompactionPolicy(max_segments=2),
            dry_run=True,
        )
        assert result.changed and result.dry_run
        assert result.bytes_after is None
        assert result.segments_after < result.segments_before
        assert read_manifest(tmp_path / "store").token == before.token

    @given(
        seed=st.integers(0, 2**16),
        n_bins=st.integers(4, 10),
        chunk=st.integers(1, 4),
        schedule=st.lists(st.integers(1, 6), min_size=1, max_size=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_schedule_is_bit_identical(
        self, seed, n_bins, chunk, schedule
    ):
        """Random campaign × chunking × compaction schedule ≡ untouched.

        The reference store is never compacted; the subject store runs
        an arbitrary sequence of merge passes.  Every query answer must
        stay bit-identical throughout.
        """
        mapper = make_mapper()
        bins = synthetic_bins(n_bins, seed)
        with tempfile.TemporaryDirectory() as tmp:
            build_store(Path(tmp) / "ref", bins, mapper, chunk)
            build_store(Path(tmp) / "sub", bins, mapper, chunk)
            reference = StoreQuery(Path(tmp) / "ref", window_bins=4)
            subject = StoreQuery(Path(tmp) / "sub", window_bins=4)
            for max_segments in schedule:
                compact_store(
                    Path(tmp) / "sub",
                    CompactionPolicy(max_segments=max_segments),
                )
                assert_same_answers(subject, reference, bins)


class TestRetentionTiers:
    def test_coarsen_preserves_journal_answers(self, tmp_path):
        mapper = make_mapper()
        bins = synthetic_bins(12, seed=11)
        build_store(tmp_path / "ref", bins, mapper, chunk=2)
        build_store(tmp_path / "sub", bins, mapper, chunk=2)
        result = compact_store(
            tmp_path / "sub",
            CompactionPolicy(max_segments=None, coarsen_after_bins=6),
        )
        assert result.changed and result.coarsened > 0
        reference = StoreQuery(tmp_path / "ref", window_bins=4)
        subject = StoreQuery(tmp_path / "sub", window_bins=4)
        # Everything the severity journal feeds is untouched.
        assert subject.monitored_asns() == reference.monitored_asns()
        for asn in reference.monitored_asns():
            assert subject.links_of(asn) == reference.links_of(asn)
            for kind in ("delay", "forwarding"):
                _, left = subject.magnitude_series(asn, kind)
                _, right = reference.magnitude_series(asn, kind)
                assert np.array_equal(left, right)
        for kind in ("delay", "forwarding"):
            assert subject.top_asns(kind, 10) == reference.top_asns(kind, 10)
            assert subject.top_events(kind, 0.5, 50) == (
                reference.top_events(kind, 0.5, 50)
            )
        # The explicit trade: raw alarms in the coarsened range are gone.
        old_ts = bins[0].timestamp
        ref_delay, ref_fwd = reference.alarms_at(old_ts)
        if ref_delay or ref_fwd:
            sub_delay, sub_fwd = subject.alarms_at(old_ts)
            assert len(sub_delay) + len(sub_fwd) < (
                len(ref_delay) + len(ref_fwd)
            )

    def test_coarsened_segments_shrink(self, tmp_path):
        bins = synthetic_bins(12, seed=11)
        build_store(tmp_path / "store", bins, make_mapper(), chunk=2)
        result = compact_store(
            tmp_path / "store",
            CompactionPolicy(max_segments=None, coarsen_after_bins=4),
        )
        assert result.changed
        assert result.bytes_after < result.bytes_before

    def test_drop_removes_old_history_but_keeps_the_clock(self, tmp_path):
        mapper = make_mapper()
        bins = synthetic_bins(12, seed=13)
        build_store(tmp_path / "store", bins, mapper, chunk=2)
        before = read_manifest(tmp_path / "store")
        result = compact_store(
            tmp_path / "store",
            CompactionPolicy(max_segments=None, drop_after_bins=4),
        )
        assert result.changed and result.dropped > 0
        after = read_manifest(tmp_path / "store")
        assert (after.start, after.end, after.bin_s) == (
            before.start, before.end, before.bin_s
        )
        assert after.n_bins == before.n_bins
        query = StoreQuery(tmp_path / "store", window_bins=4)
        # Dropped history reads as zeros; recent bins keep their rows.
        horizon = before.end - 3 * BIN_S
        for segment in query.store.segments():
            if segment.e_ts.size:
                assert int(segment.e_ts.max()) >= horizon

    def test_second_coarsen_pass_is_a_noop(self, tmp_path):
        bins = synthetic_bins(12, seed=17)
        build_store(tmp_path / "store", bins, make_mapper(), chunk=2)
        policy = CompactionPolicy(max_segments=None, coarsen_after_bins=4)
        first = compact_store(tmp_path / "store", policy)
        assert first.changed
        second = compact_store(tmp_path / "store", policy)
        assert not second.changed  # already-coarse segments stay put

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CompactionPolicy(max_segments=0)
        with pytest.raises(ValueError):
            CompactionPolicy(coarsen_after_bins=0)
        with pytest.raises(ValueError):
            CompactionPolicy(drop_after_bins=-1)


class TestWriterCoexistence:
    def test_stale_writer_is_refused_then_reloads(self, tmp_path):
        mapper = make_mapper()
        bins = synthetic_bins(10, seed=19)
        writer = build_store(tmp_path / "store", bins[:8], mapper, chunk=1)
        result = compact_store(
            tmp_path / "store", CompactionPolicy(max_segments=2)
        )
        assert result.changed
        # The writer's cached manifest predates the compaction: an
        # append from it would resurrect the replaced segments.
        with pytest.raises(StoreError, match="advanced underneath"):
            writer.append_bins(bins[8:])
        assert writer.reload()
        writer.append_bins(bins[8:])
        report = InternetHealthReport(analysis_of(bins, mapper))
        assert_equivalent(report, StoreQuery(tmp_path / "store"), bins)

    def test_reload_without_change_reports_false(self, tmp_path):
        writer = AlarmStoreWriter.create(tmp_path / "store", make_mapper())
        assert not writer.reload()

    def test_cli_compact_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        bins = synthetic_bins(10, seed=23)
        build_store(tmp_path / "store", bins, make_mapper(), chunk=1)
        assert main(
            ["compact", str(tmp_path / "store"), "--max-segments", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "compacted" in out and "-> 2 segments" in out
        assert len(read_manifest(tmp_path / "store").segments) == 2
        assert main(
            ["compact", str(tmp_path / "store"), "--max-segments", "2"]
        ) == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_cli_compact_missing_store(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["compact", str(tmp_path / "nope")]) == 1
        assert "error" in capsys.readouterr().err
