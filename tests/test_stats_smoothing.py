"""Tests for exponential smoothing (paper Eq. 7/8) and the warm-up seed."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    ExponentialSmoother,
    VectorSmoother,
    exponential_smoothing,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestExponentialSmoothingStep:
    def test_midpoint(self):
        assert exponential_smoothing(10.0, 20.0, 0.5) == 15.0

    def test_small_alpha_barely_moves(self):
        assert exponential_smoothing(10.0, 1000.0, 0.01) == pytest.approx(19.9)

    def test_rejects_alpha_bounds(self):
        for alpha in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                exponential_smoothing(1.0, 2.0, alpha)

    @given(finite, finite, st.floats(0.01, 0.99))
    def test_result_between_inputs(self, previous, observation, alpha):
        result = exponential_smoothing(previous, observation, alpha)
        low, high = min(previous, observation), max(previous, observation)
        assert low - 1e-9 <= result <= high + 1e-9


class TestExponentialSmoother:
    def test_three_bin_median_seed(self):
        """Paper §4.2.4: m̄0 = median(m1, m2, m3)."""
        smoother = ExponentialSmoother(alpha=0.5, seed_bins=3)
        assert smoother.update(1.0) is None
        assert not smoother.ready
        assert smoother.update(100.0) is None
        assert smoother.update(2.0) == 2.0  # median(1, 100, 2)
        assert smoother.ready

    def test_smoothing_after_seed(self):
        smoother = ExponentialSmoother(alpha=0.5, seed_bins=1)
        smoother.update(10.0)
        assert smoother.update(20.0) == 15.0
        assert smoother.value == 15.0

    def test_anomaly_resistance_with_small_alpha(self):
        """A one-bin spike must barely move the reference (paper design)."""
        smoother = ExponentialSmoother(alpha=0.01, seed_bins=3)
        for _ in range(3):
            smoother.update(5.0)
        smoother.update(500.0)  # anomalous bin
        assert smoother.value == pytest.approx(5.0 + 0.01 * 495.0)
        assert smoother.value < 10.0

    def test_preview_does_not_mutate(self):
        smoother = ExponentialSmoother(alpha=0.5, seed_bins=1)
        smoother.update(10.0)
        assert smoother.preview(20.0) == 15.0
        assert smoother.value == 10.0

    def test_preview_during_warmup(self):
        smoother = ExponentialSmoother(alpha=0.5, seed_bins=3)
        smoother.update(1.0)
        assert smoother.preview(2.0) is None
        smoother.update(2.0)
        assert smoother.preview(3.0) == 2.0
        assert not smoother.ready

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialSmoother(alpha=0.0)
        with pytest.raises(ValueError):
            ExponentialSmoother(alpha=1.0)
        with pytest.raises(ValueError):
            ExponentialSmoother(seed_bins=0)

    def test_warmup_buffer_bounded_to_seed_bins(self):
        """The warm-up buffer never holds more than seed_bins entries."""
        smoother = ExponentialSmoother(alpha=0.5, seed_bins=5)
        for value in (1.0, 2.0, 3.0):
            smoother.update(value)
            assert len(smoother._warmup) <= smoother.seed_bins
        # Shrinking seed_bins mid-warm-up must not leave a larger buffer
        # behind: only the newest seed_bins observations seed the median.
        smoother.seed_bins = 2
        result = smoother.update(4.0)
        assert smoother.ready
        assert result == 3.5  # median(3.0, 4.0): oldest entries dropped
        assert smoother._warmup == []

    def test_preview_respects_seed_bins_bound(self):
        smoother = ExponentialSmoother(alpha=0.5, seed_bins=3)
        smoother.update(1.0)
        smoother.update(100.0)
        smoother.seed_bins = 2
        assert smoother.preview(2.0) == 51.0  # median(100, 2)
        assert not smoother.ready  # preview never mutates

    @settings(max_examples=30)
    @given(st.lists(finite, min_size=4, max_size=50), st.floats(0.01, 0.99))
    def test_reference_stays_within_observed_range(self, values, alpha):
        smoother = ExponentialSmoother(alpha=alpha, seed_bins=3)
        for value in values:
            smoother.update(value)
        assert smoother.ready
        assert min(values) - 1e-6 <= smoother.value <= max(values) + 1e-6


class TestVectorSmoother:
    def test_first_observation_becomes_reference(self):
        smoother = VectorSmoother(alpha=0.1)
        weights = smoother.update({"A": 10, "B": 100, "Z": 5})
        assert weights == {"A": 10.0, "B": 100.0, "Z": 5.0}

    def test_eq8_update(self):
        smoother = VectorSmoother(alpha=0.5)
        smoother.update({"A": 10.0})
        weights = smoother.update({"A": 20.0})
        assert weights == {"A": 15.0}

    def test_unseen_hop_decays(self):
        """Hop unseen at time t contributes p_i = 0 (paper §5.1)."""
        smoother = VectorSmoother(alpha=0.5)
        smoother.update({"A": 10.0, "B": 8.0})
        weights = smoother.update({"A": 10.0})
        assert weights["B"] == pytest.approx(4.0)

    def test_new_hop_enters_scaled_by_alpha(self):
        """Hop first seen at time t has reference p̄_i = 0 (paper §5.1)."""
        smoother = VectorSmoother(alpha=0.25)
        smoother.update({"A": 10.0})
        weights = smoother.update({"A": 10.0, "C": 40.0})
        assert weights["C"] == pytest.approx(10.0)

    def test_pruning_removes_dust(self):
        smoother = VectorSmoother(alpha=0.5, prune_below=0.1)
        smoother.update({"A": 10.0, "B": 0.2})
        smoother.update({"A": 10.0})
        smoother.update({"A": 10.0})
        assert "B" not in smoother.weights

    def test_rejects_negative_counts(self):
        smoother = VectorSmoother()
        with pytest.raises(ValueError):
            smoother.update({"A": -1.0})

    def test_updates_counter_and_bool(self):
        smoother = VectorSmoother()
        assert not smoother
        smoother.update({"A": 1.0})
        assert smoother
        assert smoother.updates == 1

    def test_weights_returns_copy(self):
        smoother = VectorSmoother()
        smoother.update({"A": 1.0})
        view = smoother.weights
        view["A"] = 999.0
        assert smoother.weights["A"] == 1.0
