"""Tests for the Wilson-score median confidence intervals (paper Eq. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    WilsonInterval,
    median_confidence_interval,
    wilson_score_bounds,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestWilsonScoreBounds:
    def test_bounds_bracket_p(self):
        lower, upper = wilson_score_bounds(100, p=0.5)
        assert lower < 0.5 < upper

    def test_bounds_shrink_with_n(self):
        narrow = wilson_score_bounds(10_000)
        wide = wilson_score_bounds(10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_known_value_n9(self):
        # n = 9 is the paper's minimum sample count (3 probes x 3 packets).
        lower, upper = wilson_score_bounds(9)
        assert 0.0 <= lower < 0.5 < upper <= 1.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            wilson_score_bounds(0)
        with pytest.raises(ValueError):
            wilson_score_bounds(10, p=0.0)
        with pytest.raises(ValueError):
            wilson_score_bounds(10, p=1.5)
        with pytest.raises(ValueError):
            wilson_score_bounds(10, z=-1.0)

    @given(st.integers(min_value=1, max_value=100_000))
    def test_bounds_always_in_unit_interval(self, n):
        lower, upper = wilson_score_bounds(n)
        assert 0.0 <= lower <= upper <= 1.0

    @given(
        st.integers(min_value=2, max_value=10_000),
        st.floats(min_value=0.05, max_value=0.95),
    )
    def test_bounds_bracket_any_quantile(self, n, p):
        lower, upper = wilson_score_bounds(n, p=p)
        assert lower <= p <= upper

    def test_higher_z_widens_interval(self):
        narrow = wilson_score_bounds(100, z=1.0)
        wide = wilson_score_bounds(100, z=2.58)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]


class TestMedianConfidenceInterval:
    def test_simple_odd_sample(self):
        ci = median_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert ci.median == 3.0
        assert ci.lower <= ci.median <= ci.upper
        assert ci.n == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median_confidence_interval([])

    def test_single_sample_degenerate(self):
        ci = median_confidence_interval([7.5])
        assert ci.median == ci.lower == ci.upper == 7.5

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(42)
        small = median_confidence_interval(rng.normal(10, 2, size=20))
        large = median_confidence_interval(rng.normal(10, 2, size=2000))
        assert large.width < small.width

    def test_robust_to_outliers(self):
        """Outliers should barely move the median CI (paper's motivation)."""
        base = list(np.linspace(9.9, 10.1, 200))
        ci_clean = median_confidence_interval(base)
        ci_dirty = median_confidence_interval(base + [1000.0] * 5)
        assert abs(ci_clean.median - ci_dirty.median) < 0.05
        assert abs(ci_clean.upper - ci_dirty.upper) < 0.1

    def test_skewed_distribution_asymmetric_interval(self):
        """Wilson CI follows order statistics, so skew yields asymmetry."""
        rng = np.random.default_rng(7)
        sample = rng.lognormal(mean=1.0, sigma=1.0, size=500)
        ci = median_confidence_interval(sample)
        lower_arm = ci.median - ci.lower
        upper_arm = ci.upper - ci.median
        assert upper_arm != pytest.approx(lower_arm, rel=0.01)

    @settings(max_examples=60)
    @given(st.lists(finite_floats, min_size=1, max_size=300))
    def test_interval_contains_median_and_is_ordered(self, samples):
        ci = median_confidence_interval(samples)
        assert ci.lower <= ci.median <= ci.upper
        assert min(samples) <= ci.lower
        assert ci.upper <= max(samples)

    @settings(max_examples=30)
    @given(
        st.lists(finite_floats, min_size=5, max_size=100),
        st.floats(min_value=-100, max_value=100),
    )
    def test_translation_equivariance(self, samples, shift):
        """CI of (x + c) equals CI of x shifted by c (order statistics)."""
        ci = median_confidence_interval(samples)
        shifted = median_confidence_interval([s + shift for s in samples])
        assert shifted.median == pytest.approx(ci.median + shift, abs=1e-6)
        assert shifted.lower == pytest.approx(ci.lower + shift, abs=1e-6)
        assert shifted.upper == pytest.approx(ci.upper + shift, abs=1e-6)

    def test_coverage_of_true_median(self):
        """~95% of CIs should contain the true median (the point of Eq. 5)."""
        rng = np.random.default_rng(1234)
        hits = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(0.0, 1.0, size=99)
            ci = median_confidence_interval(sample)
            if ci.lower <= 0.0 <= ci.upper:
                hits += 1
        assert hits / trials > 0.9


class TestWilsonIntervalOverlap:
    def test_overlapping(self):
        a = WilsonInterval(5.0, 4.0, 6.0, 100)
        b = WilsonInterval(5.5, 5.5, 7.0, 100)
        assert a.overlaps(b)
        assert b.overlaps(a)

    def test_disjoint(self):
        a = WilsonInterval(5.0, 4.0, 6.0, 100)
        b = WilsonInterval(9.0, 8.0, 10.0, 100)
        assert not a.overlaps(b)
        assert not b.overlaps(a)

    def test_touching_counts_as_overlap(self):
        a = WilsonInterval(5.0, 4.0, 6.0, 100)
        b = WilsonInterval(7.0, 6.0, 8.0, 100)
        assert a.overlaps(b)

    def test_width_and_shift(self):
        a = WilsonInterval(5.0, 4.0, 6.5, 10)
        assert a.width == pytest.approx(2.5)
        b = a.shifted(10.0)
        assert (b.median, b.lower, b.upper) == (15.0, 14.0, 16.5)
