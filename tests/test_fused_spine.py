"""Fused-spine guarantees: shm hygiene, oracle equivalence, JSON bytes.

Four contracts of the fused end-to-end throughput path:

1. **Zero shared-memory leaks.**  The process executor ships every
   fused bin through one ``repro-fb-*`` block whose cleanup belongs to
   the creator alone — normal shutdown, a SIGKILLed worker and a
   mid-bin send failure must all leave ``/dev/shm`` empty.
2. **The object path is the oracle.**  For random campaigns, the fused
   spine (columnar input, ``fused=True``) produces bit-identical
   alarms, stats and per-bin results to both the dict-shaped sharded
   path (``fused=False``) and the serial reference pipeline.
3. **Canonical JSON is byte-compatible.**  ``dumps_canonical`` (orjson
   when available) and ``dumps_canonical_stdlib`` emit the same bytes
   for every record the system serialises on its hot write paths.
4. **Mapped bin caches are transparent.**  A ``mapped=True`` cache read
   (zero-copy memoryview columns over the mmap) is indistinguishable
   from the copying read, all the way through the engine.
"""

import glob
import json
import os
import signal
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atlas import (
    TracerouteBatch,
    decode_traceroutes,
    load_or_build,
    make_traceroute,
    read_bincache,
    write_bincache,
    write_traceroutes,
)
from repro.core import (
    Pipeline,
    PipelineConfig,
    ShardedPipeline,
)
from repro.core.fused import SHM_PREFIX, pack_fused, unpack_fused
from repro.reporting import (
    bin_event_record,
    delay_alarm_record,
    dumps_canonical,
    dumps_canonical_stdlib,
    forwarding_alarm_record,
    record_json,
)

# -- synthetic campaign (alarms guaranteed, see the vacuity guard) ----------


def _campaign(n_links=8, n_probes=9, n_bins=9):
    """Deterministic multi-bin campaign with delay + forwarding events."""
    import numpy as np

    rng = np.random.default_rng(7)
    traceroutes = []
    for bin_index in range(n_bins):
        timestamp = bin_index * 3600
        for link_index in range(n_links):
            near = f"10.{link_index}.0.1"
            far = f"10.{link_index}.0.2"
            shift = 25.0 if bin_index >= 6 and link_index % 2 == 0 else 0.0
            for probe in range(n_probes):
                asn = 65001 + probe % 4
                base = 10.0 + probe
                near_rtts = base + rng.normal(0.0, 0.2, 2)
                far_rtts = base + 6.0 + shift + rng.normal(0.0, 0.2, 2)
                next_hop = far
                if link_index == 3 and bin_index >= 6:
                    next_hop = f"10.{link_index}.9.9"  # forwarding flip
                traceroutes.append(
                    make_traceroute(
                        probe + link_index * 100,
                        f"src{probe}",
                        f"dst{link_index}",
                        timestamp + probe,
                        [
                            [(near, float(value)) for value in near_rtts],
                            [(next_hop, float(value)) for value in far_rtts],
                        ],
                        from_asn=asn,
                    )
                )
    return traceroutes


@pytest.fixture(scope="module")
def campaign():
    return _campaign()


@pytest.fixture(scope="module")
def batch(campaign):
    return TracerouteBatch.from_traceroutes(campaign)


@pytest.fixture(scope="module")
def serial_results(campaign):
    pipeline = Pipeline(PipelineConfig())
    results = pipeline.run(campaign)
    # Vacuity guard: the shm/equivalence tests below are only meaningful
    # if the campaign actually produces both alarm kinds.
    assert sum(len(r.delay_alarms) for r in results) > 0
    assert sum(len(r.forwarding_alarms) for r in results) > 0
    return pipeline, results


# -- 1. shared-memory lifecycle ---------------------------------------------

SHM_DIR = Path("/dev/shm")

needs_dev_shm = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="needs a visible /dev/shm to enumerate"
)


def _leaked():
    """Every fused-transport block currently visible in /dev/shm."""
    return sorted(glob.glob(str(SHM_DIR / f"{SHM_PREFIX}*")))


@needs_dev_shm
class TestShmLifecycle:
    def test_normal_run_and_shutdown_leaves_no_blocks(
        self, batch, serial_results
    ):
        assert _leaked() == []
        serial, results = serial_results
        with ShardedPipeline(
            PipelineConfig(n_shards=4, executor="process", n_jobs=2)
        ) as engine:
            assert engine.run(batch) == results
            assert engine.stats() == serial.stats()
        assert _leaked() == []

    def test_worker_crash_leaves_no_blocks(self, batch):
        assert _leaked() == []
        engine = ShardedPipeline(
            PipelineConfig(n_shards=2, executor="process", n_jobs=2)
        )
        try:
            engine.process_bin(0, batch.view(range(0, 50)))
            victim = engine._backend.workers[0]["process"]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            with pytest.raises(
                (RuntimeError, EOFError, BrokenPipeError, OSError)
            ):
                engine.process_bin(3600, batch.view(range(50, 100)))
        finally:
            engine.close()
        assert _leaked() == []

    def test_mid_bin_send_failure_leaves_no_blocks(self, batch):
        assert _leaked() == []
        engine = ShardedPipeline(
            PipelineConfig(n_shards=2, executor="process", n_jobs=2)
        )
        try:
            engine.process_bin(0, batch.view(range(0, 50)))
            # Sever one worker's pipe from the parent side: the next
            # fused send fails after pack_fused created the block, so
            # only the engine's ``finally`` stands between the block
            # and a leak.
            engine._backend.workers[-1]["pipe"].close()
            with pytest.raises((OSError, ValueError, BrokenPipeError)):
                engine.process_bin(3600, batch.view(range(50, 100)))
        finally:
            engine.close()
        assert _leaked() == []

    def test_pack_unpack_roundtrip_and_unlink(self, batch):
        from repro.core import extract_bin_fused, partition_fused, string_ranks

        strings = batch.interner.strings
        fused = extract_bin_fused(
            batch.view(range(0, 80)), string_ranks(strings)
        )
        parts = partition_fused(fused, 3, strings, {}, {})
        block, layouts = pack_fused(parts)
        try:
            assert _leaked() != []  # the block really lives in /dev/shm
            for part, layout in zip(parts, layouts):
                view = unpack_fused(block, layout)
                assert view.n_traceroutes == part.n_traceroutes
                assert view.samples.tolist() == part.samples.tolist()
                assert view.link_near.tolist() == part.link_near.tolist()
                assert view.hop_ids.tolist() == part.hop_ids.tolist()
                del view  # views alias the mapping; drop before close
        finally:
            block.close()
            block.unlink()
        assert _leaked() == []


# -- 2. fused == object-path oracle -----------------------------------------

ip_strategy = st.sampled_from(
    ["10.0.0.1", "10.0.0.2", "10.0.1.1", "10.1.0.1", "10.1.0.2", "*"]
)
rtt_strategy = st.floats(min_value=0.1, max_value=200.0, allow_nan=False)


@st.composite
def traceroute_strategy(draw, ts=0):
    n_hops = draw(st.integers(min_value=1, max_value=4))
    hop_replies = []
    for _ in range(n_hops):
        n_replies = draw(st.integers(min_value=1, max_value=3))
        replies = []
        for _ in range(n_replies):
            if draw(st.booleans()):
                replies.append((draw(ip_strategy), draw(rtt_strategy)))
            else:
                replies.append((None, None))
        hop_replies.append(replies)
    return make_traceroute(
        prb_id=draw(st.integers(0, 12)),
        src_addr="192.0.2.1",
        dst_addr=draw(ip_strategy),
        timestamp=ts,
        hop_replies=hop_replies,
        from_asn=draw(st.sampled_from([65001, 65002, 65003, None])),
    )


class TestFusedOracle:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.data())
    def test_random_campaign_bit_identical(self, data):
        """Fused spine == dict-shaped shards == serial, over random
        multi-bin campaigns (references accumulate across bins)."""
        bins = [
            data.draw(
                st.lists(traceroute_strategy(ts=b * 3600), max_size=10)
            )
            for b in range(3)
        ]
        serial = Pipeline(PipelineConfig())
        reference = [
            serial.process_bin(b * 3600, traceroutes)
            for b, traceroutes in enumerate(bins)
        ]
        flat = [tr for bin_trs in bins for tr in bin_trs]
        batch = TracerouteBatch.from_traceroutes(flat)
        offsets = [0]
        for bin_trs in bins:
            offsets.append(offsets[-1] + len(bin_trs))
        fused_engine = ShardedPipeline(
            PipelineConfig(n_shards=3, executor="serial")
        )
        oracle_engine = ShardedPipeline(
            PipelineConfig(n_shards=3, executor="serial", fused=False)
        )
        for b in range(3):
            view = batch.view(range(offsets[b], offsets[b + 1]))
            assert fused_engine.process_bin(b * 3600, view) == reference[b]
            assert oracle_engine.process_bin(b * 3600, view) == reference[b]
        assert fused_engine.stats() == serial.stats()
        assert oracle_engine.stats() == serial.stats()

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_fused_flag_off_identical(
        self, batch, serial_results, n_shards
    ):
        """--no-fused (config.fused=False) routes columnar bins through
        the dict extraction and still matches bit for bit."""
        serial, results = serial_results
        engine = ShardedPipeline(
            PipelineConfig(n_shards=n_shards, executor="serial", fused=False)
        )
        assert engine.run(batch) == results
        assert engine.stats() == serial.stats()

    def test_fused_excluded_from_config_fingerprint(self):
        """``fused`` is an execution knob: flipping it must not
        invalidate checkpoints."""
        from repro.core import config_fingerprint

        on = config_fingerprint(PipelineConfig(n_shards=2, fused=True))
        off = config_fingerprint(PipelineConfig(n_shards=2, fused=False))
        assert on == off


# -- 3. canonical JSON byte-compatibility -----------------------------------


class TestCanonicalJsonBytes:
    def _records(self, serial_results):
        _, results = serial_results
        records = [bin_event_record(result) for result in results]
        records += [
            delay_alarm_record(alarm)
            for result in results
            for alarm in result.delay_alarms
        ]
        records += [
            forwarding_alarm_record(alarm)
            for result in results
            for alarm in result.forwarding_alarms
        ]
        return records

    def test_real_records_byte_identical(self, serial_results):
        records = self._records(serial_results)
        assert records  # non-vacuous: alarms of both kinds exist
        for record in records:
            assert dumps_canonical(record) == dumps_canonical_stdlib(record)

    def test_record_json_round_trips(self, serial_results):
        from repro.reporting import bin_result_from_record

        _, results = serial_results
        for result in results:
            line = record_json(bin_event_record(result))
            assert "\n" not in line
            assert bin_result_from_record(json.loads(line)) == result

    def test_http_payload_shapes_byte_identical(self):
        payloads = [
            {"error": "store unavailable: gone", "retry_after": 5},
            {
                "store": {"generation": 3, "bins": 12, "store_id": "ab" * 8},
                "cache": {"hits": 10, "misses": 2, "size": 2},
                "routes": ["/health/{asn}", "/events"],
            },
            [{"asn": 65001, "magnitude": -3.25}, {"asn": 2, "magnitude": 0.5}],
            {"schema": "timings/v1", "timings": {"detect": {
                "calls": 3, "seconds": 0.004169993000890827}}},
            {"unicode": "Überlingen — ASN", "empty": {}, "none": None,
             "bool": [True, False], "neg": -17},
        ]
        for payload in payloads:
            assert dumps_canonical(payload) == dumps_canonical_stdlib(payload)

    json_scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**53), max_value=2**53),
        # Plain-notation range: stdlib and orjson agree byte-for-byte
        # on every float that repr() renders without an exponent (the
        # documented out-of-contract divergence is exponent spelling
        # only, e.g. 1e+16 vs 1e16).
        st.floats(
            min_value=-1e15, max_value=1e15, allow_nan=False
        ).filter(lambda v: v == 0.0 or abs(v) >= 1e-4),
        st.text(max_size=20),
    )

    @settings(max_examples=200, deadline=None)
    @given(
        st.recursive(
            json_scalars,
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=8), children, max_size=4),
            ),
            max_leaves=20,
        )
    )
    def test_random_payloads_byte_identical(self, payload):
        assert dumps_canonical(payload) == dumps_canonical_stdlib(payload)

    def test_sorted_keys_compact_separators_utf8(self):
        body = dumps_canonical({"b": 1, "a": [1, 2], "ü": "é"})
        assert body == '{"a":[1,2],"b":1,"ü":"é"}'.encode("utf-8")


# -- 4. mapped bin cache -----------------------------------------------------


class TestMappedBinCache:
    @pytest.fixture(scope="class")
    def cache_path(self, campaign, tmp_path_factory):
        root = tmp_path_factory.mktemp("mapped-binc")
        jsonl = root / "campaign.jsonl"
        write_traceroutes(jsonl, campaign)
        cache = root / "campaign.binc"
        write_bincache(cache, decode_traceroutes(jsonl))
        return cache

    def test_mapped_columns_equal_copied(self, cache_path):
        copied = read_bincache(cache_path)
        mapped = read_bincache(cache_path, mapped=True)
        assert len(mapped) == len(copied)
        assert mapped.interner.strings == copied.interner.strings
        for name in (
            "timestamp", "prb_id", "src_id", "dst_id", "from_asn",
            "hop_offsets", "hop_ttl", "reply_offsets",
            "reply_ip", "reply_rtt",
        ):
            assert list(getattr(mapped, name)) == list(getattr(copied, name))
        assert mapped.to_traceroutes() == copied.to_traceroutes()

    def test_mapped_engine_run_identical(
        self, cache_path, serial_results
    ):
        serial, results = serial_results
        mapped = read_bincache(cache_path, mapped=True)
        engine = ShardedPipeline(
            PipelineConfig(n_shards=2, executor="serial")
        )
        assert engine.run(mapped) == results
        assert engine.stats() == serial.stats()

    def test_load_or_build_mapped_hit(self, cache_path, campaign):
        jsonl = cache_path.parent / "campaign.jsonl"
        batch, hit = load_or_build(jsonl, cache_path=cache_path, mapped=True)
        assert hit
        assert len(batch) == len(campaign)
        from array import array

        # Cache hits are served as zero-copy views, not array copies.
        assert not isinstance(batch.timestamp, array)

    def test_mapped_batch_is_read_only(self, cache_path, campaign):
        mapped = read_bincache(cache_path, mapped=True)
        with pytest.raises((AttributeError, TypeError)):
            mapped.append(campaign[0])
