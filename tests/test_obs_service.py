"""Observability routes and telemetry on both HTTP tiers.

The acceptance contract: ``/metrics`` and ``/statusz`` exist on the
sync and async tiers, expose the *same* metric families (names and
label sets), the access log is byte-identical in field order across
tiers, query routes stay bit-identical with metrics enabled, and the
request telemetry (counts, cache outcomes, 304s, coalesces) reflects
what the tier actually did.
"""

import json
import threading
import time

import pytest

from repro.obs.expo import parse_text, validate
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.status import StatusBoard, set_default_board
from repro.service import make_server
from repro.service.aio import AsyncServerThread
from repro.service.http import AccessLog, ServiceMetrics, route_family

from tests.test_service_aio import KeepAliveClient, sync_get
from tests.test_service_store import build_store, make_mapper, synthetic_bins

QUERY_MATRIX = [
    "/health/65001",
    "/health?asns=65001,65002",
    "/links/65001",
    "/events?kind=delay&threshold=0.5&limit=5",
    "/top?kind=delay&k=3",
]


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("obs-serve") / "store"
    build_store(directory, synthetic_bins(6, seed=13), make_mapper(), chunk=2)
    return directory


@pytest.fixture()
def stack(store_dir, tmp_path):
    """Both tiers over one store, each with its own access log."""
    sync_log = tmp_path / "sync.access.jsonl"
    async_log = tmp_path / "async.access.jsonl"
    server = make_server(store_dir, port=0, access_log=sync_log)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    with AsyncServerThread(store_dir, access_log=async_log) as async_srv:
        yield {
            "sync_base": f"http://{host}:{port}",
            "async_port": async_srv.port,
            "service": async_srv.service,
            "sync_log": sync_log,
            "async_log": async_log,
        }
    server.shutdown()
    server.server_close()


def aio_get(port: int, target: str, headers=None):
    client = KeepAliveClient(port)
    try:
        return client.get(target, headers or {})
    finally:
        client.close()


def header(headers, name):
    """Case-insensitive header lookup (the two tiers case differently)."""
    for key, value in headers.items():
        if key.lower() == name.lower():
            return value
    return None


def eventually(check, timeout=5.0):
    """Retry *check* until it stops raising/returning falsy.

    Telemetry is recorded *after* the response bytes go out, so a
    client can observe its answer microseconds before the server has
    counted it; assertions on counters and access logs poll briefly.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            result = check()
            if result or result is None:
                return result
        except (AssertionError, KeyError, IndexError):
            if time.monotonic() >= deadline:
                raise
        else:
            if time.monotonic() >= deadline:
                return result
        time.sleep(0.01)


class TestRouteFamily:
    def test_fixed_routes_map_to_themselves(self):
        for route in ("/", "/health", "/events", "/top", "/metrics",
                      "/statusz"):
            assert route_family(route) == route

    def test_parameterized_routes_collapse(self):
        assert route_family("/health/65001") == "/health/{asn}"
        assert route_family("/links/99") == "/links/{asn}"

    def test_unknown_routes_are_bounded(self):
        assert route_family("/nonsense") == "other"
        assert route_family("/a/b/c") == "other"


class TestScrapeRoutes:
    def test_metrics_route_on_both_tiers(self, stack):
        for status, headers, body in (
            sync_get(stack["sync_base"], "/metrics"),
            aio_get(stack["async_port"], "/metrics"),
        ):
            assert status == 200
            assert header(headers, "content-type").startswith(
                "text/plain; version=0.0.4"
            )
            validate(parse_text(body))

    def test_both_tiers_expose_identical_metric_families(self, stack):
        """Same names, same label sets — one coherent metric namespace."""
        for target in QUERY_MATRIX:
            sync_get(stack["sync_base"], target)
            aio_get(stack["async_port"], target)
        _, _, sync_body = sync_get(stack["sync_base"], "/metrics")
        _, _, aio_body = aio_get(stack["async_port"], "/metrics")

        def families_of(body):
            parsed = parse_text(body)
            return {
                name: (
                    entry["type"],
                    tuple(sorted(
                        frozenset(labels) - {"le"}
                        for _, labels, _ in entry["samples"]
                    )),
                )
                for name, entry in parsed.items()
            }

        # Both tiers share the process default registry, so the scrape
        # is literally the same document modulo live values.
        assert set(families_of(sync_body)) == set(families_of(aio_body))
        for name, (kind, _) in families_of(sync_body).items():
            assert families_of(aio_body)[name][0] == kind

    def test_statusz_reports_store_and_cache(self, stack):
        for status, headers, body in (
            sync_get(stack["sync_base"], "/statusz"),
            aio_get(stack["async_port"], "/statusz"),
        ):
            assert status == 200
            payload = json.loads(body)
            assert set(payload) == {"cache", "components", "store"}
            assert "generation" in payload["store"]
            assert "token" in payload["store"]

    def test_statusz_shows_board_components(self, stack):
        board = StatusBoard()
        board.update("monitor", bins_closed=7, feed_lag_s=120)
        previous = set_default_board(board)
        try:
            _, _, body = sync_get(stack["sync_base"], "/statusz")
        finally:
            set_default_board(previous)
        payload = json.loads(body)
        assert payload["components"]["monitor"] == {
            "bins_closed": 7, "feed_lag_s": 120
        }

    def test_scrape_routes_are_never_cached(self, stack):
        _, first_headers, first = sync_get(stack["sync_base"], "/metrics")

        def second_scrape_differs():
            _, _, second = sync_get(stack["sync_base"], "/metrics")
            assert first != second  # the first scrape moved the counters

        eventually(second_scrape_differs)


class TestRequestTelemetry:
    def _scrape_samples(self, base):
        _, _, body = sync_get(base, "/metrics")
        parsed = parse_text(body)
        return {
            (name, tuple(sorted(labels.items()))): value
            for name, entry in parsed.items()
            for name_, labels, value in entry["samples"]
            if name_ == name  # plain counter/gauge samples only
        }

    def test_request_counters_move_per_route_family(self, stack):
        before = self._scrape_samples(stack["sync_base"])
        sync_get(stack["sync_base"], "/health/65001")
        sync_get(stack["sync_base"], "/health/65002")
        key = (
            "repro_http_requests_total",
            (("route", "/health/{asn}"), ("status", "200")),
        )

        def moved_by_two():
            after = self._scrape_samples(stack["sync_base"])
            assert after[key] - before.get(key, 0) == 2

        eventually(moved_by_two)

    def test_304_is_counted_as_sent(self, stack):
        status, headers, _ = sync_get(stack["sync_base"], "/top?kind=delay")
        etag = header(headers, "etag")
        status, _, _ = sync_get(
            stack["sync_base"], "/top?kind=delay",
            headers={"If-None-Match": etag},
        )
        assert status == 304
        key = ("repro_http_requests_total",
               (("route", "/top"), ("status", "304")))
        eventually(
            lambda: self._scrape_samples(stack["sync_base"])[key] >= 1
        )

    def test_cache_outcomes_on_async_tier(self, stack):
        service = stack["service"]
        hits_before = service.hits
        aio_get(stack["async_port"], "/events?kind=delay&threshold=0.9")
        aio_get(stack["async_port"], "/events?kind=delay&threshold=0.9")
        assert service.hits > hits_before

        def both_outcomes_counted():
            samples = self._scrape_samples(stack["sync_base"])
            assert samples[
                ("repro_http_cache_total", (("result", "hit"),))
            ] >= 1
            assert samples[
                ("repro_http_cache_total", (("result", "miss"),))
            ] >= 1

        eventually(both_outcomes_counted)


class TestAccessLog:
    def _drain(self, path):
        return [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
            if line
        ]

    def test_one_line_per_request_with_fixed_fields(self, stack):
        sync_get(stack["sync_base"], "/health/65001")
        sync_get(stack["sync_base"], "/nonsense")
        records = eventually(
            lambda: len(self._drain(stack["sync_log"])) >= 2
            and self._drain(stack["sync_log"])
        )
        assert [r["route"] for r in records[-2:]] == [
            "/health/65001", "/nonsense"
        ]
        assert records[-1]["status"] == 404
        for record in records:
            assert list(record) == ["cache", "latency_us", "route", "status"]
            assert record["cache"] in ("hit", "miss", "coalesced", "none")
            assert record["latency_us"] >= 0

    def test_field_order_is_byte_identical_across_tiers(self, stack):
        sync_get(stack["sync_base"], "/top?kind=delay&k=2")
        aio_get(stack["async_port"], "/top?kind=delay&k=2")

        def keys_of(path):
            line = eventually(
                lambda: path.read_text().strip().splitlines()[-1]
            )
            return list(json.loads(line))

        assert keys_of(stack["sync_log"]) == keys_of(stack["async_log"])
        # Byte-level: strip the (legitimately different) values and
        # compare the field skeletons of the two lines.
        import re

        def skeleton(path):
            line = path.read_text().strip().splitlines()[-1]
            return re.sub(r"(?<=:)[^,}]+", "#", line)

        assert skeleton(stack["sync_log"]) == skeleton(stack["async_log"])


class TestBitIdentityWithMetricsEnabled:
    def test_query_routes_identical_across_tiers_with_obs_on(self, stack):
        """All five query routes answer bit-identically, metrics running."""
        for target in QUERY_MATRIX:
            s_status, s_headers, s_body = sync_get(
                stack["sync_base"], target
            )
            a_status, a_headers, a_body = aio_get(
                stack["async_port"], target
            )
            assert (s_status, s_body) == (a_status, a_body), target
            assert header(s_headers, "etag") == header(a_headers, "etag"), \
                target


class TestServiceMetricsUnit:
    def test_binds_idempotently_to_injected_registry(self):
        registry = MetricsRegistry()
        first = ServiceMetrics(registry)
        second = ServiceMetrics(registry)
        assert first.requests is second.requests
        assert first.latency is second.latency

    def test_observe_outcomes(self):
        registry = MetricsRegistry()
        metrics = ServiceMetrics(registry)
        metrics.observe("/top", 200, 0.001, "miss")
        metrics.observe("/top", 200, 0.0005, "hit")
        metrics.observe("/top", 200, 0.002, "coalesced")
        metrics.observe("/metrics", 200, 0.0001, "none")
        families = {f.name: f for f in registry.collect()}
        cache = {
            c.labelvalues: c.value
            for c in families["repro_http_cache_total"].children
        }
        # A coalesced request is a cache miss that waited on a peer.
        assert cache == {("hit",): 1.0, ("miss",): 2.0}
        [coalesced] = families["repro_http_coalesced_total"].children
        assert coalesced.value == 1.0

    def test_access_log_canonical_bytes(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(path)
        log.write("/top", 200, 123, "hit")
        log.close()
        assert path.read_bytes() == (
            b'{"cache":"hit","latency_us":123,"route":"/top","status":200}\n'
        )
