"""Tests for the persistent alarm store and its IHR-equivalent queries.

The central claim (ISSUE 5): for any campaign, :class:`StoreQuery` over
the on-disk store answers every Internet-Health-Report query
bit-identically to :class:`InternetHealthReport` over the in-memory
analysis — across arbitrary segment chunkings, while a writer appends,
and never from a truncated or corrupt file (those raise
:class:`StoreError`).
"""

import random
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AlarmAggregator, CampaignAnalysis, Pipeline
from repro.core.alarms import DelayAlarm, ForwardingAlarm
from repro.core.pipeline import BinResult
from repro.net import AsMapper
from repro.reporting import InternetHealthReport
from repro.service import (
    AlarmStore,
    AlarmStoreWriter,
    StoreError,
    StoreQuery,
    append_analysis,
)
from repro.stats import WilsonInterval

#: Prefix table: two prefixes share AS 65001 (multi-link ASes), one IP
#: pool entry (198.51.100.7) is deliberately unmapped.
MAPPER_ENTRIES = [
    ("10.0.0.0", 24, 65001),
    ("10.0.1.0", 24, 65002),
    ("10.0.2.0", 24, 65001),
    ("10.1.0.0", 16, 65010),
]
IPS = [
    "10.0.0.1", "10.0.0.2", "10.0.1.1", "10.0.2.1",
    "10.1.0.1", "198.51.100.7",
]
HOPS = IPS + ["*"]
BIN_S = 3600


def make_mapper() -> AsMapper:
    return AsMapper(MAPPER_ENTRIES)


def _interval(rng) -> WilsonInterval:
    base = rng.uniform(-100.0, 100.0)
    return WilsonInterval(
        median=base,
        lower=base - rng.uniform(0.0, 5.0),
        upper=base + rng.uniform(0.0, 5.0),
        n=rng.randint(1, 500),
    )


def _delay_alarm(rng, timestamp: int) -> DelayAlarm:
    near, far = rng.sample(IPS, 2)
    return DelayAlarm(
        timestamp=timestamp + rng.randint(0, BIN_S - 1),
        link=(near, far),
        observed=_interval(rng),
        reference=_interval(rng),
        deviation=rng.uniform(0.0, 50.0),
        direction=rng.choice([-1, 1]),
        n_probes=rng.randint(1, 40),
        n_asns=rng.randint(1, 5),
    )


def _forwarding_alarm(rng, timestamp: int) -> ForwardingAlarm:
    hops = rng.sample(HOPS, rng.randint(1, 4))
    return ForwardingAlarm(
        timestamp=timestamp + rng.randint(0, BIN_S - 1),
        router_ip=rng.choice(IPS),
        destination=rng.choice(["anchor-1", "anchor-2"]),
        correlation=rng.uniform(-1.0, 1.0),
        responsibilities={
            hop: rng.choice([0.0, rng.uniform(-3.0, 3.0)]) for hop in hops
        },
        pattern={hop: rng.uniform(0.0, 30.0) for hop in hops},
        reference={hop: rng.uniform(0.0, 30.0) for hop in hops},
    )


def synthetic_bins(n_bins: int, seed: int, start: int = 0):
    """Deterministic random campaign: BinResults with both alarm kinds."""
    rng = random.Random(seed)
    results = []
    for index in range(n_bins):
        timestamp = start + index * BIN_S
        results.append(
            BinResult(
                timestamp=timestamp,
                n_traceroutes=rng.randint(0, 50),
                n_links_observed=rng.randint(0, 20),
                n_links_analyzed=rng.randint(0, 20),
                delay_alarms=[
                    _delay_alarm(rng, timestamp)
                    for _ in range(rng.randint(0, 3))
                ],
                forwarding_alarms=[
                    _forwarding_alarm(rng, timestamp)
                    for _ in range(rng.randint(0, 2))
                ],
            )
        )
    return results


def analysis_of(bin_results, mapper) -> CampaignAnalysis:
    """Aggregate synthetic bin results exactly like analyze_campaign."""
    start = bin_results[0].timestamp if bin_results else 0
    aggregator = AlarmAggregator(mapper, bin_s=BIN_S, start=start)
    for result in bin_results:
        aggregator.add_alarms(result.delay_alarms, result.forwarding_alarms)
    if bin_results:
        aggregator.close(bin_results[-1].timestamp)
    return CampaignAnalysis(
        bin_results=bin_results, aggregator=aggregator, pipeline=Pipeline()
    )


def build_store(directory, bin_results, mapper, chunk: int = 3):
    """Write *bin_results* into a store at *directory* in chunks."""
    start = bin_results[0].timestamp if bin_results else None
    writer = AlarmStoreWriter.create(
        directory, mapper, bin_s=BIN_S, start=start
    )
    for index in range(0, len(bin_results), chunk):
        writer.append_bins(bin_results[index : index + chunk])
    return writer


def assert_equivalent(report: InternetHealthReport, query: StoreQuery,
                      bin_results) -> None:
    """Every IHR answer must be bit-identical from the store."""
    assert query.monitored_asns() == report.monitored_asns()
    asns = report.monitored_asns() + [65001, 99999]
    for asn in asns:
        assert query.as_condition(asn) == report.as_condition(asn)
        assert query.links_of(asn) == report.links_of(asn)
        for kind in ("delay", "forwarding"):
            expected_ts, expected = report.magnitude_series(asn, kind)
            actual_ts, actual = query.magnitude_series(asn, kind)
            assert actual_ts == expected_ts
            assert np.array_equal(actual, expected)
    for kind in ("delay", "forwarding"):
        for threshold in (0.5, 2.0):
            assert query.top_events(kind, threshold, 20) == (
                report.top_events(kind, threshold, 20)
            )
        assert query.top_asns(kind, 5) == report.top_asns(kind, 5)
        span = (bin_results[-1].timestamp + BIN_S) if bin_results else BIN_S
        assert query.events_in(0, span, kind, 0.5) == (
            report.events_in(0, span, kind, 0.5)
        )
    for result in bin_results:
        probe = result.timestamp + 17
        assert query.alarms_at(probe) == report.alarms_at(probe)
    for ip in IPS[:3]:
        assert query.alarms_involving(ip) == report.alarms_involving(ip)


class TestEquivalence:
    """Property: store append → query round-trips the IHR bit-for-bit."""

    @given(
        seed=st.integers(0, 10_000),
        n_bins=st.integers(1, 6),
        chunk=st.integers(1, 3),
        window=st.one_of(st.none(), st.integers(1, 8)),
    )
    @settings(max_examples=25, deadline=None)
    def test_store_matches_ihr(self, seed, n_bins, chunk, window):
        mapper = make_mapper()
        bin_results = synthetic_bins(n_bins, seed)
        analysis = analysis_of(bin_results, mapper)
        report = InternetHealthReport(analysis, window_bins=window)
        with tempfile.TemporaryDirectory() as tmp:
            build_store(Path(tmp) / "store", bin_results, mapper, chunk)
            query = StoreQuery(Path(tmp) / "store", window_bins=window)
            assert_equivalent(report, query, bin_results)

    def test_multi_segment_equals_single_segment(self, tmp_path):
        mapper = make_mapper()
        bin_results = synthetic_bins(8, seed=7)
        build_store(tmp_path / "one", bin_results, mapper, chunk=100)
        build_store(tmp_path / "many", bin_results, mapper, chunk=1)
        one = StoreQuery(tmp_path / "one", window_bins=4)
        many = StoreQuery(tmp_path / "many", window_bins=4)
        assert one.monitored_asns() == many.monitored_asns()
        for asn in one.monitored_asns():
            assert one.as_condition(asn) == many.as_condition(asn)
            assert one.links_of(asn) == many.links_of(asn)
        assert len(many.store.manifest.segments) > len(
            one.store.manifest.segments
        )

    def test_real_campaign_via_append_analysis(self, tmp_path):
        """End to end on a real pipeline campaign (not synthetic alarms)."""
        from repro.atlas import make_traceroute
        from repro.core import analyze_campaign

        rng = np.random.default_rng(0)
        traceroutes = []
        for hour in range(10):
            shift = 25.0 if hour in (6, 7) else 0.0
            for probe in range(9):
                noise = rng.normal(0, 0.1, size=2)
                traceroutes.append(
                    make_traceroute(
                        probe, f"s{probe}", "dst", hour * 3600,
                        [
                            [("10.0.0.1", 10.0 + probe + noise[0])],
                            [("10.0.1.1", 15.0 + probe + shift + noise[1])],
                        ],
                        from_asn=65001 + probe % 3,
                    )
                )
        analysis = analyze_campaign(traceroutes, make_mapper())
        assert analysis.delay_alarms, "campaign must raise alarms"
        report = InternetHealthReport(analysis, window_bins=5)
        append_analysis(tmp_path / "store", analysis, segment_bins=4)
        query = StoreQuery(tmp_path / "store", window_bins=5)
        assert_equivalent(report, query, analysis.bin_results)


class TestWriterSemantics:
    def test_create_refuses_existing_store(self, tmp_path):
        mapper = make_mapper()
        AlarmStoreWriter.create(tmp_path / "store", mapper)
        with pytest.raises(StoreError):
            AlarmStoreWriter.create(tmp_path / "store", mapper)
        AlarmStoreWriter.create(tmp_path / "store", mapper, overwrite=True)

    def test_open_or_create_checks_bin_s(self, tmp_path):
        mapper = make_mapper()
        AlarmStoreWriter.create(tmp_path / "store", mapper, bin_s=3600)
        reopened = AlarmStoreWriter.open_or_create(
            tmp_path / "store", mapper, bin_s=3600
        )
        assert reopened.generation == 0
        with pytest.raises(StoreError):
            AlarmStoreWriter.open_or_create(
                tmp_path / "store", mapper, bin_s=900
            )

    def test_append_rejects_unordered_bins(self, tmp_path):
        writer = AlarmStoreWriter.create(tmp_path / "store", make_mapper())
        bins = synthetic_bins(2, seed=1)
        with pytest.raises(StoreError):
            writer.append_bins(list(reversed(bins)))

    def test_append_rejects_off_clock_bins(self, tmp_path):
        writer = AlarmStoreWriter.create(tmp_path / "store", make_mapper())
        writer.append_bins(synthetic_bins(1, seed=1))
        crooked = synthetic_bins(1, seed=2, start=BIN_S + 17)
        with pytest.raises(StoreError):
            writer.append_bins(crooked)

    def test_replayed_bins_are_skipped(self, tmp_path):
        mapper = make_mapper()
        bins = synthetic_bins(4, seed=3)
        writer = AlarmStoreWriter.create(tmp_path / "store", mapper)
        assert writer.append_bins(bins[:3]) == 3
        generation = writer.generation
        # An at-least-once stream replays everything after a restart.
        assert writer.append_bins(bins) == 1
        assert writer.generation == generation + 1
        assert writer.append_bins(bins) == 0
        assert writer.generation == generation + 1
        query = StoreQuery(tmp_path / "store", window_bins=3)
        report = InternetHealthReport(
            analysis_of(bins, mapper), window_bins=3
        )
        assert_equivalent(report, query, bins)

    def test_quiet_bins_advance_the_clock_without_segments(self, tmp_path):
        writer = AlarmStoreWriter.create(tmp_path / "store", make_mapper())
        quiet = [
            BinResult(
                timestamp=index * BIN_S, n_traceroutes=0,
                n_links_observed=0, n_links_analyzed=0,
                delay_alarms=[], forwarding_alarms=[],
            )
            for index in range(3)
        ]
        assert writer.append_bins(quiet) == 3
        assert writer.generation == 1
        assert not writer.manifest.segments
        assert writer.manifest.n_bins == 3
        assert StoreQuery(tmp_path / "store").monitored_asns() == []

    def test_alarm_before_start_rejected(self, tmp_path):
        writer = AlarmStoreWriter.create(
            tmp_path / "store", make_mapper(), start=10 * BIN_S
        )
        bins = synthetic_bins(1, seed=4, start=11 * BIN_S)
        early = _delay_alarm(random.Random(0), 0)
        bins[0].delay_alarms.append(early)
        with pytest.raises(StoreError):
            writer.append_bins(bins)

    def test_recreated_store_invalidates_live_readers(self, tmp_path):
        """A store rebuilt at the same generation number must still be
        picked up: the epoch token, not the bare counter, is compared."""
        mapper = make_mapper()
        first = synthetic_bins(3, seed=31)
        writer = AlarmStoreWriter.create(
            tmp_path / "store", mapper, bin_s=BIN_S, start=first[0].timestamp
        )
        writer.append_bins(first)
        query = StoreQuery(tmp_path / "store", window_bins=3)
        token_before = query.cache_token
        report_before = InternetHealthReport(
            analysis_of(first, mapper), window_bins=3
        )
        assert query.monitored_asns() == report_before.monitored_asns()
        # Recreate with different content but the same append count —
        # the generation number coincides, the epoch id cannot.
        second = synthetic_bins(3, seed=32)
        rebuilt = AlarmStoreWriter.create(
            tmp_path / "store", mapper, bin_s=BIN_S,
            start=second[0].timestamp, overwrite=True,
        )
        rebuilt.append_bins(second)
        assert rebuilt.generation == writer.generation
        report_after = InternetHealthReport(
            analysis_of(second, mapper), window_bins=3
        )
        assert query.monitored_asns() == report_after.monitored_asns()
        assert query.cache_token != token_before
        assert_equivalent(report_after, query, second)

    def test_generation_counts_every_append(self, tmp_path):
        writer = AlarmStoreWriter.create(tmp_path / "store", make_mapper())
        bins = synthetic_bins(5, seed=5)
        for index, result in enumerate(bins):
            writer.append_bins([result])
            assert writer.generation == index + 1
        store = AlarmStore(tmp_path / "store")
        assert store.generation == len(bins)


class TestConcurrentReaders:
    def test_reader_never_sees_partial_appends(self, tmp_path):
        """Queries during a live append stream never fail or tear."""
        mapper = make_mapper()
        bins = synthetic_bins(25, seed=11)
        writer = AlarmStoreWriter.create(tmp_path / "store", mapper)
        writer.append_bins(bins[:1])
        done = threading.Event()
        errors = []

        def poll():
            query = StoreQuery(tmp_path / "store", window_bins=4)
            while not done.is_set():
                try:
                    for asn in query.monitored_asns()[:4]:
                        query.as_condition(asn)
                        query.top_events("delay", 0.5, 5)
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)
                    return

        reader = threading.Thread(target=poll)
        reader.start()
        try:
            for result in bins[1:]:
                writer.append_bins([result])
                time.sleep(0.001)
        finally:
            done.set()
            reader.join()
        assert not errors, errors
        report = InternetHealthReport(
            analysis_of(bins, mapper), window_bins=4
        )
        query = StoreQuery(tmp_path / "store", window_bins=4)
        assert_equivalent(report, query, bins)


def _built_store(tmp_path) -> Path:
    directory = tmp_path / "store"
    build_store(directory, synthetic_bins(6, seed=21), make_mapper(), chunk=2)
    return directory


def _query_everything(directory) -> None:
    query = StoreQuery(directory)
    query.monitored_asns()
    query.alarms_at(0)
    query.alarms_involving(IPS[0])


class TestCorruption:
    """Damaged stores must raise StoreError — never serve partial data."""

    def _segment_path(self, directory) -> Path:
        segments = sorted(directory.glob("seg-*.seg"))
        assert segments, "fixture store must have segments"
        return segments[0]

    def test_segment_payload_bit_flip(self, tmp_path):
        directory = _built_store(tmp_path)
        path = self._segment_path(directory)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreError):
            _query_everything(directory)

    def test_segment_truncation(self, tmp_path):
        directory = _built_store(tmp_path)
        path = self._segment_path(directory)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(StoreError):
            _query_everything(directory)

    def test_segment_trailing_garbage(self, tmp_path):
        directory = _built_store(tmp_path)
        path = self._segment_path(directory)
        path.write_bytes(path.read_bytes() + b"extra")
        with pytest.raises(StoreError):
            _query_everything(directory)

    def test_segment_bad_magic(self, tmp_path):
        directory = _built_store(tmp_path)
        path = self._segment_path(directory)
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreError):
            _query_everything(directory)

    def test_segment_foreign_version(self, tmp_path):
        directory = _built_store(tmp_path)
        path = self._segment_path(directory)
        blob = bytearray(path.read_bytes())
        blob[8] ^= 0x01  # first byte of the little-endian version field
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreError):
            _query_everything(directory)

    def test_segment_missing(self, tmp_path):
        directory = _built_store(tmp_path)
        self._segment_path(directory).unlink()
        with pytest.raises(StoreError):
            _query_everything(directory)

    def test_segment_empty_file(self, tmp_path):
        directory = _built_store(tmp_path)
        self._segment_path(directory).write_bytes(b"")
        with pytest.raises(StoreError):
            _query_everything(directory)

    def test_segment_swapped_between_stores(self, tmp_path):
        """A well-formed segment from another store fails the manifest
        digest pinning."""
        directory = _built_store(tmp_path)
        other = tmp_path / "other"
        build_store(other, synthetic_bins(6, seed=99), make_mapper(), chunk=2)
        victim = self._segment_path(directory)
        donor = other / victim.name
        victim.write_bytes(donor.read_bytes())
        with pytest.raises(StoreError):
            _query_everything(directory)

    def test_manifest_truncation(self, tmp_path):
        directory = _built_store(tmp_path)
        manifest = directory / "MANIFEST"
        manifest.write_bytes(manifest.read_bytes()[:-7])
        with pytest.raises(StoreError):
            StoreQuery(directory)

    def test_manifest_bit_flip(self, tmp_path):
        directory = _built_store(tmp_path)
        manifest = directory / "MANIFEST"
        blob = bytearray(manifest.read_bytes())
        blob[-3] ^= 0x10
        manifest.write_bytes(bytes(blob))
        with pytest.raises(StoreError):
            StoreQuery(directory)

    def test_manifest_missing(self, tmp_path):
        with pytest.raises(StoreError):
            StoreQuery(tmp_path / "nonexistent")

    def test_refresh_surfaces_manifest_corruption(self, tmp_path):
        directory = _built_store(tmp_path)
        query = StoreQuery(directory)
        assert query.monitored_asns()
        manifest = directory / "MANIFEST"
        manifest.write_bytes(b"junk")
        with pytest.raises(StoreError):
            query.monitored_asns()
