"""Tests for the Atlas traceroute data model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atlas import Hop, Reply, Traceroute, make_traceroute


@pytest.fixture
def sample_traceroute():
    return make_traceroute(
        prb_id=101,
        src_addr="192.0.2.1",
        dst_addr="193.0.14.129",
        timestamp=1_433_116_800,
        hop_replies=[
            [("10.0.0.1", 1.2), ("10.0.0.1", 1.1), ("10.0.0.1", 1.3)],
            [("80.81.192.154", 8.0), ("80.81.192.154", 8.4), (None, None)],
            [("193.0.14.129", 12.0), ("193.0.14.129", 11.8), ("193.0.14.129", 12.2)],
        ],
        from_asn=64500,
        msm_id=5001,
    )


class TestReply:
    def test_timeout_roundtrip(self):
        reply = Reply(ip=None, rtt_ms=None)
        assert reply.is_timeout
        assert reply.to_json() == {"x": "*"}
        assert Reply.from_json({"x": "*"}).is_timeout

    def test_success_roundtrip(self):
        reply = Reply(ip="10.0.0.1", rtt_ms=3.25)
        data = reply.to_json()
        assert data == {"from": "10.0.0.1", "rtt": 3.25}
        assert Reply.from_json(data) == reply

    def test_from_json_without_rtt(self):
        reply = Reply.from_json({"from": "10.0.0.1"})
        assert reply.ip == "10.0.0.1"
        assert reply.rtt_ms is None


class TestHop:
    def test_primary_ip_majority(self):
        hop = Hop(
            ttl=2,
            replies=(
                Reply("10.0.0.1", 1.0),
                Reply("10.0.0.1", 1.1),
                Reply("10.0.0.2", 1.2),
            ),
        )
        assert hop.primary_ip == "10.0.0.1"
        assert hop.responding_ips == ["10.0.0.1", "10.0.0.2"]

    def test_primary_ip_all_lost(self):
        hop = Hop(ttl=3, replies=(Reply(None, None),) * 3)
        assert hop.primary_ip is None
        assert hop.is_unresponsive

    def test_rtts_filters_timeouts(self):
        hop = Hop(
            ttl=1,
            replies=(Reply("a", 1.0), Reply(None, None), Reply("a", 2.0)),
        )
        assert hop.rtts == [1.0, 2.0]
        assert hop.rtts_for("a") == [1.0, 2.0]
        assert hop.rtts_for("b") == []

    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            Hop(ttl=0, replies=())

    def test_json_roundtrip(self):
        hop = Hop(ttl=4, replies=(Reply("10.0.0.9", 5.5), Reply(None, None)))
        assert Hop.from_json(hop.to_json()) == hop

    def test_responding_ips_preserves_first_seen_order(self):
        """Regression: the dict-based single pass must keep the exact
        order (and dedup semantics) of the historical O(n²) list scan."""
        hop = Hop(
            ttl=1,
            replies=(
                Reply("b", 1.0),
                Reply("a", 1.1),
                Reply(None, None),
                Reply("b", 1.2),
                Reply("c", 1.3),
                Reply("a", 1.4),
            ),
        )
        assert hop.responding_ips == ["b", "a", "c"]

    def test_primary_ip_tie_breaks_by_greatest_ip(self):
        """Ties on reply count go to the lexicographically greatest IP
        (the historical ``max`` over ``(count, ip)`` tuples)."""
        hop = Hop(
            ttl=1,
            replies=(Reply("a", 1.0), Reply("c", 1.1), Reply("b", 1.2)),
        )
        assert hop.primary_ip == "c"
        hop = Hop(
            ttl=1,
            replies=(
                Reply("z", 1.0),
                Reply("a", 1.1),
                Reply("a", 1.2),
            ),
        )
        assert hop.primary_ip == "a"  # count beats lexicographic order

    def test_scan_properties_match_reference_on_many_replies(self):
        """The single-pass forms agree with a brute-force reference on a
        reply list large enough that quadratic scans would be visible."""
        ips = [f"10.0.0.{i % 17}" for i in range(200)]
        replies = tuple(
            Reply(ip if i % 5 else None, float(i)) for i, ip in enumerate(ips)
        )
        hop = Hop(ttl=1, replies=replies)
        expected_order = []
        for reply in replies:
            if reply.ip is not None and reply.ip not in expected_order:
                expected_order.append(reply.ip)
        assert hop.responding_ips == expected_order
        counts = {}
        for reply in replies:
            if reply.ip is not None:
                counts[reply.ip] = counts.get(reply.ip, 0) + 1
        assert hop.primary_ip == max(
            counts, key=lambda ip: (counts[ip], ip)
        )


class TestTraceroute:
    def test_destination_reached(self, sample_traceroute):
        assert sample_traceroute.destination_reached

    def test_destination_not_reached(self):
        tr = make_traceroute(
            1, "10.0.0.1", "10.99.99.99", 0, [[("10.0.0.254", 1.0)]]
        )
        assert not tr.destination_reached

    def test_destination_unreached_with_trailing_loss(self):
        tr = make_traceroute(
            1,
            "10.0.0.1",
            "10.99.99.99",
            0,
            [[("10.0.0.254", 1.0)], [(None, None)], [(None, None)]],
        )
        assert not tr.destination_reached

    def test_response_rate(self, sample_traceroute):
        assert sample_traceroute.response_rate == pytest.approx(8 / 9)

    def test_response_rate_empty(self):
        tr = make_traceroute(1, "a", "b", 0, [])
        # make_traceroute with no hops -> no packets
        assert tr.response_rate == 0.0

    def test_adjacent_pairs_consecutive_ttls(self, sample_traceroute):
        pairs = list(sample_traceroute.adjacent_pairs())
        assert len(pairs) == 2
        assert pairs[0][0].ttl == 1 and pairs[0][1].ttl == 2

    def test_adjacent_pairs_skips_gaps(self):
        hops = (
            Hop(ttl=1, replies=(Reply("a", 1.0),)),
            Hop(ttl=3, replies=(Reply("c", 3.0),)),
        )
        tr = Traceroute(1, "s", "d", 0, hops)
        assert list(tr.adjacent_pairs()) == []

    def test_json_roundtrip(self, sample_traceroute):
        data = sample_traceroute.to_json()
        assert data["from_asn"] == 64500
        restored = Traceroute.from_json(data)
        assert restored == sample_traceroute

    def test_json_roundtrip_without_optional_fields(self):
        tr = make_traceroute(7, "s", "d", 123, [[("x", 1.0)]])
        restored = Traceroute.from_json(tr.to_json())
        assert restored.from_asn is None
        assert restored.msm_id is None
        assert restored == tr


reply_strategy = st.one_of(
    st.just((None, None)),
    st.tuples(
        st.from_regex(r"10\.[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}", fullmatch=True),
        st.floats(min_value=0.01, max_value=500.0, allow_nan=False),
    ),
)


class TestRoundtripProperty:
    @settings(max_examples=40)
    @given(
        st.lists(
            st.lists(reply_strategy, min_size=1, max_size=3),
            min_size=1,
            max_size=12,
        )
    )
    def test_traceroute_json_roundtrip(self, hop_replies):
        tr = make_traceroute(5, "192.0.2.7", "198.51.100.9", 1000, hop_replies)
        assert Traceroute.from_json(tr.to_json()) == tr
