"""Tests for the fault-tolerant transport layer (offline, no network).

Every claim the connector layer makes about surviving the real
Internet — typed errors, deterministic backoff, Retry-After, rate
limiting, the circuit breaker, the retry budget — is proven here with
the scripted transport, injected clocks and recorded sleeps.
"""

import subprocess
import sys

import pytest

from repro.atlas.connectors import (
    API_KEY_ENV,
    CircuitBreaker,
    CircuitOpenError,
    FatalError,
    Fault,
    FaultSchedule,
    FaultTolerantClient,
    HttpResponse,
    RetryBudgetExceeded,
    RetryPolicy,
    RetryableError,
    ScriptedTransport,
    TokenBucket,
    load_api_key,
    parse_retry_after,
)

URL = "https://atlas.example/api/v2/measurements/1/results/?format=json"
PAGES = {URL: b'{"results": [], "next": null}'}


def make_client(pages=None, faults=None, policy=None, breaker=None,
                rate_limiter=None, api_key=None):
    """A client over a ScriptedTransport that records its sleeps."""
    transport = ScriptedTransport(
        PAGES if pages is None else pages, faults=faults
    )
    sleeps = []
    client = FaultTolerantClient(
        transport=transport,
        policy=policy or RetryPolicy(seed=1),
        breaker=breaker,
        rate_limiter=rate_limiter,
        api_key=api_key,
        sleep=sleeps.append,
    )
    return client, transport, sleeps


class TestErrorTaxonomy:
    def test_429_and_5xx_are_retryable(self):
        for status in (429, 500, 502, 503):
            faults = FaultSchedule({0: Fault(kind="status", status=status)})
            client, transport, _ = make_client(faults=faults)
            response = client.get(URL)
            assert response.status == 200
            assert transport.requests == 2  # one fault, one success

    def test_fatal_4xx_is_not_retried(self):
        faults = FaultSchedule({0: Fault(kind="status", status=403)})
        client, transport, sleeps = make_client(faults=faults)
        with pytest.raises(FatalError) as excinfo:
            client.get(URL)
        assert excinfo.value.status == 403
        assert transport.requests == 1
        assert sleeps == []

    def test_network_drop_is_retryable(self):
        faults = FaultSchedule({0: Fault(kind="drop"), 1: Fault(kind="drop")})
        client, transport, sleeps = make_client(faults=faults)
        assert client.get(URL).status == 200
        assert transport.requests == 3
        assert len(sleeps) == 2

    def test_unknown_url_is_fatal_404(self):
        client, _, _ = make_client(pages={})
        with pytest.raises(FatalError) as excinfo:
            client.get(URL)
        assert excinfo.value.status == 404

    def test_parse_retry_after(self):
        assert parse_retry_after("3") == 3.0
        assert parse_retry_after("0.5") == 0.5
        assert parse_retry_after("-2") == 0.0
        assert parse_retry_after(None) is None
        assert parse_retry_after("Wed, 21 Oct 2015 07:28:00 GMT") is None


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=2.0, max_delay_s=5.0, jitter=0.0
        )
        delays = [policy.delay_for(0, attempt) for attempt in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_deterministic_per_request_and_attempt(self):
        policy = RetryPolicy(seed=42)
        first = [policy.delay_for(7, a) for a in range(1, 5)]
        second = [RetryPolicy(seed=42).delay_for(7, a) for a in range(1, 5)]
        assert first == second
        # A different request index draws different jitter.
        assert first != [policy.delay_for(8, a) for a in range(1, 5)]

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=1.0, jitter=0.25, max_delay_s=100.0
        )
        for index in range(50):
            delay = policy.delay_for(index, 1)
            assert 0.75 <= delay <= 1.25

    def test_retry_after_overrides_backoff(self):
        policy = RetryPolicy(base_delay_s=100.0, max_delay_s=200.0)
        assert policy.delay_for(0, 1, retry_after=7.0) == 7.0
        # ... but is still capped at max_delay_s.
        assert policy.delay_for(0, 1, retry_after=999.0) == 200.0

    def test_client_honours_retry_after(self):
        faults = FaultSchedule(
            {0: Fault(kind="status", status=429, retry_after=9.0)}
        )
        client, _, sleeps = make_client(faults=faults)
        client.get(URL)
        assert sleeps == [9.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)


class TestRetryBudget:
    def test_attempts_exhausted(self):
        faults = FaultSchedule({i: Fault(kind="drop") for i in range(10)})
        policy = RetryPolicy(max_attempts=3, seed=1)
        client, transport, _ = make_client(faults=faults, policy=policy)
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            client.get(URL)
        assert excinfo.value.attempts == 3
        assert transport.requests == 3

    def test_time_budget_exhausted(self):
        faults = FaultSchedule({i: Fault(kind="drop") for i in range(10)})
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=10.0, jitter=0.0, budget_s=25.0
        )
        client, _, sleeps = make_client(faults=faults, policy=policy)
        with pytest.raises(RetryBudgetExceeded):
            client.get(URL)
        assert sum(sleeps) <= 25.0

    def test_burst_absorbed_within_budget(self):
        # A 4-deep burst of mixed 429/503/drops, then recovery: the
        # client must absorb it without exhausting the default budget.
        faults = FaultSchedule(
            {
                0: Fault(kind="status", status=503),
                1: Fault(kind="drop"),
                2: Fault(kind="status", status=429, retry_after=2.0),
                3: Fault(kind="status", status=500),
            }
        )
        client, transport, sleeps = make_client(
            faults=faults, policy=RetryPolicy(max_attempts=6, seed=3)
        )
        assert client.get(URL).status == 200
        assert transport.requests == 5
        assert client.stats.retries == 4
        assert sum(sleeps) < RetryPolicy().budget_s


class TestTruncatedBody:
    def test_get_json_retries_truncated_body(self):
        faults = FaultSchedule({0: Fault(kind="truncate")})
        client, transport, _ = make_client(faults=faults)
        payload = client.get_json(URL)
        assert payload == {"results": [], "next": None}
        assert transport.requests == 2

    def test_get_json_gives_up_after_budget(self):
        faults = FaultSchedule(
            {i: Fault(kind="truncate") for i in range(10)}
        )
        policy = RetryPolicy(max_attempts=3, seed=1)
        client, _, _ = make_client(faults=faults, policy=policy)
        with pytest.raises(RetryBudgetExceeded):
            client.get_json(URL)


class TestTokenBucket:
    def test_initial_burst_is_free(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=1.0, capacity=3, clock=clock)
        assert [bucket.reserve() for _ in range(3)] == [0.0, 0.0, 0.0]

    def test_empty_bucket_imposes_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=2.0, capacity=1, clock=clock)
        assert bucket.reserve() == 0.0
        assert bucket.reserve() == pytest.approx(0.5)
        assert bucket.reserve() == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=1.0, capacity=2, clock=clock)
        bucket.reserve(), bucket.reserve()
        clock.advance(2.0)
        assert bucket.reserve() == 0.0

    def test_client_paces_requests(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=1.0, capacity=1, clock=clock)
        client, _, sleeps = make_client(rate_limiter=bucket)
        client.get(URL)
        client.get(URL)
        assert client.stats.rate_limit_waits == 1
        assert sleeps and sleeps[0] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, capacity=0)


class FakeClock:
    """A manually advanced monotonic clock for deterministic tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by *seconds*."""
        self.now += seconds


class TestCircuitBreaker:
    def breaker(self, clock, threshold=3, cooldown=30.0):
        """A breaker on the fake clock with small thresholds."""
        return CircuitBreaker(
            failure_threshold=threshold, cooldown_s=cooldown, clock=clock
        )

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(3):
            breaker.check()
            breaker.on_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_success_resets_the_count(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        breaker.on_failure(), breaker.on_failure()
        breaker.on_success()
        breaker.on_failure(), breaker.on_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_recovers(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(3):
            breaker.on_failure()
        clock.advance(30.0)
        assert breaker.state == "half-open"
        breaker.check()  # the single trial request is admitted
        breaker.on_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(3):
            breaker.on_failure()
        clock.advance(30.0)
        breaker.check()
        breaker.on_failure()
        assert breaker.state == "open"
        assert breaker.times_opened == 2

    def test_client_opens_and_recovers_end_to_end(self):
        # 3 straight drops trip the breaker mid-request; the next get()
        # fails fast without touching the transport; after the cooldown
        # the half-open probe succeeds and the circuit closes.
        clock = FakeClock()
        breaker = self.breaker(clock, threshold=3, cooldown=30.0)
        faults = FaultSchedule({i: Fault(kind="drop") for i in range(3)})
        client, transport, _ = make_client(
            faults=faults,
            breaker=breaker,
            policy=RetryPolicy(max_attempts=3, seed=1),
        )
        with pytest.raises(RetryBudgetExceeded):
            client.get(URL)
        assert breaker.state == "open"
        before = transport.requests
        with pytest.raises(CircuitOpenError):
            client.get(URL)
        assert transport.requests == before  # failed fast, no network
        assert client.stats.circuit_rejections == 1
        clock.advance(30.0)
        assert client.get(URL).status == 200
        assert breaker.state == "closed"


class TestApiKeyHygiene:
    def test_key_travels_only_in_header(self):
        client, transport, _ = make_client(api_key="s3cret-key")
        client.get(URL)
        assert transport.last_headers["Authorization"] == "Key s3cret-key"

    def test_key_never_in_repr_or_errors(self):
        faults = FaultSchedule({i: Fault(kind="drop") for i in range(10)})
        client, _, _ = make_client(
            faults=faults,
            api_key="s3cret-key",
            policy=RetryPolicy(max_attempts=2, seed=1),
        )
        assert "s3cret" not in repr(client)
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            client.get(URL)
        chain = []
        exc = excinfo.value
        while exc is not None:
            chain.append(str(exc) + repr(exc.args))
            exc = exc.__cause__
        assert all("s3cret" not in text for text in chain)

    def test_load_api_key_env_wins(self, tmp_path):
        secrets = tmp_path / "secrets"
        secrets.write_text("file-key\n")
        env = {API_KEY_ENV: "env-key"}
        assert load_api_key(secrets_path=secrets, env=env) == "env-key"
        assert load_api_key(secrets_path=secrets, env={}) == "file-key"
        assert load_api_key(env={}) is None
        assert load_api_key(secrets_path=tmp_path / "missing", env={}) is None


class TestDeterminism:
    """The PR's determinism audit: all new randomness is seeded + pure."""

    def test_fault_schedule_is_pure_function_of_seed_and_index(self):
        first = FaultSchedule.seeded(11, 0.4)
        second = FaultSchedule.seeded(11, 0.4)
        for index in range(200):
            assert first.fault_for(index) == second.fault_for(index)
        different = FaultSchedule.seeded(12, 0.4)
        assert any(
            first.fault_for(i) != different.fault_for(i) for i in range(200)
        )

    def test_transcripts_reproduce_across_processes(self):
        # Backoff jitter and fault schedules must not depend on
        # PYTHONHASHSEED or any per-process state: the same seeds give
        # the same transcript in freshly launched interpreters.
        snippet = (
            "from repro.atlas.connectors import RetryPolicy, FaultSchedule\n"
            "pol = RetryPolicy(seed=5)\n"
            "sch = FaultSchedule.seeded(5, 0.5)\n"
            "delays = [round(pol.delay_for(i, a), 9)"
            " for i in range(5) for a in (1, 2, 3)]\n"
            "faults = [(f.kind, f.status, f.retry_after) if f else None"
            " for f in map(sch.fault_for, range(50))]\n"
            "print(repr((delays, faults)))\n"
        )
        outputs = []
        for hash_seed in ("0", "1"):
            result = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True,
                text=True,
                check=True,
                env={
                    "PYTHONPATH": "src",
                    "PYTHONHASHSEED": hash_seed,
                },
                cwd=str(__import__("pathlib").Path(__file__).parent.parent),
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]

    def test_stats_counters_track_the_transcript(self):
        faults = FaultSchedule({0: Fault(kind="drop")})
        client, _, _ = make_client(faults=faults)
        client.get(URL)
        client.get(URL)
        assert client.stats.requests == 2
        assert client.stats.attempts == 3
        assert client.stats.retries == 1
