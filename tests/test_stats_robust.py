"""Tests for robust estimators and the Eq. 10 magnitude machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    MAD_SCALE,
    mad,
    magnitude_score,
    median,
    median_absolute_deviation,
    outlier_count,
    sliding_magnitude,
    sliding_median_mad,
    trimmed_mean,
    weekly_window_bins,
)

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


class TestMedianMad:
    def test_median_basic(self):
        assert median([5.0, 1.0, 3.0]) == 3.0
        assert median([1.0, 2.0]) == 1.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad_basic(self):
        assert median_absolute_deviation([1.0, 1.0, 2.0, 2.0, 4.0]) == 1.0
        assert mad([3.0, 3.0, 3.0]) == 0.0

    def test_mad_empty_raises(self):
        with pytest.raises(ValueError):
            mad([])

    @given(st.lists(finite, min_size=1, max_size=100))
    def test_mad_nonnegative(self, values):
        assert mad(values) >= 0

    @given(st.lists(finite, min_size=1, max_size=100), st.floats(-1e6, 1e6))
    def test_mad_translation_invariant(self, values, shift):
        assert mad([v + shift for v in values]) == pytest.approx(
            mad(values), rel=1e-9, abs=1e-6
        )

    def test_mad_scale_constant_matches_paper(self):
        assert MAD_SCALE == 1.4826


class TestMagnitudeScore:
    def test_quiet_series_scores_near_zero(self):
        window = [0.0] * 167
        assert magnitude_score(0.0, window) == 0.0

    def test_spike_scores_high(self):
        window = [0.0] * 167
        assert magnitude_score(100.0, window) == pytest.approx(100.0)

    def test_eq10_formula(self):
        window = [1.0, 2.0, 3.0, 4.0, 5.0]
        value = 10.0
        expected = (10.0 - 3.0) / (1.0 + MAD_SCALE * 1.0)
        assert magnitude_score(value, window) == pytest.approx(expected)

    def test_empty_window(self):
        assert magnitude_score(5.0, []) == 0.0

    def test_negative_spike_gives_negative_magnitude(self):
        window = [0.0] * 100
        assert magnitude_score(-50.0, window) < -10


class TestSlidingWindows:
    def test_sliding_median_trailing_window(self):
        medians, mads = sliding_median_mad([1.0, 2.0, 3.0, 4.0], window=2)
        assert list(medians) == [1.0, 1.5, 2.5, 3.5]
        assert list(mads) == [0.0, 0.5, 0.5, 0.5]

    def test_min_periods_yields_nan(self):
        medians, _ = sliding_median_mad([1.0, 2.0, 3.0], window=3, min_periods=2)
        assert np.isnan(medians[0])
        assert medians[1] == 1.5

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            sliding_median_mad([1.0], window=0)
        with pytest.raises(ValueError):
            sliding_median_mad([1.0], window=2, min_periods=0)

    def test_sliding_magnitude_flat_series_is_zero(self):
        mags = sliding_magnitude([5.0] * 50, window=10)
        assert np.allclose(mags, 0.0)

    def test_sliding_magnitude_detects_spike(self):
        series = [0.0] * 100 + [500.0] + [0.0] * 20
        mags = sliding_magnitude(series, window=50)
        assert np.argmax(mags) == 100
        assert mags[100] > 100

    def test_sliding_magnitude_detects_negative_spike(self):
        series = [0.0] * 100 + [-500.0] + [0.0] * 20
        mags = sliding_magnitude(series, window=50)
        assert np.argmin(mags) == 100
        assert mags[100] < -100

    @settings(max_examples=30)
    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=80))
    def test_sliding_magnitude_finite(self, values):
        mags = sliding_magnitude(values, window=7)
        assert np.all(np.isfinite(mags))


class TestAuxiliaries:
    def test_trimmed_mean_drops_outliers(self):
        assert trimmed_mean([1.0, 2.0, 3.0, 100.0], proportion=0.25) == 2.5

    def test_trimmed_mean_zero_trim_is_mean(self):
        assert trimmed_mean([1.0, 2.0, 3.0], proportion=0.0) == 2.0

    def test_trimmed_mean_validates(self):
        with pytest.raises(ValueError):
            trimmed_mean([1.0], proportion=0.5)
        with pytest.raises(ValueError):
            trimmed_mean([], proportion=0.1)

    def test_outlier_count_matches_paper_rule(self):
        """Counts values above mean + 3 sigma, the paper's outlier rule."""
        rng = np.random.default_rng(0)
        clean = rng.normal(5.0, 1.0, size=10_000)
        spiky = np.concatenate([clean, [500.0] * 30])
        assert outlier_count(spiky) >= 30 - 5  # allow borderline effects
        assert outlier_count(clean) < 100

    def test_outlier_count_empty(self):
        assert outlier_count([]) == 0

    def test_weekly_window_bins(self):
        assert weekly_window_bins(3600) == 168
        assert weekly_window_bins(1800) == 336
        with pytest.raises(ValueError):
            weekly_window_bins(0)
